//! The selection VAO (§3.2).
//!
//! Evaluates a comparison predicate `f(args) ⟨op⟩ constant` over a result
//! object, iterating only until the bounds clear the constant — or until the
//! bounds fall below `minWidth` while still containing it, in which case the
//! function value is *considered equal to the constant* and the predicate is
//! resolved accordingly (paper, §3.2).

use crate::bounds::Bounds;
use crate::cost::{WorkBreakdown, WorkMeter};
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::DEFAULT_ITERATION_LIMIT;
use crate::trace::{
    observe_iteration, ExecObserver, NoopObserver, OperatorEndRecord, OperatorKind,
};

/// Comparison operator of a selection predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `f(args) > c`
    Gt,
    /// `f(args) >= c`
    Ge,
    /// `f(args) < c`
    Lt,
    /// `f(args) <= c`
    Le,
}

impl CmpOp {
    /// Evaluates the operator on an exact value.
    #[must_use]
    pub fn eval(&self, value: f64, constant: f64) -> bool {
        match self {
            CmpOp::Gt => value > constant,
            CmpOp::Ge => value >= constant,
            CmpOp::Lt => value < constant,
            CmpOp::Le => value <= constant,
        }
    }

    /// The predicate's outcome if the function value equals the constant —
    /// the resolution rule for bounds that reach `minWidth` still containing
    /// the constant.
    #[must_use]
    pub fn outcome_at_equality(&self) -> bool {
        matches!(self, CmpOp::Ge | CmpOp::Le)
    }

    /// Tries to decide the predicate from bounds alone: `Some(answer)` when
    /// every value in `bounds` gives the same answer, `None` otherwise.
    #[must_use]
    pub fn decide(&self, bounds: &Bounds, constant: f64) -> Option<bool> {
        match self {
            CmpOp::Gt => {
                if bounds.lo() > constant {
                    Some(true)
                } else if bounds.hi() <= constant {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Ge => {
                if bounds.lo() >= constant {
                    Some(true)
                } else if bounds.hi() < constant {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Lt => {
                if bounds.hi() < constant {
                    Some(true)
                } else if bounds.lo() >= constant {
                    Some(false)
                } else {
                    None
                }
            }
            CmpOp::Le => {
                if bounds.hi() <= constant {
                    Some(true)
                } else if bounds.lo() > constant {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        };
        f.write_str(s)
    }
}

/// Outcome of evaluating a selection predicate over one result object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectionOutcome {
    /// Whether the tuple satisfies the predicate.
    pub satisfied: bool,
    /// True when the answer was forced by the `minWidth` stopping condition
    /// (bounds still contained the constant; value treated as equal to it).
    pub decided_at_min_width: bool,
    /// Number of `iterate()` calls issued for this object.
    pub iterations: u64,
    /// The bounds at the moment the predicate was decided.
    pub final_bounds: Bounds,
}

/// Evaluates `obj ⟨op⟩ constant`, refining `obj` only as far as needed.
///
/// Equivalent to [`SelectionVao::evaluate`] with the default iteration
/// limit.
pub fn select<R: ResultObject>(
    obj: &mut R,
    op: CmpOp,
    constant: f64,
    meter: &mut WorkMeter,
) -> Result<SelectionOutcome, VaoError> {
    SelectionVao::new(op, constant)?.evaluate(obj, meter)
}

/// [`select`] with an [`ExecObserver`] receiving the execution trace:
/// operator start/end, plus one event per `iterate()` call carrying the
/// bounds before/after and the `estCPU`-vs-actual CPU comparison.
pub fn select_traced<R: ResultObject, O: ExecObserver>(
    obj: &mut R,
    op: CmpOp,
    constant: f64,
    meter: &mut WorkMeter,
    observer: &mut O,
) -> Result<SelectionOutcome, VaoError> {
    SelectionVao::new(op, constant)?.evaluate_traced(obj, meter, observer)
}

/// A reusable selection VAO: `f(args) ⟨op⟩ constant`.
#[derive(Clone, Copy, Debug)]
pub struct SelectionVao {
    op: CmpOp,
    constant: f64,
    iteration_limit: u64,
}

impl SelectionVao {
    /// Creates the operator, validating the constant.
    pub fn new(op: CmpOp, constant: f64) -> Result<Self, VaoError> {
        if !constant.is_finite() {
            return Err(VaoError::NonFiniteConstant { value: constant });
        }
        Ok(Self {
            op,
            constant,
            iteration_limit: DEFAULT_ITERATION_LIMIT,
        })
    }

    /// Overrides the defensive iteration limit.
    #[must_use]
    pub fn with_iteration_limit(mut self, limit: u64) -> Self {
        self.iteration_limit = limit;
        self
    }

    /// The comparison operator.
    #[must_use]
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The selection constant.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Evaluates the predicate over `obj`, iterating until either the bounds
    /// no longer contain the constant or the bounds width falls below
    /// `minWidth` (§3.2's two stopping conditions).
    pub fn evaluate<R: ResultObject>(
        &self,
        obj: &mut R,
        meter: &mut WorkMeter,
    ) -> Result<SelectionOutcome, VaoError> {
        self.evaluate_traced(obj, meter, &mut NoopObserver)
    }

    /// [`SelectionVao::evaluate`] with an [`ExecObserver`] receiving the
    /// execution trace. The single result object is reported as object 0.
    pub fn evaluate_traced<R: ResultObject, O: ExecObserver>(
        &self,
        obj: &mut R,
        meter: &mut WorkMeter,
        observer: &mut O,
    ) -> Result<SelectionOutcome, VaoError> {
        if observer.is_enabled() {
            observer.on_operator_start(OperatorKind::Selection, 1);
        }
        let work_start = meter.snapshot();
        let mut iterations = 0u64;
        loop {
            let bounds = obj.bounds();
            if let Some(satisfied) = self.op.decide(&bounds, self.constant) {
                if observer.is_enabled() {
                    observer.on_operator_end(&OperatorEndRecord {
                        kind: OperatorKind::Selection,
                        iterations,
                        work: meter.since(&work_start),
                    });
                }
                return Ok(SelectionOutcome {
                    satisfied,
                    decided_at_min_width: false,
                    iterations,
                    final_bounds: bounds,
                });
            }
            if obj.converged() {
                // Bounds still contain the constant but are as accurate as
                // possible: treat the value as equal to the constant.
                if observer.is_enabled() {
                    observer.on_operator_end(&OperatorEndRecord {
                        kind: OperatorKind::Selection,
                        iterations,
                        work: meter.since(&work_start),
                    });
                }
                return Ok(SelectionOutcome {
                    satisfied: self.op.outcome_at_equality(),
                    decided_at_min_width: true,
                    iterations,
                    final_bounds: bounds,
                });
            }
            if iterations >= self.iteration_limit {
                return Err(VaoError::IterationLimitExceeded {
                    limit: self.iteration_limit,
                });
            }
            let (est_cpu, snapshot) = if observer.is_enabled() {
                (obj.est_cpu(), meter.snapshot())
            } else {
                (0, WorkBreakdown::default())
            };
            let refined = obj.iterate(meter);
            iterations += 1;
            if observer.is_enabled() {
                observe_iteration(
                    observer, 0, iterations, bounds, refined, est_cpu, meter, &snapshot,
                );
            }
            // Contract defense: a non-converged object whose iterate() left
            // the bounds unchanged will never decide the predicate.
            if refined == bounds && !obj.converged() {
                return Err(VaoError::IterationLimitExceeded {
                    limit: self.iteration_limit,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    #[test]
    fn decide_gt_cases() {
        let c = 100.0;
        assert_eq!(CmpOp::Gt.decide(&Bounds::new(101.0, 104.0), c), Some(true));
        assert_eq!(CmpOp::Gt.decide(&Bounds::new(90.0, 99.0), c), Some(false));
        // hi == constant: value <= c everywhere, so Gt is decidedly false.
        assert_eq!(CmpOp::Gt.decide(&Bounds::new(90.0, 100.0), c), Some(false));
        // lo == constant with hi above: could be equal (false) or above (true).
        assert_eq!(CmpOp::Gt.decide(&Bounds::new(100.0, 104.0), c), None);
        assert_eq!(CmpOp::Gt.decide(&Bounds::new(98.0, 110.0), c), None);
    }

    #[test]
    fn decide_ge_lt_le_cases() {
        let c = 100.0;
        assert_eq!(CmpOp::Ge.decide(&Bounds::new(100.0, 104.0), c), Some(true));
        assert_eq!(CmpOp::Ge.decide(&Bounds::new(90.0, 99.9), c), Some(false));
        assert_eq!(CmpOp::Ge.decide(&Bounds::new(99.0, 100.0), c), None);

        assert_eq!(CmpOp::Lt.decide(&Bounds::new(90.0, 99.9), c), Some(true));
        assert_eq!(CmpOp::Lt.decide(&Bounds::new(100.0, 104.0), c), Some(false));
        assert_eq!(CmpOp::Lt.decide(&Bounds::new(99.0, 100.0), c), None);

        assert_eq!(CmpOp::Le.decide(&Bounds::new(90.0, 100.0), c), Some(true));
        assert_eq!(CmpOp::Le.decide(&Bounds::new(100.1, 104.0), c), Some(false));
        assert_eq!(CmpOp::Le.decide(&Bounds::new(99.0, 101.0), c), None);
    }

    #[test]
    fn paper_figure3_example() {
        // Figure 3: model(IR.rate, BD) > $100 with initial bounds [98, 110]
        // (undecided) refined by one iteration to [102, 107]: both bounds
        // above $100, predicate true, error still far above minWidth $.01.
        let mut obj = ScriptedObject::converging(
            &[
                (98.0, 110.0),
                (102.0, 107.0),
                (104.9, 105.1),
                (105.0, 105.005),
            ],
            100,
            0.01,
        );
        let mut meter = WorkMeter::new();
        let out = select(&mut obj, CmpOp::Gt, 100.0, &mut meter).unwrap();
        assert!(out.satisfied);
        assert!(!out.decided_at_min_width);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.final_bounds, Bounds::new(102.0, 107.0));
        // Only one refinement was paid for.
        assert_eq!(meter.breakdown().exec_iter, 100);
    }

    #[test]
    fn immediate_decision_costs_nothing() {
        let mut obj = ScriptedObject::converging(&[(101.0, 110.0), (105.0, 105.005)], 100, 0.01);
        let mut meter = WorkMeter::new();
        let out = select(&mut obj, CmpOp::Gt, 100.0, &mut meter).unwrap();
        assert!(out.satisfied);
        assert_eq!(out.iterations, 0);
        assert_eq!(meter.total(), 0);
    }

    #[test]
    fn min_width_resolution_treats_value_as_equal() {
        // Bounds converge to [99.999, 100.005] around the constant 100:
        // width 0.006 < minWidth 0.01, still contains 100.
        let script = [(90.0, 110.0), (99.0, 101.0), (99.999, 100.005)];
        let mut meter = WorkMeter::new();

        let mut obj = ScriptedObject::converging(&script, 10, 0.01);
        let out = select(&mut obj, CmpOp::Gt, 100.0, &mut meter).unwrap();
        assert!(!out.satisfied, "value == constant fails Gt");
        assert!(out.decided_at_min_width);
        assert_eq!(out.iterations, 2);

        let mut obj = ScriptedObject::converging(&script, 10, 0.01);
        let out = select(&mut obj, CmpOp::Ge, 100.0, &mut meter).unwrap();
        assert!(out.satisfied, "value == constant satisfies Ge");

        let mut obj = ScriptedObject::converging(&script, 10, 0.01);
        let out = select(&mut obj, CmpOp::Lt, 100.0, &mut meter).unwrap();
        assert!(!out.satisfied);

        let mut obj = ScriptedObject::converging(&script, 10, 0.01);
        let out = select(&mut obj, CmpOp::Le, 100.0, &mut meter).unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn stalled_object_reports_error_not_hang() {
        // Script ends undecided and unconverged; iterate() becomes a no-op.
        let mut obj = ScriptedObject::converging(&[(90.0, 110.0), (95.0, 105.0)], 10, 0.01);
        let mut meter = WorkMeter::new();
        let err = select(&mut obj, CmpOp::Gt, 100.0, &mut meter).unwrap_err();
        assert!(matches!(err, VaoError::IterationLimitExceeded { .. }));
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let script: Vec<(f64, f64)> = (0..100)
            .map(|i| (90.0 + 0.01 * i as f64, 110.0 - 0.01 * i as f64))
            .collect();
        let mut obj = ScriptedObject::converging(&script, 1, 0.0001);
        let mut meter = WorkMeter::new();
        let vao = SelectionVao::new(CmpOp::Gt, 100.0)
            .unwrap()
            .with_iteration_limit(5);
        let err = vao.evaluate(&mut obj, &mut meter).unwrap_err();
        assert_eq!(err, VaoError::IterationLimitExceeded { limit: 5 });
        assert_eq!(meter.iterations(), 5);
    }

    #[test]
    fn rejects_non_finite_constant() {
        assert!(SelectionVao::new(CmpOp::Gt, f64::NAN).is_err());
        assert!(SelectionVao::new(CmpOp::Lt, f64::INFINITY).is_err());
    }

    #[test]
    fn eval_and_equality_outcomes_agree_with_decide() {
        // decide() on a point interval must match eval() on the value.
        for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le] {
            for v in [-1.0, 0.0, 1.0] {
                let d = op.decide(&Bounds::point(v), 0.0);
                assert_eq!(d, Some(op.eval(v, 0.0)), "op {op} v {v}");
            }
            assert_eq!(op.outcome_at_equality(), op.eval(0.0, 0.0));
        }
    }

    #[test]
    fn display_ops() {
        assert_eq!(CmpOp::Gt.to_string(), ">");
        assert_eq!(CmpOp::Le.to_string(), "<=");
    }
}
