//! Projection of function results into query output (§3.2).
//!
//! "All result object processing is encapsulated in VAOs, unless function
//! results or result aggregates are in the operator output. In this case,
//! the query also needs to specify a precision constraint, which is a
//! maximum bounds width for the output." This operator implements that
//! case: `SELECT model(args) FROM ...` with an output precision ε — each
//! result object is refined until its bounds are no wider than ε (or its
//! own `minWidth` stops it), then emitted as an interval.

use crate::bounds::Bounds;
use crate::cost::WorkMeter;
use crate::error::VaoError;
use crate::interface::ResultObject;
use crate::ops::DEFAULT_ITERATION_LIMIT;
use crate::precision::PrecisionConstraint;

/// One projected output value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectedValue {
    /// Bounds on the function result, width ≤ ε.
    pub bounds: Bounds,
    /// `iterate()` calls spent on this object.
    pub iterations: u64,
}

/// Refines one object to the output precision and emits its bounds.
pub fn project_one<R: ResultObject>(
    obj: &mut R,
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<ProjectedValue, VaoError> {
    if epsilon.epsilon() < obj.min_width() {
        return Err(VaoError::PrecisionTooTight {
            epsilon: epsilon.epsilon(),
            min_width: obj.min_width(),
        });
    }
    let mut iterations = 0u64;
    while obj.bounds().width() > epsilon.epsilon() && !obj.converged() {
        if iterations >= DEFAULT_ITERATION_LIMIT {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
        let before = obj.bounds();
        let after = obj.iterate(meter);
        iterations += 1;
        if after == before && !obj.converged() {
            return Err(VaoError::IterationLimitExceeded {
                limit: DEFAULT_ITERATION_LIMIT,
            });
        }
    }
    Ok(ProjectedValue {
        bounds: obj.bounds(),
        iterations,
    })
}

/// Projects a whole object set to the output precision.
pub fn project_all<R: ResultObject>(
    objs: &mut [R],
    epsilon: PrecisionConstraint,
    meter: &mut WorkMeter,
) -> Result<Vec<ProjectedValue>, VaoError> {
    objs.iter_mut()
        .map(|o| project_one(o, epsilon, meter))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    fn obj(v: f64) -> ScriptedObject {
        ScriptedObject::converging(
            &[
                (v - 8.0, v + 8.0),
                (v - 2.0, v + 2.0),
                (v - 0.3, v + 0.3),
                (v - 0.004, v + 0.004),
            ],
            10,
            0.01,
        )
    }

    #[test]
    fn stops_at_epsilon_not_min_width() {
        let mut o = obj(100.0);
        let mut meter = WorkMeter::new();
        let p = project_one(&mut o, PrecisionConstraint::new(1.0).unwrap(), &mut meter).unwrap();
        assert!(p.bounds.width() <= 1.0);
        assert_eq!(p.iterations, 2, "stopped at [99.7, 100.3]");
        assert!(!o.converged(), "ε was met before minWidth");
    }

    #[test]
    fn tight_epsilon_runs_to_convergence() {
        let mut o = obj(100.0);
        let mut meter = WorkMeter::new();
        let p = project_one(&mut o, PrecisionConstraint::new(0.01).unwrap(), &mut meter).unwrap();
        assert!(o.converged());
        assert!(p.bounds.width() < 0.01);
    }

    #[test]
    fn epsilon_below_min_width_is_rejected() {
        let mut o = obj(100.0);
        let mut meter = WorkMeter::new();
        assert!(matches!(
            project_one(&mut o, PrecisionConstraint::new(0.001).unwrap(), &mut meter),
            Err(VaoError::PrecisionTooTight { .. })
        ));
    }

    #[test]
    fn project_all_handles_sets() {
        let mut objs = vec![obj(90.0), obj(110.0), obj(100.0)];
        let mut meter = WorkMeter::new();
        let out = project_all(
            &mut objs,
            PrecisionConstraint::new(0.7).unwrap(),
            &mut meter,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        for (p, v) in out.iter().zip([90.0, 110.0, 100.0]) {
            assert!(p.bounds.width() <= 0.7);
            assert!(p.bounds.contains(v));
        }
    }

    #[test]
    fn stalled_object_errors() {
        let mut o = ScriptedObject::converging(&[(0.0, 10.0), (1.0, 9.0)], 4, 0.01);
        let mut meter = WorkMeter::new();
        assert!(matches!(
            project_one(&mut o, PrecisionConstraint::new(0.5).unwrap(), &mut meter),
            Err(VaoError::IterationLimitExceeded { .. })
        ));
    }
}
