//! Iteration-choice policies for aggregate VAOs.
//!
//! A VAO over a *set* of result objects must repeatedly decide which object
//! to iterate next (§3.2's *iteration strategy*). The paper's operators use
//! a **greedy** strategy — pick the iteration with the highest estimated
//! benefit per CPU cycle — justified by the convergence of iterative
//! solvers: later iterations of one object usually help less than earlier
//! iterations of another. This module also ships deliberately weaker
//! policies (round-robin, random, widest-first) used by the ablation
//! benchmarks to quantify how much the greedy choice matters.

use crate::cost::Work;
use crate::trace::{ChoiceRecord, ExecObserver};

/// A scored iteration choice offered to a policy.
///
/// `benefit` is operator-specific: estimated overlap reduction for MAX
/// (§5.1), weighted error reduction for SUM/AVE (§5.2). `est_cpu` is the
/// object's `estCPU`. `width` is the object's current bounds width, used by
/// fallback and by the widest-first ablation policy.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// Index of the result object in the operator's input set.
    pub index: usize,
    /// Estimated benefit of iterating this object once.
    pub benefit: f64,
    /// Estimated CPU cost of that iteration.
    pub est_cpu: Work,
    /// Current bounds width of the object.
    pub width: f64,
}

impl Candidate {
    /// Benefit per unit of estimated CPU, the greedy score of §5.
    ///
    /// A zero cost estimate is clamped to one work unit so that essentially
    /// free iterations rank (very) high rather than dividing by zero.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.benefit / (self.est_cpu.max(1) as f64)
    }
}

/// How an aggregate VAO chooses its next iteration.
#[derive(Clone, Debug)]
pub enum ChoicePolicy {
    /// The paper's strategy: maximize estimated benefit per CPU cycle,
    /// falling back to the widest candidate when every estimate is zero
    /// (pessimistic estimates must not stall the operator).
    Greedy,
    /// Ablation: cycle through candidates regardless of scores.
    RoundRobin {
        /// Rotating cursor; advanced on every pick.
        cursor: usize,
    },
    /// Ablation: pick uniformly at random (xorshift; deterministic per seed).
    Random {
        /// Current RNG state.
        state: u64,
    },
    /// Ablation: always iterate the candidate with the widest bounds,
    /// ignoring cost and operator-specific benefit.
    WidestFirst,
}

impl ChoicePolicy {
    /// The paper's greedy policy.
    #[must_use]
    pub fn greedy() -> Self {
        ChoicePolicy::Greedy
    }

    /// Round-robin ablation policy.
    #[must_use]
    pub fn round_robin() -> Self {
        ChoicePolicy::RoundRobin { cursor: 0 }
    }

    /// Seeded random ablation policy.
    #[must_use]
    pub fn random(seed: u64) -> Self {
        ChoicePolicy::Random {
            state: seed.max(1), // xorshift must not start at zero
        }
    }

    /// Widest-first ablation policy.
    #[must_use]
    pub fn widest_first() -> Self {
        ChoicePolicy::WidestFirst
    }

    /// Picks one of `candidates`, returning its position in the slice.
    ///
    /// Returns `None` when the slice is empty. Deterministic for every
    /// policy (Random is seeded).
    pub fn pick(&mut self, candidates: &[Candidate]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            ChoicePolicy::Greedy => {
                let best = max_by_key(candidates, Candidate::score);
                // All-zero scores give no signal; fall back to widest bounds
                // so the operator is guaranteed to make progress.
                if candidates[best].score() <= 0.0 {
                    Some(max_by_key(candidates, |c| c.width))
                } else {
                    Some(best)
                }
            }
            ChoicePolicy::RoundRobin { cursor } => {
                let pick = *cursor % candidates.len();
                *cursor = cursor.wrapping_add(1);
                Some(pick)
            }
            ChoicePolicy::Random { state } => {
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                Some((r % candidates.len() as u64) as usize)
            }
            ChoicePolicy::WidestFirst => Some(max_by_key(candidates, |c| c.width)),
        }
    }

    /// Picks up to `k` **distinct** candidates, returning their positions
    /// in the slice in selection order (best first).
    ///
    /// This is the batched generalization of [`ChoicePolicy::pick`] used by
    /// schedulers that run several iterations per round: `top_k(c, 1)`
    /// selects exactly the candidate `pick(c)` would, so a batch size of
    /// one reproduces the serial schedule bit-identically.
    ///
    /// Per policy:
    /// * `Greedy` — candidates with positive greedy score, best score
    ///   first (ties to the earlier index); remaining slots filled
    ///   widest-first from the zero-score candidates (the same fallback
    ///   that keeps the serial greedy loop progressing on pessimistic
    ///   estimates).
    /// * `RoundRobin` — the next `k` positions in rotation.
    /// * `Random` — `k` distinct positions drawn from the seeded xorshift
    ///   stream (deterministic per seed).
    /// * `WidestFirst` — the `k` widest candidates.
    pub fn top_k(&mut self, candidates: &[Candidate], k: usize) -> Vec<usize> {
        let k = k.min(candidates.len());
        if k == 0 {
            return Vec::new();
        }
        match self {
            ChoicePolicy::Greedy => {
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                // Positive scores first (descending), then zero-score
                // candidates widest-first; index breaks every tie so the
                // selection is deterministic and `top_k(c, 1) == pick(c)`.
                order.sort_by(|&a, &b| {
                    let (ca, cb) = (&candidates[a], &candidates[b]);
                    let (sa, sb) = (ca.score(), cb.score());
                    match (sa > 0.0, sb > 0.0) {
                        (true, false) => std::cmp::Ordering::Less,
                        (false, true) => std::cmp::Ordering::Greater,
                        (true, true) => sb.total_cmp(&sa).then(a.cmp(&b)),
                        (false, false) => cb.width.total_cmp(&ca.width).then(a.cmp(&b)),
                    }
                });
                order.truncate(k);
                order
            }
            ChoicePolicy::RoundRobin { .. }
            | ChoicePolicy::Random { .. }
            | ChoicePolicy::WidestFirst => {
                let mut picks = Vec::with_capacity(k);
                let mut taken = vec![false; candidates.len()];
                while picks.len() < k {
                    let remaining: Vec<Candidate> = candidates
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !taken[*i])
                        .map(|(_, c)| *c)
                        .collect();
                    let positions: Vec<usize> =
                        (0..candidates.len()).filter(|&i| !taken[i]).collect();
                    let p = self
                        .pick(&remaining)
                        .expect("picks.len() < k <= candidates.len() leaves candidates");
                    taken[positions[p]] = true;
                    picks.push(positions[p]);
                }
                picks
            }
        }
    }

    /// Like [`ChoicePolicy::top_k`], reporting one [`ChoiceRecord`] per
    /// selected candidate to `observer` (in selection order, so a batch of
    /// one emits exactly the event stream of the serial `pick_traced`).
    pub fn top_k_traced<O: ExecObserver>(
        &mut self,
        candidates: &[Candidate],
        k: usize,
        observer: &mut O,
    ) -> Vec<usize> {
        let picks = self.top_k(candidates, k);
        if observer.is_enabled() {
            for &p in &picks {
                let c = &candidates[p];
                observer.on_choice(&ChoiceRecord {
                    object: c.index,
                    benefit: c.benefit,
                    est_cpu: c.est_cpu,
                    score: c.score(),
                    candidates: candidates.len(),
                });
            }
        }
        picks
    }

    /// Like [`ChoicePolicy::pick`], but reports the decision — chosen
    /// object, benefit, `estCPU` and greedy score — to `observer`. With a
    /// disabled observer this compiles down to a plain `pick`.
    pub fn pick_traced<O: ExecObserver>(
        &mut self,
        candidates: &[Candidate],
        observer: &mut O,
    ) -> Option<usize> {
        let pick = self.pick(candidates)?;
        if observer.is_enabled() {
            let c = &candidates[pick];
            observer.on_choice(&ChoiceRecord {
                object: c.index,
                benefit: c.benefit,
                est_cpu: c.est_cpu,
                score: c.score(),
                candidates: candidates.len(),
            });
        }
        Some(pick)
    }
}

/// First index maximizing `key` (ties break toward the earliest candidate,
/// keeping every policy deterministic).
fn max_by_key(candidates: &[Candidate], key: impl Fn(&Candidate) -> f64) -> usize {
    let mut best = 0;
    let mut best_key = key(&candidates[0]);
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let k = key(c);
        if k > best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, benefit: f64, est_cpu: Work, width: f64) -> Candidate {
        Candidate {
            index,
            benefit,
            est_cpu,
            width,
        }
    }

    #[test]
    fn greedy_prefers_best_benefit_per_cycle() {
        // Table 2 scenario: equal estCPU (4), overlap reductions 1, 2, 3.
        let cands = [
            cand(0, 1.0, 4, 4.0),
            cand(1, 2.0, 4, 8.0),
            cand(2, 3.0, 4, 6.0),
        ];
        let mut p = ChoicePolicy::greedy();
        assert_eq!(p.pick(&cands), Some(2));
    }

    #[test]
    fn greedy_divides_by_cost() {
        // Lower benefit but far cheaper iteration wins.
        let cands = [cand(0, 3.0, 100, 1.0), cand(1, 1.0, 10, 1.0)];
        let mut p = ChoicePolicy::greedy();
        assert_eq!(p.pick(&cands), Some(1));
    }

    #[test]
    fn greedy_zero_cost_is_clamped_not_infinite() {
        let c = cand(0, 2.0, 0, 1.0);
        assert_eq!(c.score(), 2.0);
    }

    #[test]
    fn greedy_falls_back_to_widest_on_zero_benefit() {
        let cands = [
            cand(0, 0.0, 4, 1.0),
            cand(1, 0.0, 4, 9.0),
            cand(2, 0.0, 4, 3.0),
        ];
        let mut p = ChoicePolicy::greedy();
        assert_eq!(p.pick(&cands), Some(1));
    }

    #[test]
    fn greedy_ties_break_to_first() {
        let cands = [cand(0, 2.0, 4, 1.0), cand(1, 2.0, 4, 1.0)];
        let mut p = ChoicePolicy::greedy();
        assert_eq!(p.pick(&cands), Some(0));
    }

    #[test]
    fn empty_candidates_yield_none() {
        for mut p in [
            ChoicePolicy::greedy(),
            ChoicePolicy::round_robin(),
            ChoicePolicy::random(42),
            ChoicePolicy::widest_first(),
        ] {
            assert_eq!(p.pick(&[]), None);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let cands = [
            cand(0, 1.0, 1, 1.0),
            cand(1, 1.0, 1, 1.0),
            cand(2, 1.0, 1, 1.0),
        ];
        let mut p = ChoicePolicy::round_robin();
        let picks: Vec<_> = (0..6).map(|_| p.pick(&cands).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let cands = [
            cand(0, 1.0, 1, 1.0),
            cand(1, 1.0, 1, 1.0),
            cand(2, 1.0, 1, 1.0),
        ];
        let mut a = ChoicePolicy::random(7);
        let mut b = ChoicePolicy::random(7);
        for _ in 0..32 {
            let pa = a.pick(&cands).unwrap();
            assert_eq!(Some(pa), b.pick(&cands));
            assert!(pa < cands.len());
        }
    }

    #[test]
    fn random_seed_zero_is_usable() {
        let cands = [cand(0, 1.0, 1, 1.0), cand(1, 1.0, 1, 1.0)];
        let mut p = ChoicePolicy::random(0);
        assert!(p.pick(&cands).is_some());
    }

    #[test]
    fn widest_first_ignores_scores() {
        let cands = [cand(0, 100.0, 1, 1.0), cand(1, 0.0, 1000, 50.0)];
        let mut p = ChoicePolicy::widest_first();
        assert_eq!(p.pick(&cands), Some(1));
    }

    /// The batched scheduler's serial-equivalence hinge: for every policy,
    /// `top_k(c, 1)` is exactly `[pick(c)]` — including greedy's
    /// widest-first fallback when no score is positive.
    #[test]
    fn top_k_of_one_is_pick() {
        let mixes = [
            vec![
                cand(0, 1.0, 4, 4.0),
                cand(1, 2.0, 4, 8.0),
                cand(2, 3.0, 4, 6.0),
            ],
            vec![
                cand(0, 0.0, 4, 1.0),
                cand(1, 0.0, 4, 9.0),
                cand(2, 0.0, 4, 3.0),
            ],
            vec![cand(0, 3.0, 100, 1.0), cand(1, 1.0, 10, 1.0)],
        ];
        for cands in &mixes {
            for make in [
                ChoicePolicy::greedy,
                ChoicePolicy::round_robin,
                ChoicePolicy::widest_first,
                || ChoicePolicy::random(7),
            ] {
                let (mut a, mut b) = (make(), make());
                for _ in 0..4 {
                    // Repeated calls so stateful policies stay in lockstep.
                    assert_eq!(a.top_k(cands, 1), vec![b.pick(cands).unwrap()]);
                }
            }
        }
    }

    #[test]
    fn top_k_is_distinct_ordered_and_clamped() {
        let cands = [
            cand(0, 1.0, 4, 4.0),
            cand(1, 2.0, 4, 8.0),
            cand(2, 3.0, 4, 6.0),
            cand(3, 0.5, 4, 2.0),
        ];
        let mut p = ChoicePolicy::greedy();
        // Best-first order by score; distinct positions.
        assert_eq!(p.top_k(&cands, 3), vec![2, 1, 0]);
        // k past the candidate count clamps; k == 0 selects nothing.
        assert_eq!(p.top_k(&cands, 10), vec![2, 1, 0, 3]);
        assert!(p.top_k(&cands, 0).is_empty());
        assert!(p.top_k(&[], 4).is_empty());
    }

    #[test]
    fn top_k_greedy_ranks_positive_scores_before_fallback_widths() {
        // One positive-score candidate and two zero-benefit ones: the
        // scoring pick leads, then the widest-first fallback order.
        let cands = [
            cand(0, 0.0, 4, 9.0),
            cand(1, 2.0, 4, 1.0),
            cand(2, 0.0, 4, 3.0),
        ];
        let mut p = ChoicePolicy::greedy();
        assert_eq!(p.top_k(&cands, 3), vec![1, 0, 2]);
    }

    #[test]
    fn top_k_round_robin_is_repeated_pick_over_remaining() {
        let cands = [
            cand(0, 1.0, 1, 1.0),
            cand(1, 1.0, 1, 1.0),
            cand(2, 1.0, 1, 1.0),
        ];
        let mut p = ChoicePolicy::round_robin();
        // First pick lands on 0 (cursor 0), the second applies cursor 1 to
        // the remaining pair [1, 2] — selections stay distinct and the
        // cursor keeps advancing across calls.
        assert_eq!(p.top_k(&cands, 2), vec![0, 2]);
        assert_eq!(p.top_k(&cands, 2), vec![2, 1]);
    }
}
