//! Error type shared across the VAO crate.

/// Errors surfaced by bounds construction, operators and strategies.
#[derive(Clone, Debug, PartialEq)]
pub enum VaoError {
    /// A bounds endpoint was NaN or infinite.
    NonFiniteBounds {
        /// Offending lower endpoint.
        lo: f64,
        /// Offending upper endpoint.
        hi: f64,
    },
    /// Lower endpoint exceeded the upper endpoint.
    InvertedBounds {
        /// Offending lower endpoint.
        lo: f64,
        /// Offending upper endpoint.
        hi: f64,
    },
    /// An aggregate operator was invoked on an empty object set.
    EmptyInput,
    /// The precision constraint ε is unsatisfiable because some object's
    /// `minWidth` exceeds it (footnote 10 of the paper: MAX "returns an
    /// error if ε is less than max(minWidth)").
    PrecisionTooTight {
        /// The requested output precision.
        epsilon: f64,
        /// The largest `minWidth` among the input objects.
        min_width: f64,
    },
    /// The precision constraint must be a positive finite number.
    InvalidPrecision {
        /// The offending value.
        epsilon: f64,
    },
    /// A weight passed to SUM/AVE was negative or non-finite (§5.2 requires
    /// nonnegative real weights).
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// The offending value.
        weight: f64,
    },
    /// The number of weights did not match the number of objects.
    WeightCountMismatch {
        /// Number of result objects supplied.
        objects: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// An operator exceeded its per-evaluation iteration budget without the
    /// underlying result objects converging — a defense against a result
    /// object whose `iterate()` stops making progress.
    IterationLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A selection constant was NaN or infinite.
    NonFiniteConstant {
        /// The offending value.
        value: f64,
    },
    /// A quantile fraction was NaN, infinite or outside `[0, 1]`.
    InvalidQuantile {
        /// The offending value.
        phi: f64,
    },
}

impl std::fmt::Display for VaoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaoError::NonFiniteBounds { lo, hi } => {
                write!(f, "bounds endpoints must be finite, got [{lo}, {hi}]")
            }
            VaoError::InvertedBounds { lo, hi } => {
                write!(f, "bounds lower endpoint exceeds upper: [{lo}, {hi}]")
            }
            VaoError::EmptyInput => write!(f, "operator requires at least one result object"),
            VaoError::PrecisionTooTight { epsilon, min_width } => write!(
                f,
                "precision constraint {epsilon} is below the largest object minWidth {min_width}"
            ),
            VaoError::InvalidPrecision { epsilon } => {
                write!(
                    f,
                    "precision constraint must be positive and finite, got {epsilon}"
                )
            }
            VaoError::InvalidWeight { index, weight } => write!(
                f,
                "weight {weight} at index {index} must be finite and nonnegative"
            ),
            VaoError::WeightCountMismatch { objects, weights } => {
                write!(f, "got {weights} weights for {objects} result objects")
            }
            VaoError::IterationLimitExceeded { limit } => write!(
                f,
                "operator exceeded its iteration budget of {limit} without converging"
            ),
            VaoError::NonFiniteConstant { value } => {
                write!(f, "selection constant must be finite, got {value}")
            }
            VaoError::InvalidQuantile { phi } => {
                write!(
                    f,
                    "quantile fraction must be a finite value in [0, 1], got {phi}"
                )
            }
        }
    }
}

impl std::error::Error for VaoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = VaoError::PrecisionTooTight {
            epsilon: 0.001,
            min_width: 0.01,
        };
        let msg = e.to_string();
        assert!(msg.contains("0.001"));
        assert!(msg.contains("0.01"));

        assert!(VaoError::EmptyInput.to_string().contains("at least one"));
        assert!(VaoError::IterationLimitExceeded { limit: 7 }
            .to_string()
            .contains('7'));
        assert!(VaoError::WeightCountMismatch {
            objects: 3,
            weights: 2
        }
        .to_string()
        .contains('3'));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(VaoError::EmptyInput);
        assert!(!e.to_string().is_empty());
    }
}
