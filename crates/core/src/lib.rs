//! # Variable-Accuracy Operators (VAOs)
//!
//! A from-scratch Rust implementation of the operator framework described in
//! Denny & Franklin, *"Adaptive Execution of Variable-Accuracy Functions"*
//! (UC Berkeley Technical Report UCB/EECS-2006-28, 2006).
//!
//! Many expensive user-defined functions (UDFs) — bond-pricing models,
//! PDE/ODE solvers, numerical integrators, root finders — exhibit an inherent
//! trade-off between compute time and accuracy. Traditional query processors
//! treat UDFs as *black boxes* that must always run to full accuracy. VAOs
//! instead expose an **iterative interface**: the first call to a UDF returns
//! a [`ResultObject`] carrying error bounds `[L, H]` which the operator can
//! refine by calling [`ResultObject::iterate`], at the cost of more CPU.
//! Operators then drive each function call only as far as the *query* needs.
//!
//! The crate provides:
//!
//! * The result-object interface of §3.2 of the paper: bounds, `minWidth`,
//!   `iterate()`, and the `estCPU` / `estL` / `estH` estimates used by
//!   iteration strategies ([`interface`]).
//! * A cost model mirroring §3.2's decomposition of per-iteration cost into
//!   `exec_iter`, `get_state`, `store_state` and `choose_iter` ([`cost`]).
//! * The operators of §5: selection ([`ops::selection`]), MIN/MAX
//!   ([`ops::minmax`]) and weighted SUM/AVE ([`ops::sum`]), each with the
//!   paper's greedy iteration strategy plus ablation strategies
//!   ([`strategy`]).
//! * Baselines used in the paper's evaluation: traditional black-box
//!   operators ([`ops::traditional`]) and the oracle "Optimal" MAX operator
//!   ([`ops::oracle`]), as well as the hybrid SUM operator sketched as future
//!   work in §6.3 ([`ops::hybrid`]).
//! * A scripted result object for deterministic testing ([`testkit`]).
//!
//! ## Quick example
//!
//! ```
//! use vao::cost::WorkMeter;
//! use vao::ops::selection::{select, CmpOp};
//! use vao::testkit::ScriptedObject;
//!
//! // A result object whose bounds tighten [90,110] -> [101,104] -> [102.0,102.01].
//! let mut obj = ScriptedObject::converging(
//!     &[(90.0, 110.0), (101.0, 104.0), (102.0, 102.01)],
//!     100,
//!     0.02,
//! );
//! let mut meter = WorkMeter::new();
//! // Is the value > 100?  Decided after a single refinement: bounds [101,104]
//! // clear the constant even though they are far wider than minWidth.
//! let out = vao::ops::selection::select(&mut obj, CmpOp::Gt, 100.0, &mut meter).unwrap();
//! assert!(out.satisfied);
//! assert_eq!(out.iterations, 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adapters;
pub mod batch;
pub mod bounds;
pub mod cost;
pub mod error;
pub mod interface;
pub mod ops;
pub mod precision;
pub mod strategy;
pub mod testkit;
pub mod trace;

pub use batch::{BatchLane, GridShape, LaneFailure};
pub use bounds::Bounds;
pub use cost::{Work, WorkBreakdown, WorkMeter};
pub use error::VaoError;
pub use interface::{BlackBoxFn, ResultObject, VariableAccuracyFn};
pub use precision::PrecisionConstraint;
pub use strategy::ChoicePolicy;
pub use trace::{ExecObserver, NoopObserver, Recorder};
