//! Deterministic, scriptable result objects for testing operators.
//!
//! A [`ScriptedObject`] replays a predetermined sequence of bounds
//! refinements with fixed per-step costs and (optionally imperfect)
//! next-step estimates. This decouples operator tests from any real solver:
//! the unit tests for the MAX VAO, for example, replay the exact objects of
//! the paper's Table 2.

use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};
use crate::interface::ResultObject;

/// One refinement step of a scripted result object.
#[derive(Clone, Debug)]
pub struct ScriptedStep {
    /// Bounds in effect once this step is reached.
    pub bounds: Bounds,
    /// Work charged by the `iterate()` call that *reaches* this step
    /// (ignored for the first step, which is established at construction).
    pub cost: Work,
    /// `estCPU` reported while at this step.
    pub est_cpu: Work,
    /// `[estL, estH]` reported while at this step.
    pub est_bounds: Bounds,
}

/// A result object that replays a fixed refinement script.
#[derive(Clone, Debug)]
pub struct ScriptedObject {
    steps: Vec<ScriptedStep>,
    pos: usize,
    min_width: f64,
    cumulative: Work,
    last_step_cost: Work,
    /// Optional label, handy when debugging multi-object operator tests.
    pub label: String,
}

impl ScriptedObject {
    /// Creates a scripted object from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or `min_width` is not positive.
    #[must_use]
    pub fn new(steps: Vec<ScriptedStep>, min_width: f64) -> Self {
        assert!(!steps.is_empty(), "script must contain at least one step");
        assert!(
            min_width > 0.0 && min_width.is_finite(),
            "min_width must be positive and finite"
        );
        Self {
            steps,
            pos: 0,
            min_width,
            cumulative: 0,
            last_step_cost: 0,
            label: String::new(),
        }
    }

    /// Convenience constructor: a script of bounds with uniform per-step
    /// cost and *perfect* estimates (each step's `est` fields describe the
    /// next step exactly; the final step estimates itself).
    #[must_use]
    pub fn converging(script: &[(f64, f64)], step_cost: Work, min_width: f64) -> Self {
        assert!(!script.is_empty());
        let bounds: Vec<Bounds> = script.iter().map(|&(lo, hi)| Bounds::new(lo, hi)).collect();
        let steps = bounds
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let last = i + 1 == bounds.len();
                ScriptedStep {
                    bounds: *b,
                    cost: step_cost,
                    est_cpu: if last { 0 } else { step_cost },
                    est_bounds: if last { *b } else { bounds[i + 1] },
                }
            })
            .collect();
        Self::new(steps, min_width)
    }

    /// Attaches a debugging label.
    #[must_use]
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Index of the current step (0 before any `iterate()`).
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the script has been fully replayed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.pos + 1 == self.steps.len()
    }
}

impl ResultObject for ScriptedObject {
    fn bounds(&self) -> Bounds {
        self.steps[self.pos].bounds
    }

    fn min_width(&self) -> f64 {
        self.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.exhausted() {
            return self.bounds();
        }
        self.pos += 1;
        let step = &self.steps[self.pos];
        meter.charge_get_state(1);
        meter.charge_exec(step.cost);
        meter.charge_store_state(1);
        meter.count_iteration();
        self.cumulative += step.cost;
        self.last_step_cost = step.cost;
        step.bounds
    }

    fn est_cpu(&self) -> Work {
        self.steps[self.pos].est_cpu
    }

    fn est_bounds(&self) -> Bounds {
        self.steps[self.pos].est_bounds
    }

    fn standalone_cost(&self) -> Work {
        // Mimic the PDE-solver economics of §4.1: a black-box call at the
        // current accuracy costs about as much as the last iteration alone.
        self.last_step_cost.max(1)
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converging_replays_script_and_charges_costs() {
        let mut obj =
            ScriptedObject::converging(&[(0.0, 10.0), (2.0, 6.0), (3.0, 3.005)], 50, 0.01);
        let mut m = WorkMeter::new();
        assert_eq!(obj.bounds(), Bounds::new(0.0, 10.0));
        assert!(!obj.converged());

        let b1 = obj.iterate(&mut m);
        assert_eq!(b1, Bounds::new(2.0, 6.0));
        assert_eq!(m.breakdown().exec_iter, 50);
        assert_eq!(m.breakdown().get_state, 1);
        assert_eq!(m.breakdown().store_state, 1);
        assert_eq!(m.iterations(), 1);

        let b2 = obj.iterate(&mut m);
        assert_eq!(b2, Bounds::new(3.0, 3.005));
        assert!(obj.converged());
        assert_eq!(obj.cumulative_cost(), 100);
        assert_eq!(obj.standalone_cost(), 50);
    }

    #[test]
    fn iterate_after_convergence_is_free_noop() {
        let mut obj = ScriptedObject::converging(&[(0.0, 10.0), (5.0, 5.001)], 10, 0.01);
        let mut m = WorkMeter::new();
        obj.iterate(&mut m);
        assert!(obj.converged());
        let before = m.total();
        let b = obj.iterate(&mut m);
        assert_eq!(b, Bounds::new(5.0, 5.001));
        assert_eq!(
            m.total(),
            before,
            "no work may be charged after convergence"
        );
        assert_eq!(m.iterations(), 1);
    }

    #[test]
    fn perfect_estimates_point_at_next_step() {
        let obj = ScriptedObject::converging(&[(0.0, 10.0), (2.0, 6.0)], 7, 0.01);
        assert_eq!(obj.est_bounds(), Bounds::new(2.0, 6.0));
        assert_eq!(obj.est_cpu(), 7);
    }

    #[test]
    fn exhausted_script_stops_refining() {
        // A script that never converges: iterate() must become a no-op at
        // the end rather than panic, so operators can detect stalls.
        let mut obj = ScriptedObject::converging(&[(0.0, 10.0), (1.0, 9.0)], 5, 0.01);
        let mut m = WorkMeter::new();
        obj.iterate(&mut m);
        assert!(obj.exhausted());
        assert!(!obj.converged());
        let b = obj.iterate(&mut m);
        assert_eq!(b, Bounds::new(1.0, 9.0));
        assert_eq!(m.iterations(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_script_rejected() {
        let _ = ScriptedObject::new(vec![], 0.01);
    }

    #[test]
    fn explicit_steps_with_imperfect_estimates() {
        // Estimates may be wrong (contract point 5): here the estimate
        // promises [4,5] but the script actually lands on [3,6].
        let steps = vec![
            ScriptedStep {
                bounds: Bounds::new(0.0, 10.0),
                cost: 0,
                est_cpu: 9,
                est_bounds: Bounds::new(4.0, 5.0),
            },
            ScriptedStep {
                bounds: Bounds::new(3.0, 6.0),
                cost: 9,
                est_cpu: 0,
                est_bounds: Bounds::new(3.0, 6.0),
            },
        ];
        let mut obj = ScriptedObject::new(steps, 0.01);
        let mut m = WorkMeter::new();
        assert_eq!(obj.est_bounds(), Bounds::new(4.0, 5.0));
        let b = obj.iterate(&mut m);
        assert_eq!(b, Bounds::new(3.0, 6.0));
    }
}
