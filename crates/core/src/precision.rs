//! Precision constraints on operator output.
//!
//! When function results (or aggregates of them) appear in a query's output,
//! the query must specify a **precision constraint** ε — the maximum bounds
//! width the output may have (§3.2; the idea follows Olston et al.'s
//! precision/performance trade-off work cited there). Aggregate VAOs iterate
//! until their output bounds are narrower than ε or every contributing
//! object has reached its own `minWidth`.

use crate::error::VaoError;
use crate::interface::ResultObject;

/// A validated maximum output-bounds width.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionConstraint(f64);

impl PrecisionConstraint {
    /// Creates a precision constraint, rejecting non-positive or non-finite
    /// values.
    pub fn new(epsilon: f64) -> Result<Self, VaoError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(VaoError::InvalidPrecision { epsilon });
        }
        Ok(Self(epsilon))
    }

    /// The maximum permitted output width.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.0
    }

    /// Checks ε against a set of result objects for MIN/MAX-style operators,
    /// whose output bounds come from a *single* object: ε must be at least
    /// the largest `minWidth` or the winning object may never get narrow
    /// enough (footnote 10: "the current MAX implementation returns an error
    /// if ε is less than max(minWidth)").
    pub fn validate_single_object<R: ResultObject>(&self, objects: &[R]) -> Result<(), VaoError> {
        let max_min_width = objects.iter().map(R::min_width).fold(0.0_f64, f64::max);
        if self.0 < max_min_width {
            return Err(VaoError::PrecisionTooTight {
                epsilon: self.0,
                min_width: max_min_width,
            });
        }
        Ok(())
    }

    /// Checks ε against weighted objects for SUM/AVE: the tightest
    /// achievable output width is `Σ wᵢ · minWidthᵢ` (every object run to
    /// its own stopping condition), so any smaller ε is unsatisfiable.
    pub fn validate_weighted<R: ResultObject>(
        &self,
        objects: &[R],
        weights: &[f64],
    ) -> Result<(), VaoError> {
        if objects.len() != weights.len() {
            return Err(VaoError::WeightCountMismatch {
                objects: objects.len(),
                weights: weights.len(),
            });
        }
        let floor: f64 = objects
            .iter()
            .zip(weights)
            .map(|(o, w)| w * o.min_width())
            .sum();
        if self.0 < floor {
            return Err(VaoError::PrecisionTooTight {
                epsilon: self.0,
                min_width: floor,
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for PrecisionConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    fn obj(min_width: f64) -> ScriptedObject {
        ScriptedObject::converging(&[(0.0, 1.0)], 1, min_width)
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(PrecisionConstraint::new(0.0).is_err());
        assert!(PrecisionConstraint::new(-1.0).is_err());
        assert!(PrecisionConstraint::new(f64::NAN).is_err());
        assert!(PrecisionConstraint::new(f64::INFINITY).is_err());
        assert!(PrecisionConstraint::new(0.01).is_ok());
    }

    #[test]
    fn single_object_validation_uses_max_min_width() {
        let objs = vec![obj(0.01), obj(0.05), obj(0.02)];
        assert!(PrecisionConstraint::new(0.05)
            .unwrap()
            .validate_single_object(&objs)
            .is_ok());
        let err = PrecisionConstraint::new(0.04)
            .unwrap()
            .validate_single_object(&objs)
            .unwrap_err();
        assert_eq!(
            err,
            VaoError::PrecisionTooTight {
                epsilon: 0.04,
                min_width: 0.05
            }
        );
    }

    #[test]
    fn weighted_validation_uses_weighted_floor() {
        let objs = vec![obj(0.01), obj(0.01)];
        // Floor = 2*0.01 + 1*0.01... weights [2,1] -> 0.03.
        let weights = [2.0, 1.0];
        assert!(PrecisionConstraint::new(0.03)
            .unwrap()
            .validate_weighted(&objs, &weights)
            .is_ok());
        assert!(PrecisionConstraint::new(0.029)
            .unwrap()
            .validate_weighted(&objs, &weights)
            .is_err());
    }

    #[test]
    fn weighted_validation_checks_counts() {
        let objs = vec![obj(0.01)];
        let err = PrecisionConstraint::new(1.0)
            .unwrap()
            .validate_weighted(&objs, &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, VaoError::WeightCountMismatch { .. }));
    }

    #[test]
    fn paper_sum_constraint_is_satisfiable() {
        // §6.3: 500 bonds, minWidth $.01 each, unit-ish weights summing to
        // 500, ε = 500 * $.01 = $5 — exactly the achievable floor.
        let objs: Vec<_> = (0..500).map(|_| obj(0.01)).collect();
        let weights = vec![1.0; 500];
        let eps = PrecisionConstraint::new(5.0).unwrap();
        assert!(eps.validate_weighted(&objs, &weights).is_ok());
    }
}
