//! Execution-trace observability for VAO scheduling.
//!
//! The operators of §5 make hundreds of small decisions per evaluation —
//! which object to iterate, how much benefit they expected, how much CPU the
//! iteration actually cost — and the aggregate numbers in a [`WorkMeter`]
//! flatten all of that away. This module exposes the decision stream itself:
//!
//! * [`ExecObserver`] — a callback trait the traced operator entry points
//!   ([`crate::ops::selection::select_traced`],
//!   [`crate::ops::minmax::max_vao_traced`],
//!   [`crate::ops::sum::weighted_sum_vao_traced`], …) thread through their
//!   evaluation loops. Every hook has an empty `#[inline]` default and the
//!   loops guard event construction behind [`ExecObserver::is_enabled`], so
//!   with the [`NoopObserver`] the whole layer monomorphizes to nothing:
//!   the untraced entry points stay exactly as fast as before the layer
//!   existed, and charge the exact same logical work either way (observers
//!   never touch the meter).
//! * [`Recorder`] — an observer that captures the full event stream
//!   ([`TraceEvent`]) and answers the questions the paper's figures are
//!   built from: per-object iteration counts, bound-width trajectories, and
//!   estimated-vs-actual CPU error (§4's `estCPU` quality).
//!
//! ```
//! use vao::cost::WorkMeter;
//! use vao::ops::selection::{select_traced, CmpOp};
//! use vao::testkit::ScriptedObject;
//! use vao::trace::Recorder;
//!
//! let mut obj = ScriptedObject::converging(
//!     &[(98.0, 110.0), (102.0, 107.0), (105.0, 105.005)],
//!     100,
//!     0.01,
//! );
//! let mut meter = WorkMeter::new();
//! let mut rec = Recorder::new();
//! select_traced(&mut obj, CmpOp::Gt, 100.0, &mut meter, &mut rec).unwrap();
//! // One refinement was needed; the recorder saw its bounds trajectory.
//! assert_eq!(rec.iterations_for(0), 1);
//! assert_eq!(rec.trajectory(0).len(), 2); // initial bounds + 1 refinement
//! ```

use crate::bounds::Bounds;
use crate::cost::{Work, WorkBreakdown, WorkMeter};

/// Which operator produced a trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatorKind {
    /// Selection predicate (§3.2).
    Selection,
    /// MAX aggregate (§5.1).
    Max,
    /// MIN aggregate (§5.1, via negation).
    Min,
    /// Weighted SUM/AVE aggregate (§5.2).
    Sum,
    /// Hybrid SUM (§6.3).
    HybridSum,
    /// Cross-query shared-pool scheduler (the `va-server` extension of §5's
    /// greedy choice to every registered query at once).
    SharedPool,
}

impl OperatorKind {
    /// Stable lowercase name used in CSV/JSONL output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::Selection => "selection",
            OperatorKind::Max => "max",
            OperatorKind::Min => "min",
            OperatorKind::Sum => "sum",
            OperatorKind::HybridSum => "hybrid_sum",
            OperatorKind::SharedPool => "shared_pool",
        }
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One strategy decision: which object the policy chose to iterate next,
/// and the estimates that justified the choice (§5's benefit/`estCPU`
/// ratio).
#[derive(Clone, Copy, Debug)]
pub struct ChoiceRecord {
    /// Index of the chosen result object in the operator's input set.
    pub object: usize,
    /// The chosen candidate's estimated benefit (operator-specific units:
    /// overlap reduction for MAX, weighted error reduction for SUM).
    pub benefit: f64,
    /// The chosen candidate's `estCPU` at decision time.
    pub est_cpu: Work,
    /// The greedy score `benefit / max(estCPU, 1)` the policy ranked by.
    pub score: f64,
    /// How many candidates were scored for this decision (`chooseIter` is
    /// charged proportionally to this).
    pub candidates: usize,
}

/// One `iterate()` call: the bounds it moved and the CPU it consumed
/// against the `estCPU` prediction.
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord {
    /// Index of the iterated result object.
    pub object: usize,
    /// 1-based position of this call in the operator evaluation.
    pub seq: u64,
    /// Bounds before the call.
    pub before: Bounds,
    /// Bounds after the call.
    pub after: Bounds,
    /// The object's `estCPU` immediately before the call.
    pub est_cpu: Work,
    /// Work actually charged to the meter by the call (all components).
    pub actual_cpu: Work,
}

impl IterationRecord {
    /// Signed estimation error `estCPU − actual` in work units.
    #[must_use]
    pub fn cpu_error(&self) -> i64 {
        self.est_cpu as i64 - self.actual_cpu as i64
    }

    /// How much the call narrowed the bounds.
    #[must_use]
    pub fn width_reduction(&self) -> f64 {
        (self.before.width() - self.after.width()).max(0.0)
    }
}

/// End-of-evaluation summary for one operator invocation.
#[derive(Clone, Copy, Debug)]
pub struct OperatorEndRecord {
    /// Which operator finished.
    pub kind: OperatorKind,
    /// Total `iterate()` calls it issued.
    pub iterations: u64,
    /// Work charged to the meter during the evaluation.
    pub work: WorkBreakdown,
}

/// One batched scheduler round: the top-`batch` candidates on distinct
/// result objects were selected, admitted against the work budget, and
/// their `iterate()` calls run (possibly on several worker threads) before
/// bounds were merged and the round's work charged.
///
/// Serial (unbatched) schedulers are the `batch == admitted == 1` special
/// case; a round with `admitted < selected` was truncated by up-front
/// budget admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// 1-based round ordinal within the operator evaluation.
    pub round: u64,
    /// Candidates scored this round (`chooseIter` is charged
    /// proportionally to this, once per round).
    pub candidates: usize,
    /// Distinct objects the policy selected for the round (≤ the
    /// configured batch size).
    pub selected: usize,
    /// Objects actually iterated after up-front budget admission
    /// (`admitted ≤ selected`; 0 never reaches the observer — the round
    /// degrades to a `budget_exhausted` event instead).
    pub admitted: usize,
    /// Summed `estCPU` of the admitted batch — the basis of the admission
    /// decision.
    pub est_cpu: Work,
    /// Work actually charged to the meter during the round (choice scoring
    /// plus every admitted `iterate()`).
    pub work: Work,
}

/// A scheduler ran out of per-tick work budget with refinement demand still
/// outstanding and degraded to anytime (interval-valued) answers.
#[derive(Clone, Copy, Debug)]
pub struct BudgetExhaustedRecord {
    /// The work-unit budget that was in force.
    pub budget: Work,
    /// Work already charged when the scheduler stopped. The scheduler stops
    /// *before* an `iterate()` that would overrun the budget, so any
    /// overshoot is bounded by the final choice-scoring charge.
    pub spent: Work,
    /// How many queries (or candidates, for single-query schedulers) still
    /// wanted refinement when the budget ran out.
    pub deferred: usize,
}

/// A server recovered persistent state from disk before resuming ticks.
///
/// Emitted once by the durability layer at the first observed tick after a
/// restart, so traces of a recovered run record where its history came
/// from — and, via `truncated_bytes`, whether a torn final journal record
/// was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Sequence number of the snapshot recovery started from (`None` when
    /// the whole journal was replayed from genesis).
    pub snapshot_seq: Option<u64>,
    /// Journal events replayed on top of the snapshot (0 after a clean
    /// shutdown).
    pub replayed_events: u64,
    /// Bytes of torn final journal record truncated away (0 on a clean
    /// open).
    pub truncated_bytes: u64,
    /// Corrupt snapshot files newer than the one recovery used that had to
    /// be skipped (0 on a healthy dir). Non-zero means recovery fell back
    /// to an older snapshot — a longer replay, not lost data.
    pub skipped_snapshots: u64,
    /// Stale temp files (crash leftovers from atomic writes) swept away
    /// before recovery started.
    pub swept_tmp_files: u64,
}

/// A durable server reclaimed journal segments after a snapshot became
/// durable.
///
/// Emitted at the first observed tick after the compaction (snapshot
/// writes happen between ticks), so traces record when history was
/// physically deleted and how much disk came back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionRecord {
    /// Sequence number of the snapshot whose durability triggered the
    /// compaction.
    pub snapshot_seq: u64,
    /// Journal segments deleted.
    pub segments_deleted: u64,
    /// Bytes those segments held.
    pub bytes_reclaimed: u64,
    /// Journal segments still on disk afterwards.
    pub live_segments: u64,
}

/// The §6.3 hybrid operator's routing decision.
#[derive(Clone, Copy, Debug)]
pub struct HybridDecisionRecord {
    /// True when the VAO path was chosen, false for the traditional path.
    pub chose_vao: bool,
    /// Measured precision slack `ε / Σ wᵢ·minWidthᵢ`.
    pub slack: f64,
    /// Measured top-decile weight concentration.
    pub concentration: f64,
}

/// Callbacks fired by the traced operator evaluation loops.
///
/// Implementations must not panic out of hooks and must not assume hooks
/// are called at all: the untraced entry points use [`NoopObserver`], whose
/// [`is_enabled`](ExecObserver::is_enabled) returns `false`, and the loops
/// skip both the hooks *and* the work of assembling their arguments.
///
/// Observers never receive the meter and cannot charge work, which is what
/// guarantees the acceptance property that tracing leaves every
/// [`WorkBreakdown`] bit-identical.
pub trait ExecObserver {
    /// Whether the operator loops should assemble and deliver events.
    ///
    /// The default is `true` (any custom observer presumably wants its
    /// events); [`NoopObserver`] overrides this to `false`, which lets the
    /// optimizer delete the observation blocks entirely.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    /// An operator evaluation over `objects` result objects began.
    #[inline]
    fn on_operator_start(&mut self, kind: OperatorKind, objects: usize) {
        let _ = (kind, objects);
    }

    /// The iteration strategy picked its next object.
    #[inline]
    fn on_choice(&mut self, choice: &ChoiceRecord) {
        let _ = choice;
    }

    /// One `iterate()` call completed.
    #[inline]
    fn on_iteration(&mut self, iteration: &IterationRecord) {
        let _ = iteration;
    }

    /// The hybrid SUM operator routed an evaluation.
    #[inline]
    fn on_hybrid_decision(&mut self, decision: &HybridDecisionRecord) {
        let _ = decision;
    }

    /// A batched scheduler finished one round (selection, admission,
    /// parallel iteration, merge).
    #[inline]
    fn on_round(&mut self, round: &RoundRecord) {
        let _ = round;
    }

    /// A budgeted scheduler exhausted its per-tick work budget and fell
    /// back to anytime answers for the queries still refining.
    #[inline]
    fn on_budget_exhausted(&mut self, record: &BudgetExhaustedRecord) {
        let _ = record;
    }

    /// A server recovered persistent state (snapshot + journal replay)
    /// before this evaluation.
    #[inline]
    fn on_recovery(&mut self, record: &RecoveryRecord) {
        let _ = record;
    }

    /// A durable server compacted its journal (deleted fully-covered
    /// segments) after a snapshot became durable.
    #[inline]
    fn on_compaction(&mut self, record: &CompactionRecord) {
        let _ = record;
    }

    /// A calibrated scheduler finished folding one tick's cost
    /// observations into its model.
    #[inline]
    fn on_calibration(&mut self, record: &CalibrationRecord) {
        let _ = record;
    }

    /// An operator evaluation finished (successfully).
    #[inline]
    fn on_operator_end(&mut self, end: &OperatorEndRecord) {
        let _ = end;
    }
}

/// Forwarding impl so call sites can pass `&mut observer` down without
/// consuming it.
impl<O: ExecObserver + ?Sized> ExecObserver for &mut O {
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline]
    fn on_operator_start(&mut self, kind: OperatorKind, objects: usize) {
        (**self).on_operator_start(kind, objects);
    }

    #[inline]
    fn on_choice(&mut self, choice: &ChoiceRecord) {
        (**self).on_choice(choice);
    }

    #[inline]
    fn on_iteration(&mut self, iteration: &IterationRecord) {
        (**self).on_iteration(iteration);
    }

    #[inline]
    fn on_hybrid_decision(&mut self, decision: &HybridDecisionRecord) {
        (**self).on_hybrid_decision(decision);
    }

    #[inline]
    fn on_round(&mut self, round: &RoundRecord) {
        (**self).on_round(round);
    }

    #[inline]
    fn on_budget_exhausted(&mut self, record: &BudgetExhaustedRecord) {
        (**self).on_budget_exhausted(record);
    }

    #[inline]
    fn on_recovery(&mut self, record: &RecoveryRecord) {
        (**self).on_recovery(record);
    }

    #[inline]
    fn on_compaction(&mut self, record: &CompactionRecord) {
        (**self).on_compaction(record);
    }

    #[inline]
    fn on_calibration(&mut self, record: &CalibrationRecord) {
        (**self).on_calibration(record);
    }

    #[inline]
    fn on_operator_end(&mut self, end: &OperatorEndRecord) {
        (**self).on_operator_end(end);
    }
}

/// The do-nothing observer the untraced entry points use.
///
/// Its `is_enabled` returns `false`, so after monomorphization every
/// observation block in the operator loops is dead code and the traced and
/// untraced paths compile to the same machine code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl ExecObserver for NoopObserver {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// One event in a recorded execution trace.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// An operator evaluation began.
    OperatorStart {
        /// Which operator.
        kind: OperatorKind,
        /// Size of its input set.
        objects: usize,
    },
    /// A strategy decision.
    Choice(ChoiceRecord),
    /// An `iterate()` call.
    Iteration(IterationRecord),
    /// A hybrid routing decision.
    HybridDecision(HybridDecisionRecord),
    /// A batched scheduler round completed.
    Round(RoundRecord),
    /// A budgeted scheduler ran out of work budget mid-evaluation.
    BudgetExhausted(BudgetExhaustedRecord),
    /// A server recovered persistent state before resuming.
    Recovery(RecoveryRecord),
    /// A durable server reclaimed journal segments behind a snapshot.
    Compaction(CompactionRecord),
    /// A calibrated scheduler folded a tick's cost observations into its
    /// model.
    Calibration(CalibrationRecord),
    /// An operator evaluation finished.
    OperatorEnd(OperatorEndRecord),
}

/// Mean absolute `estCPU` error over the iterations of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpuEstimation {
    /// Iterations the statistics cover.
    pub iterations: u64,
    /// Iterations that contributed to `mean_abs_pct_error` — those with a
    /// positive measured cost. Zero-cost iterations have no defined
    /// percentage error and are excluded from the mean (which reports 0.0
    /// when *no* iteration had positive cost); carrying the eligible count
    /// here is what lets downstream aggregation re-weight per-tick means
    /// without re-counting zero-cost iterations.
    pub pct_iterations: u64,
    /// Mean of `|estCPU − actual|` in work units.
    pub mean_abs_error: f64,
    /// Mean of `|estCPU − actual| / actual` over the `pct_iterations`
    /// eligible iterations, as a fraction: 0.07 means estimates were off
    /// by 7 % on average. Defined as 0.0 when `pct_iterations == 0`.
    pub mean_abs_pct_error: f64,
}

/// One observation folded into the scheduler's online cost calibration.
///
/// Emitted by calibrated schedulers once per admitted iteration, right
/// after the `(est, actual)` pair updates the model, so traces show the
/// model warming up and the admission gain it currently applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CalibrationRecord {
    /// Total `(est, actual)` observations folded into the model so far,
    /// including this one.
    pub observations: u64,
    /// Overall learned `actual/est` ratio in parts-per-million
    /// (1_000_000 = identity / cold model).
    pub gain_ppm: u64,
    /// The iteration's raw `estCPU` as the object reported it.
    pub raw_est: Work,
    /// Its calibrated `estCPU` — what budget admission actually charged.
    pub corrected_est: Work,
    /// Work the iteration actually metered.
    pub actual: Work,
}

/// An [`ExecObserver`] that records every event for later inspection.
///
/// The recorder is an append-only log plus a handful of derived views
/// (per-object iteration counts, bound trajectories, CPU-estimation error).
/// It can observe any number of operator evaluations; events accumulate
/// until [`Recorder::clear`].
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Discards all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of `iterate()` calls recorded for object `index`.
    #[must_use]
    pub fn iterations_for(&self, index: usize) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Iteration(it) if it.object == index))
            .count() as u64
    }

    /// Per-object iteration counts, indexed by object; sized to the largest
    /// object index seen (empty when no iterations were recorded).
    #[must_use]
    pub fn iterations_per_object(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = Vec::new();
        for e in &self.events {
            if let TraceEvent::Iteration(it) = e {
                if it.object >= counts.len() {
                    counts.resize(it.object + 1, 0);
                }
                counts[it.object] += 1;
            }
        }
        counts
    }

    /// The bounds trajectory of object `index`: its bounds before its first
    /// recorded iteration, then the bounds after each iteration, in order.
    /// Empty when the object was never iterated.
    #[must_use]
    pub fn trajectory(&self, index: usize) -> Vec<Bounds> {
        let mut traj = Vec::new();
        for e in &self.events {
            if let TraceEvent::Iteration(it) = e {
                if it.object == index {
                    if traj.is_empty() {
                        traj.push(it.before);
                    }
                    traj.push(it.after);
                }
            }
        }
        traj
    }

    /// Aggregate `estCPU` estimation error over every recorded iteration.
    #[must_use]
    pub fn cpu_estimation(&self) -> CpuEstimation {
        let mut n = 0u64;
        let mut abs_sum = 0.0f64;
        let mut pct_n = 0u64;
        let mut pct_sum = 0.0f64;
        for e in &self.events {
            if let TraceEvent::Iteration(it) = e {
                n += 1;
                let err = it.cpu_error().unsigned_abs();
                abs_sum += err as f64;
                if it.actual_cpu > 0 {
                    pct_n += 1;
                    pct_sum += err as f64 / it.actual_cpu as f64;
                }
            }
        }
        CpuEstimation {
            iterations: n,
            pct_iterations: pct_n,
            mean_abs_error: if n > 0 { abs_sum / n as f64 } else { 0.0 },
            mean_abs_pct_error: if pct_n > 0 {
                pct_sum / pct_n as f64
            } else {
                0.0
            },
        }
    }

    /// Number of strategy decisions recorded.
    #[must_use]
    pub fn choices(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Choice(_)))
            .count()
    }

    /// The batched-round records, in order.
    #[must_use]
    pub fn rounds(&self) -> Vec<RoundRecord> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Round(r) => Some(*r),
                _ => None,
            })
            .collect()
    }
}

impl ExecObserver for Recorder {
    fn on_operator_start(&mut self, kind: OperatorKind, objects: usize) {
        self.events
            .push(TraceEvent::OperatorStart { kind, objects });
    }

    fn on_choice(&mut self, choice: &ChoiceRecord) {
        self.events.push(TraceEvent::Choice(*choice));
    }

    fn on_iteration(&mut self, iteration: &IterationRecord) {
        self.events.push(TraceEvent::Iteration(*iteration));
    }

    fn on_hybrid_decision(&mut self, decision: &HybridDecisionRecord) {
        self.events.push(TraceEvent::HybridDecision(*decision));
    }

    fn on_round(&mut self, round: &RoundRecord) {
        self.events.push(TraceEvent::Round(*round));
    }

    fn on_budget_exhausted(&mut self, record: &BudgetExhaustedRecord) {
        self.events.push(TraceEvent::BudgetExhausted(*record));
    }

    fn on_recovery(&mut self, record: &RecoveryRecord) {
        self.events.push(TraceEvent::Recovery(*record));
    }

    fn on_compaction(&mut self, record: &CompactionRecord) {
        self.events.push(TraceEvent::Compaction(*record));
    }

    fn on_calibration(&mut self, record: &CalibrationRecord) {
        self.events.push(TraceEvent::Calibration(*record));
    }

    fn on_operator_end(&mut self, end: &OperatorEndRecord) {
        self.events.push(TraceEvent::OperatorEnd(*end));
    }
}

/// Helper for the operator loops: observes one `iterate()` call, measuring
/// its actual CPU via meter snapshots. Only call when
/// [`ExecObserver::is_enabled`] — the snapshot diff is the one piece of
/// per-iteration bookkeeping that is not already needed by the loop itself.
#[allow(clippy::too_many_arguments)] // internal helper mirroring the loop-site locals
pub(crate) fn observe_iteration<O: ExecObserver>(
    observer: &mut O,
    object: usize,
    seq: u64,
    before: Bounds,
    after: Bounds,
    est_cpu: Work,
    meter: &WorkMeter,
    snapshot: &WorkBreakdown,
) {
    observer.on_iteration(&IterationRecord {
        object,
        seq,
        before,
        after,
        est_cpu,
        actual_cpu: meter.since(snapshot).total(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: f64, hi: f64) -> Bounds {
        Bounds::new(lo, hi)
    }

    fn iteration(object: usize, seq: u64, before: Bounds, after: Bounds) -> IterationRecord {
        IterationRecord {
            object,
            seq,
            before,
            after,
            est_cpu: 10,
            actual_cpu: 8,
        }
    }

    #[test]
    fn noop_observer_is_disabled() {
        assert!(!NoopObserver.is_enabled());
        // And the forwarding impl preserves that.
        let mut noop = NoopObserver;
        let fwd = &mut noop;
        assert!(!fwd.is_enabled());
    }

    #[test]
    fn recorder_is_enabled_by_default() {
        assert!(Recorder::new().is_enabled());
    }

    #[test]
    fn recorder_counts_iterations_per_object() {
        let mut rec = Recorder::new();
        rec.on_iteration(&iteration(2, 1, b(0.0, 10.0), b(2.0, 8.0)));
        rec.on_iteration(&iteration(0, 2, b(0.0, 4.0), b(1.0, 3.0)));
        rec.on_iteration(&iteration(2, 3, b(2.0, 8.0), b(4.0, 6.0)));
        assert_eq!(rec.iterations_for(2), 2);
        assert_eq!(rec.iterations_for(0), 1);
        assert_eq!(rec.iterations_for(1), 0);
        assert_eq!(rec.iterations_per_object(), vec![1, 0, 2]);
    }

    #[test]
    fn recorder_builds_bound_trajectories() {
        let mut rec = Recorder::new();
        rec.on_iteration(&iteration(1, 1, b(0.0, 10.0), b(2.0, 8.0)));
        rec.on_iteration(&iteration(1, 2, b(2.0, 8.0), b(4.0, 6.0)));
        assert_eq!(
            rec.trajectory(1),
            vec![b(0.0, 10.0), b(2.0, 8.0), b(4.0, 6.0)]
        );
        assert!(rec.trajectory(0).is_empty());
    }

    #[test]
    fn cpu_estimation_summarizes_errors() {
        let mut rec = Recorder::new();
        // est 10 actual 8 -> abs err 2, pct 0.25.
        rec.on_iteration(&iteration(0, 1, b(0.0, 2.0), b(0.5, 1.5)));
        // est 6 actual 8 -> abs err 2, pct 0.25.
        rec.on_iteration(&IterationRecord {
            est_cpu: 6,
            ..iteration(0, 2, b(0.5, 1.5), b(0.9, 1.1))
        });
        let est = rec.cpu_estimation();
        assert_eq!(est.iterations, 2);
        assert_eq!(est.pct_iterations, 2);
        assert!((est.mean_abs_error - 2.0).abs() < 1e-12);
        assert!((est.mean_abs_pct_error - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cpu_estimation_skips_zero_cost_in_pct() {
        let mut rec = Recorder::new();
        rec.on_iteration(&IterationRecord {
            actual_cpu: 0,
            est_cpu: 5,
            ..iteration(0, 1, b(0.0, 2.0), b(0.5, 1.5))
        });
        let est = rec.cpu_estimation();
        assert_eq!(est.iterations, 1);
        assert_eq!(
            est.pct_iterations, 0,
            "zero-cost iterations are pct-ineligible"
        );
        assert_eq!(
            est.mean_abs_pct_error, 0.0,
            "defined as 0.0 when nothing is eligible"
        );
        assert!((est.mean_abs_error - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_estimation_counts_pct_eligible_iterations_separately() {
        let mut rec = Recorder::new();
        // One eligible (est 10, actual 8 -> pct 0.25), one zero-cost.
        rec.on_iteration(&iteration(0, 1, b(0.0, 2.0), b(0.5, 1.5)));
        rec.on_iteration(&IterationRecord {
            actual_cpu: 0,
            est_cpu: 4,
            ..iteration(0, 2, b(0.5, 1.5), b(0.9, 1.1))
        });
        let est = rec.cpu_estimation();
        assert_eq!(est.iterations, 2);
        assert_eq!(est.pct_iterations, 1);
        // The mean is over eligible iterations only, not diluted by the
        // zero-cost one.
        assert!((est.mean_abs_pct_error - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recorder_captures_calibration_events() {
        let mut rec = Recorder::new();
        let record = CalibrationRecord {
            observations: 42,
            gain_ppm: 1_250_000,
            raw_est: 900,
            corrected_est: 1_125,
            actual: 1_110,
        };
        let mut fwd = &mut rec;
        ExecObserver::on_calibration(&mut fwd, &record);
        assert!(matches!(
            rec.events(),
            [TraceEvent::Calibration(r)] if *r == record
        ));
        // The default hook is a no-op: a NoopObserver accepts it.
        NoopObserver.on_calibration(&record);
    }

    #[test]
    fn empty_recorder_yields_zeroed_summaries() {
        let rec = Recorder::new();
        assert_eq!(rec.cpu_estimation(), CpuEstimation::default());
        assert!(rec.iterations_per_object().is_empty());
        assert_eq!(rec.choices(), 0);
    }

    #[test]
    fn clear_resets_the_log() {
        let mut rec = Recorder::new();
        rec.on_operator_start(OperatorKind::Max, 3);
        rec.on_choice(&ChoiceRecord {
            object: 0,
            benefit: 1.0,
            est_cpu: 4,
            score: 0.25,
            candidates: 3,
        });
        assert_eq!(rec.events().len(), 2);
        rec.clear();
        assert!(rec.events().is_empty());
    }

    #[test]
    fn iteration_record_derived_quantities() {
        let it = iteration(0, 1, b(0.0, 10.0), b(2.0, 8.0));
        assert_eq!(it.cpu_error(), 2);
        assert!((it.width_reduction() - 4.0).abs() < 1e-12);
        // A widening iterate (contract violation) clamps to zero reduction.
        let widened = iteration(0, 2, b(2.0, 8.0), b(0.0, 10.0));
        assert_eq!(widened.width_reduction(), 0.0);
    }

    #[test]
    fn operator_kind_names_are_stable() {
        assert_eq!(OperatorKind::Selection.name(), "selection");
        assert_eq!(OperatorKind::Max.to_string(), "max");
        assert_eq!(OperatorKind::HybridSum.name(), "hybrid_sum");
        assert_eq!(OperatorKind::SharedPool.name(), "shared_pool");
    }

    #[test]
    fn recorder_captures_recovery_events() {
        let mut rec = Recorder::new();
        let record = RecoveryRecord {
            snapshot_seq: Some(3),
            replayed_events: 7,
            truncated_bytes: 12,
            skipped_snapshots: 1,
            swept_tmp_files: 2,
        };
        // Route through the forwarding impl like the server's fanout does.
        let mut fwd = &mut rec;
        ExecObserver::on_recovery(&mut fwd, &record);
        assert!(matches!(
            rec.events(),
            [TraceEvent::Recovery(r)] if *r == record
        ));
        // The default hook is a no-op: a NoopObserver accepts it.
        NoopObserver.on_recovery(&record);
    }

    #[test]
    fn recorder_captures_compaction_events() {
        let mut rec = Recorder::new();
        let record = CompactionRecord {
            snapshot_seq: 4,
            segments_deleted: 2,
            bytes_reclaimed: 8_192,
            live_segments: 3,
        };
        let mut fwd = &mut rec;
        ExecObserver::on_compaction(&mut fwd, &record);
        assert!(matches!(
            rec.events(),
            [TraceEvent::Compaction(r)] if *r == record
        ));
        NoopObserver.on_compaction(&record);
    }

    #[test]
    fn recorder_captures_budget_exhaustion() {
        let mut rec = Recorder::new();
        rec.on_budget_exhausted(&BudgetExhaustedRecord {
            budget: 1000,
            spent: 980,
            deferred: 3,
        });
        // The forwarding impl routes the hook too.
        let mut fwd = &mut rec;
        ExecObserver::on_budget_exhausted(
            &mut fwd,
            &BudgetExhaustedRecord {
                budget: 1000,
                spent: 999,
                deferred: 1,
            },
        );
        let spent: Vec<Work> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BudgetExhausted(r) => Some(r.spent),
                _ => None,
            })
            .collect();
        assert_eq!(spent, vec![980, 999]);
    }
}
