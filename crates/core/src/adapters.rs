//! Generic result-object adapters.
//!
//! * [`Negated`] flips an object's bounds about zero — MIN runs MAX over
//!   negated objects (§5.1 notes MIN is symmetric to MAX).
//! * [`Shifted`] translates an object's bounds by a constant — the synthetic
//!   workload generator of §6 maps a real bond's result object onto a target
//!   result distribution by shifting.
//! * [`WarmStarted`] seeds a freshly invoked object with bounds a previous
//!   process converged to — the recovery path's way of re-admitting objects
//!   at their achieved accuracy instead of re-iterating from scratch.

use crate::batch::{BatchLane, GridShape};
use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};
use crate::interface::ResultObject;

/// Recovered per-object state used to seed a [`WarmStarted`] adapter: the
/// bounds a previous run last reported for the object, whether it had
/// converged, and the work it had accumulated.
///
/// This is the core-side "warm start hook": the persistence layer stores
/// one of these per pool object per rate, and a recovering server wraps its
/// freshly invoked objects in [`WarmStarted`] seeded from them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmStart {
    /// The bounds the previous run last reported.
    pub bounds: Bounds,
    /// Whether the previous run had reached the stopping condition.
    pub converged: bool,
    /// Work units the object had charged in the previous run (carried into
    /// [`ResultObject::cumulative_cost`] so lifetime accounting survives
    /// the restart).
    pub prior_cost: Work,
}

/// Presents an inner result object with bounds reflected about zero.
///
/// If the inner object bounds a value `v` by `[L, H]`, the adapter bounds
/// `-v` by `[-H, -L]`. Iteration, costs and convergence pass straight
/// through, so a MAX over `Negated` objects performs exactly the iterations
/// a native MIN would.
pub struct Negated<R: ResultObject>(pub R);

impl<R: ResultObject> ResultObject for Negated<R> {
    fn bounds(&self) -> Bounds {
        self.0.bounds().negate()
    }

    fn min_width(&self) -> f64 {
        self.0.min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        self.0.iterate(meter).negate()
    }

    fn est_cpu(&self) -> Work {
        self.0.est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        self.0.est_bounds().negate()
    }

    fn converged(&self) -> bool {
        self.0.converged()
    }

    fn standalone_cost(&self) -> Work {
        self.0.standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        self.0.cumulative_cost()
    }

    // Lane batching passes through: the lane protocol runs in the inner
    // object's frame, and dispatchers read post-commit bounds through the
    // adapter (which negates), so batched and scalar execution agree.
    fn batch_shape(&self) -> Option<GridShape> {
        self.0.batch_shape()
    }

    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        self.0.as_batch_lane()
    }
}

/// Presents an inner result object with bounds translated by a constant.
///
/// §6 of the paper builds stress workloads by generating target values from
/// a chosen distribution and shifting each real bond's refinements by
/// `target − converged_real_value`; the shifted object costs exactly what
/// the real one costs while converging to the synthetic value.
pub struct Shifted<R: ResultObject> {
    inner: R,
    delta: f64,
}

impl<R: ResultObject> Shifted<R> {
    /// Wraps `inner`, translating all reported bounds by `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not finite.
    #[must_use]
    pub fn new(inner: R, delta: f64) -> Self {
        assert!(delta.is_finite(), "shift delta must be finite");
        Self { inner, delta }
    }

    /// The translation applied to the inner object's bounds.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Consumes the adapter, returning the inner object.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: ResultObject> ResultObject for Shifted<R> {
    fn bounds(&self) -> Bounds {
        self.inner.bounds().shift(self.delta)
    }

    fn min_width(&self) -> f64 {
        self.inner.min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        self.inner.iterate(meter).shift(self.delta)
    }

    fn est_cpu(&self) -> Work {
        self.inner.est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        self.inner.est_bounds().shift(self.delta)
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }

    fn standalone_cost(&self) -> Work {
        self.inner.standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        self.inner.cumulative_cost()
    }

    fn batch_shape(&self) -> Option<GridShape> {
        self.inner.batch_shape()
    }

    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        self.inner.as_batch_lane()
    }
}

/// Presents a freshly invoked result object seeded with the bounds a
/// previous process converged to.
///
/// The seeding is deliberately asymmetric between the two bound families:
///
/// * **`est_bounds()`** — always intersected with the seed. Estimated
///   bounds only steer the §5 strategy (`estL`/`estH`); tightening them
///   with recovered knowledge makes the scheduler *plan* as if the work
///   were already done, without asserting anything unproven.
/// * **`bounds()`** — intersected with the seed **only when the seed had
///   converged**. A converged seed's interval is a finished fact: the
///   adapter reports it, reports [`converged`](ResultObject::converged),
///   estimates zero [`est_cpu`](ResultObject::est_cpu), and turns
///   `iterate()` into a free no-op, so schedulers skip the object exactly
///   as they skip natively converged objects. A *non-converged* seed must
///   not tighten the reported bounds: schedulers detect stalls by watching
///   `bounds()` move across `iterate()` calls, and a seed the inner solver
///   has not caught up to yet would mask that movement.
///
/// Work accounting: iterations on the inner object charge the meter
/// exactly as they would un-wrapped (warm starts save work by *skipping*
/// iterations, never by discounting them), while `cumulative_cost` adds
/// `prior_cost` so the object's lifetime cost spans the restart.
pub struct WarmStarted<R: ResultObject> {
    inner: R,
    seed: Bounds,
    seed_converged: bool,
    prior_cost: Work,
}

impl<R: ResultObject> WarmStarted<R> {
    /// Wraps `inner`, seeding it with recovered state.
    #[must_use]
    pub fn new(inner: R, warm: WarmStart) -> Self {
        Self {
            inner,
            seed: warm.bounds,
            seed_converged: warm.converged,
            prior_cost: warm.prior_cost,
        }
    }

    /// The seed bounds the adapter was built with.
    #[must_use]
    pub fn seed(&self) -> Bounds {
        self.seed
    }

    /// Consumes the adapter, returning the inner object.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn intersect_seed(&self, b: Bounds) -> Bounds {
        // Disjoint intervals can only arise from a seed that does not
        // belong to this object (caller bug) or broken persistence; fall
        // back to the inner object's own bounds, which are always sound.
        b.intersect(&self.seed).unwrap_or(b)
    }
}

impl<R: ResultObject> ResultObject for WarmStarted<R> {
    fn bounds(&self) -> Bounds {
        let inner = self.inner.bounds();
        if self.seed_converged {
            self.intersect_seed(inner)
        } else {
            inner
        }
    }

    fn min_width(&self) -> f64 {
        self.inner.min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.seed_converged {
            // Already-final state: nothing to refine, nothing to charge.
            self.bounds()
        } else {
            self.inner.iterate(meter)
        }
    }

    fn est_cpu(&self) -> Work {
        if self.seed_converged {
            0
        } else {
            self.inner.est_cpu()
        }
    }

    fn est_bounds(&self) -> Bounds {
        self.intersect_seed(self.inner.est_bounds())
    }

    fn converged(&self) -> bool {
        self.seed_converged || self.inner.converged()
    }

    fn standalone_cost(&self) -> Work {
        self.inner.standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        self.inner.cumulative_cost() + self.prior_cost
    }

    // A converged seed makes iterate() a free no-op, so the object must
    // never join a batch; a non-converged seed passes iteration straight
    // through to the inner solver, and its lane view with it.
    fn batch_shape(&self) -> Option<GridShape> {
        if self.seed_converged {
            None
        } else {
            self.inner.batch_shape()
        }
    }

    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        if self.seed_converged {
            None
        } else {
            self.inner.as_batch_lane()
        }
    }
}

/// Boxed-object passthrough so `Box<dyn ResultObject>` (with or without
/// auto-trait markers such as `Send`) is itself a [`ResultObject`] —
/// operators can then be written once over `R: ResultObject` and used with
/// heterogeneous boxed objects.
impl<R: ResultObject + ?Sized> ResultObject for Box<R> {
    fn bounds(&self) -> Bounds {
        (**self).bounds()
    }

    fn min_width(&self) -> f64 {
        (**self).min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        (**self).iterate(meter)
    }

    fn est_cpu(&self) -> Work {
        (**self).est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        (**self).est_bounds()
    }

    fn converged(&self) -> bool {
        (**self).converged()
    }

    fn standalone_cost(&self) -> Work {
        (**self).standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        (**self).cumulative_cost()
    }

    fn batch_shape(&self) -> Option<GridShape> {
        (**self).batch_shape()
    }

    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        (**self).as_batch_lane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    #[test]
    fn negated_flips_bounds_and_estimates() {
        let inner = ScriptedObject::converging(&[(1.0, 3.0), (2.0, 2.001)], 5, 0.01);
        let mut neg = Negated(inner);
        assert_eq!(neg.bounds(), Bounds::new(-3.0, -1.0));
        assert_eq!(neg.est_bounds(), Bounds::new(-2.001, -2.0));
        let mut m = WorkMeter::new();
        let b = neg.iterate(&mut m);
        assert_eq!(b, Bounds::new(-2.001, -2.0));
        assert!(neg.converged());
        assert_eq!(m.breakdown().exec_iter, 5);
    }

    #[test]
    fn double_negation_is_identity() {
        let inner = ScriptedObject::converging(&[(1.0, 3.0)], 5, 0.01);
        let twice = Negated(Negated(inner));
        assert_eq!(twice.bounds(), Bounds::new(1.0, 3.0));
    }

    #[test]
    fn shifted_translates_everything_but_costs() {
        let inner = ScriptedObject::converging(&[(100.0, 110.0), (104.0, 104.005)], 7, 0.01);
        let mut sh = Shifted::new(inner, -4.0);
        assert_eq!(sh.bounds(), Bounds::new(96.0, 106.0));
        assert_eq!(sh.est_bounds(), Bounds::new(100.0, 100.005));
        let mut m = WorkMeter::new();
        sh.iterate(&mut m);
        assert_eq!(sh.bounds(), Bounds::new(100.0, 100.005));
        assert!(sh.converged());
        // Costs are the inner object's, untouched by the shift.
        assert_eq!(m.breakdown().exec_iter, 7);
        assert_eq!(sh.cumulative_cost(), 7);
        assert_eq!(sh.standalone_cost(), 7);
    }

    #[test]
    fn boxed_dyn_object_implements_trait() {
        let mut obj: Box<dyn ResultObject> = Box::new(ScriptedObject::converging(
            &[(0.0, 2.0), (1.0, 1.001)],
            3,
            0.01,
        ));
        let mut m = WorkMeter::new();
        obj.iterate(&mut m);
        assert!(obj.converged());
        assert_eq!(obj.bounds(), Bounds::new(1.0, 1.001));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn shifted_rejects_nan_delta() {
        let inner = ScriptedObject::converging(&[(0.0, 1.0)], 1, 0.01);
        let _ = Shifted::new(inner, f64::NAN);
    }

    #[test]
    fn converged_seed_finishes_the_object_for_free() {
        // Fresh object with wide bounds; the previous run converged it.
        let inner = ScriptedObject::converging(&[(90.0, 110.0), (99.0, 101.0)], 5, 0.01);
        let mut warm = WarmStarted::new(
            inner,
            WarmStart {
                bounds: Bounds::new(100.0, 100.005),
                converged: true,
                prior_cost: 40,
            },
        );
        assert!(warm.converged());
        assert_eq!(warm.bounds(), Bounds::new(100.0, 100.005));
        assert_eq!(warm.est_bounds(), Bounds::new(100.0, 100.005));
        assert_eq!(warm.est_cpu(), 0);
        assert_eq!(warm.seed(), Bounds::new(100.0, 100.005));
        // iterate() is a free no-op: no charge, no iteration counted.
        let mut m = WorkMeter::new();
        let b = warm.iterate(&mut m);
        assert_eq!(b, Bounds::new(100.0, 100.005));
        assert_eq!(m.total(), 0);
        assert_eq!(m.iterations(), 0);
        // Lifetime cost spans the restart: nothing new, prior carried.
        assert_eq!(warm.cumulative_cost(), 40);
    }

    #[test]
    fn non_converged_seed_steers_estimates_but_not_bounds() {
        let inner =
            ScriptedObject::converging(&[(90.0, 110.0), (95.0, 105.0), (99.0, 99.005)], 5, 0.01);
        let mut warm = WarmStarted::new(
            inner,
            WarmStart {
                bounds: Bounds::new(96.0, 104.0),
                converged: false,
                prior_cost: 10,
            },
        );
        // Reported bounds stay the inner object's own (stall detection
        // watches these move), while planning estimates tighten: the inner
        // estimate (95, 105) intersects the seed down to (96, 104).
        assert_eq!(warm.bounds(), Bounds::new(90.0, 110.0));
        assert_eq!(warm.est_bounds(), Bounds::new(96.0, 104.0));
        assert!(!warm.converged());
        assert!(warm.est_cpu() > 0);
        // Iteration passes through to the inner solver and charges fully.
        let mut m = WorkMeter::new();
        let b = warm.iterate(&mut m);
        assert_eq!(b, Bounds::new(95.0, 105.0));
        assert_eq!(m.breakdown().exec_iter, 5);
        assert_eq!(m.iterations(), 1);
        let b = warm.iterate(&mut m);
        assert_eq!(b, Bounds::new(99.0, 99.005));
        assert!(warm.converged(), "inner convergence shows through");
        assert_eq!(warm.cumulative_cost(), 10 + 10);
        assert_eq!(warm.min_width(), 0.01);
        assert_eq!(warm.into_inner().bounds(), Bounds::new(99.0, 99.005));
    }

    #[test]
    fn disjoint_seed_falls_back_to_inner_bounds() {
        let inner = ScriptedObject::converging(&[(0.0, 1.0)], 1, 0.01);
        let warm = WarmStarted::new(
            inner,
            WarmStart {
                bounds: Bounds::new(5.0, 6.0),
                converged: true,
                prior_cost: 0,
            },
        );
        assert_eq!(warm.bounds(), Bounds::new(0.0, 1.0));
        assert_eq!(warm.est_bounds(), Bounds::new(0.0, 1.0));
    }
}
