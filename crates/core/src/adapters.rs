//! Generic result-object adapters.
//!
//! * [`Negated`] flips an object's bounds about zero — MIN runs MAX over
//!   negated objects (§5.1 notes MIN is symmetric to MAX).
//! * [`Shifted`] translates an object's bounds by a constant — the synthetic
//!   workload generator of §6 maps a real bond's result object onto a target
//!   result distribution by shifting.

use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};
use crate::interface::ResultObject;

/// Presents an inner result object with bounds reflected about zero.
///
/// If the inner object bounds a value `v` by `[L, H]`, the adapter bounds
/// `-v` by `[-H, -L]`. Iteration, costs and convergence pass straight
/// through, so a MAX over `Negated` objects performs exactly the iterations
/// a native MIN would.
pub struct Negated<R: ResultObject>(pub R);

impl<R: ResultObject> ResultObject for Negated<R> {
    fn bounds(&self) -> Bounds {
        self.0.bounds().negate()
    }

    fn min_width(&self) -> f64 {
        self.0.min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        self.0.iterate(meter).negate()
    }

    fn est_cpu(&self) -> Work {
        self.0.est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        self.0.est_bounds().negate()
    }

    fn converged(&self) -> bool {
        self.0.converged()
    }

    fn standalone_cost(&self) -> Work {
        self.0.standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        self.0.cumulative_cost()
    }
}

/// Presents an inner result object with bounds translated by a constant.
///
/// §6 of the paper builds stress workloads by generating target values from
/// a chosen distribution and shifting each real bond's refinements by
/// `target − converged_real_value`; the shifted object costs exactly what
/// the real one costs while converging to the synthetic value.
pub struct Shifted<R: ResultObject> {
    inner: R,
    delta: f64,
}

impl<R: ResultObject> Shifted<R> {
    /// Wraps `inner`, translating all reported bounds by `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not finite.
    #[must_use]
    pub fn new(inner: R, delta: f64) -> Self {
        assert!(delta.is_finite(), "shift delta must be finite");
        Self { inner, delta }
    }

    /// The translation applied to the inner object's bounds.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Consumes the adapter, returning the inner object.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: ResultObject> ResultObject for Shifted<R> {
    fn bounds(&self) -> Bounds {
        self.inner.bounds().shift(self.delta)
    }

    fn min_width(&self) -> f64 {
        self.inner.min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        self.inner.iterate(meter).shift(self.delta)
    }

    fn est_cpu(&self) -> Work {
        self.inner.est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        self.inner.est_bounds().shift(self.delta)
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }

    fn standalone_cost(&self) -> Work {
        self.inner.standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        self.inner.cumulative_cost()
    }
}

/// Boxed-object passthrough so `Box<dyn ResultObject>` (with or without
/// auto-trait markers such as `Send`) is itself a [`ResultObject`] —
/// operators can then be written once over `R: ResultObject` and used with
/// heterogeneous boxed objects.
impl<R: ResultObject + ?Sized> ResultObject for Box<R> {
    fn bounds(&self) -> Bounds {
        (**self).bounds()
    }

    fn min_width(&self) -> f64 {
        (**self).min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        (**self).iterate(meter)
    }

    fn est_cpu(&self) -> Work {
        (**self).est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        (**self).est_bounds()
    }

    fn converged(&self) -> bool {
        (**self).converged()
    }

    fn standalone_cost(&self) -> Work {
        (**self).standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        (**self).cumulative_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    #[test]
    fn negated_flips_bounds_and_estimates() {
        let inner = ScriptedObject::converging(&[(1.0, 3.0), (2.0, 2.001)], 5, 0.01);
        let mut neg = Negated(inner);
        assert_eq!(neg.bounds(), Bounds::new(-3.0, -1.0));
        assert_eq!(neg.est_bounds(), Bounds::new(-2.001, -2.0));
        let mut m = WorkMeter::new();
        let b = neg.iterate(&mut m);
        assert_eq!(b, Bounds::new(-2.001, -2.0));
        assert!(neg.converged());
        assert_eq!(m.breakdown().exec_iter, 5);
    }

    #[test]
    fn double_negation_is_identity() {
        let inner = ScriptedObject::converging(&[(1.0, 3.0)], 5, 0.01);
        let twice = Negated(Negated(inner));
        assert_eq!(twice.bounds(), Bounds::new(1.0, 3.0));
    }

    #[test]
    fn shifted_translates_everything_but_costs() {
        let inner = ScriptedObject::converging(&[(100.0, 110.0), (104.0, 104.005)], 7, 0.01);
        let mut sh = Shifted::new(inner, -4.0);
        assert_eq!(sh.bounds(), Bounds::new(96.0, 106.0));
        assert_eq!(sh.est_bounds(), Bounds::new(100.0, 100.005));
        let mut m = WorkMeter::new();
        sh.iterate(&mut m);
        assert_eq!(sh.bounds(), Bounds::new(100.0, 100.005));
        assert!(sh.converged());
        // Costs are the inner object's, untouched by the shift.
        assert_eq!(m.breakdown().exec_iter, 7);
        assert_eq!(sh.cumulative_cost(), 7);
        assert_eq!(sh.standalone_cost(), 7);
    }

    #[test]
    fn boxed_dyn_object_implements_trait() {
        let mut obj: Box<dyn ResultObject> = Box::new(ScriptedObject::converging(
            &[(0.0, 2.0), (1.0, 1.001)],
            3,
            0.01,
        ));
        let mut m = WorkMeter::new();
        obj.iterate(&mut m);
        assert!(obj.converged());
        assert_eq!(obj.bounds(), Bounds::new(1.0, 1.001));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn shifted_rejects_nan_delta() {
        let inner = ScriptedObject::converging(&[(0.0, 1.0)], 1, 0.01);
        let _ = Shifted::new(inner, f64::NAN);
    }
}
