//! The VAO cost model of §3.2.
//!
//! The paper decomposes the cost of the *i*-th iteration of a function call
//! into three components —
//!
//! ```text
//! cost_iter = get_state + exec_iter + store_state
//! ```
//!
//! — and, for operators that choose among several result objects, adds a
//! fourth `chooseIter` term for strategy overhead. All costs here are
//! *logical work units*: deterministic counts of elementary operations (one
//! PDE grid-cell update, one integrand evaluation, one state-word copy, one
//! candidate scored). Wall-clock time tracks work units closely because each
//! unit corresponds to O(1) floating-point work, but work units are exactly
//! reproducible and are what the test suite asserts on.

/// Logical work units (elementary operations).
pub type Work = u64;

/// Per-component accounting of work, mirroring §3.2's cost equation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkBreakdown {
    /// Work spent executing solver iterations (`exec_iter`).
    pub exec_iter: Work,
    /// Work spent loading result-object state (`get_state`).
    pub get_state: Work,
    /// Work spent saving result-object state (`store_state`).
    pub store_state: Work,
    /// Work spent by operators choosing which object to iterate
    /// (`chooseIter`).
    pub choose_iter: Work,
}

impl WorkBreakdown {
    /// Total work across all components.
    #[must_use]
    pub fn total(&self) -> Work {
        self.exec_iter + self.get_state + self.store_state + self.choose_iter
    }

    /// Component-wise difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `earlier` is not a
    /// snapshot taken before `self` on the same meter.
    #[must_use]
    pub fn since(&self, earlier: &WorkBreakdown) -> WorkBreakdown {
        WorkBreakdown {
            exec_iter: self.exec_iter - earlier.exec_iter,
            get_state: self.get_state - earlier.get_state,
            store_state: self.store_state - earlier.store_state,
            choose_iter: self.choose_iter - earlier.choose_iter,
        }
    }
}

impl std::ops::Add for WorkBreakdown {
    type Output = WorkBreakdown;

    fn add(self, rhs: WorkBreakdown) -> WorkBreakdown {
        WorkBreakdown {
            exec_iter: self.exec_iter + rhs.exec_iter,
            get_state: self.get_state + rhs.get_state,
            store_state: self.store_state + rhs.store_state,
            choose_iter: self.choose_iter + rhs.choose_iter,
        }
    }
}

impl std::ops::AddAssign for WorkBreakdown {
    fn add_assign(&mut self, rhs: WorkBreakdown) {
        *self = *self + rhs;
    }
}

/// Accumulates the work charged by result objects and operators.
///
/// A meter is threaded through every [`crate::ResultObject::iterate`] call
/// and every operator invocation, so a single meter captures the full cost
/// of evaluating a query — which is what the experiments compare between
/// VAOs and traditional operators.
#[derive(Clone, Debug, Default)]
pub struct WorkMeter {
    breakdown: WorkBreakdown,
    iterations: u64,
}

impl WorkMeter {
    /// A fresh meter with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges solver-execution work.
    pub fn charge_exec(&mut self, units: Work) {
        self.breakdown.exec_iter += units;
    }

    /// Charges state-load work.
    pub fn charge_get_state(&mut self, units: Work) {
        self.breakdown.get_state += units;
    }

    /// Charges state-store work.
    pub fn charge_store_state(&mut self, units: Work) {
        self.breakdown.store_state += units;
    }

    /// Charges operator strategy work (`chooseIter`).
    pub fn charge_choose(&mut self, units: Work) {
        self.breakdown.choose_iter += units;
    }

    /// Records that one `iterate()` call completed.
    pub fn count_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Number of `iterate()` calls recorded so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Current cumulative breakdown.
    #[must_use]
    pub fn breakdown(&self) -> WorkBreakdown {
        self.breakdown
    }

    /// Total work across all components.
    #[must_use]
    pub fn total(&self) -> Work {
        self.breakdown.total()
    }

    /// Snapshot for later differencing with [`WorkMeter::since`].
    #[must_use]
    pub fn snapshot(&self) -> WorkBreakdown {
        self.breakdown
    }

    /// Work charged since `snapshot` was taken.
    #[must_use]
    pub fn since(&self, snapshot: &WorkBreakdown) -> WorkBreakdown {
        self.breakdown.since(snapshot)
    }

    /// Merges another meter's counters into this one.
    ///
    /// Batched schedulers hand each worker thread a private scratch meter
    /// (a `&mut WorkMeter` cannot be shared across threads) and merge the
    /// scratch meters back after the batch joins. Work units are additive
    /// counters, so the merged totals are bit-identical to what serial
    /// execution of the same `iterate()` calls would have charged.
    pub fn absorb(&mut self, other: &WorkMeter) {
        self.breakdown += other.breakdown;
        self.iterations += other.iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_component() {
        let mut m = WorkMeter::new();
        m.charge_exec(100);
        m.charge_exec(50);
        m.charge_get_state(3);
        m.charge_store_state(4);
        m.charge_choose(7);
        let b = m.breakdown();
        assert_eq!(b.exec_iter, 150);
        assert_eq!(b.get_state, 3);
        assert_eq!(b.store_state, 4);
        assert_eq!(b.choose_iter, 7);
        assert_eq!(m.total(), 164);
    }

    #[test]
    fn snapshot_diff_isolates_a_phase() {
        let mut m = WorkMeter::new();
        m.charge_exec(10);
        let snap = m.snapshot();
        m.charge_exec(25);
        m.charge_choose(5);
        let d = m.since(&snap);
        assert_eq!(d.exec_iter, 25);
        assert_eq!(d.choose_iter, 5);
        assert_eq!(d.total(), 30);
        // Full total still includes the pre-snapshot work.
        assert_eq!(m.total(), 40);
    }

    #[test]
    fn iteration_counting() {
        let mut m = WorkMeter::new();
        assert_eq!(m.iterations(), 0);
        m.count_iteration();
        m.count_iteration();
        assert_eq!(m.iterations(), 2);
    }

    #[test]
    fn absorb_merges_meters() {
        let mut a = WorkMeter::new();
        a.charge_exec(5);
        a.count_iteration();
        let mut b = WorkMeter::new();
        b.charge_exec(7);
        b.charge_choose(2);
        b.count_iteration();
        a.absorb(&b);
        assert_eq!(a.total(), 14);
        assert_eq!(a.iterations(), 2);
    }

    #[test]
    fn breakdown_add() {
        let a = WorkBreakdown {
            exec_iter: 1,
            get_state: 2,
            store_state: 3,
            choose_iter: 4,
        };
        let b = WorkBreakdown {
            exec_iter: 10,
            get_state: 20,
            store_state: 30,
            choose_iter: 40,
        };
        let c = a + b;
        assert_eq!(c.exec_iter, 11);
        assert_eq!(c.get_state, 22);
        assert_eq!(c.store_state, 33);
        assert_eq!(c.choose_iter, 44);
        assert_eq!(c.total(), 110);
    }
}
