//! The VAO cost model of §3.2.
//!
//! The paper decomposes the cost of the *i*-th iteration of a function call
//! into three components —
//!
//! ```text
//! cost_iter = get_state + exec_iter + store_state
//! ```
//!
//! — and, for operators that choose among several result objects, adds a
//! fourth `chooseIter` term for strategy overhead. All costs here are
//! *logical work units*: deterministic counts of elementary operations (one
//! PDE grid-cell update, one integrand evaluation, one state-word copy, one
//! candidate scored). Wall-clock time tracks work units closely because each
//! unit corresponds to O(1) floating-point work, but work units are exactly
//! reproducible and are what the test suite asserts on.

/// Logical work units (elementary operations).
pub type Work = u64;

/// Per-component accounting of work, mirroring §3.2's cost equation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkBreakdown {
    /// Work spent executing solver iterations (`exec_iter`).
    pub exec_iter: Work,
    /// Work spent loading result-object state (`get_state`).
    pub get_state: Work,
    /// Work spent saving result-object state (`store_state`).
    pub store_state: Work,
    /// Work spent by operators choosing which object to iterate
    /// (`chooseIter`).
    pub choose_iter: Work,
}

impl WorkBreakdown {
    /// Total work across all components.
    #[must_use]
    pub fn total(&self) -> Work {
        self.exec_iter + self.get_state + self.store_state + self.choose_iter
    }

    /// Component-wise difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `earlier` is not a
    /// snapshot taken before `self` on the same meter.
    #[must_use]
    pub fn since(&self, earlier: &WorkBreakdown) -> WorkBreakdown {
        WorkBreakdown {
            exec_iter: self.exec_iter - earlier.exec_iter,
            get_state: self.get_state - earlier.get_state,
            store_state: self.store_state - earlier.store_state,
            choose_iter: self.choose_iter - earlier.choose_iter,
        }
    }
}

impl std::ops::Add for WorkBreakdown {
    type Output = WorkBreakdown;

    fn add(self, rhs: WorkBreakdown) -> WorkBreakdown {
        WorkBreakdown {
            exec_iter: self.exec_iter + rhs.exec_iter,
            get_state: self.get_state + rhs.get_state,
            store_state: self.store_state + rhs.store_state,
            choose_iter: self.choose_iter + rhs.choose_iter,
        }
    }
}

impl std::ops::AddAssign for WorkBreakdown {
    fn add_assign(&mut self, rhs: WorkBreakdown) {
        *self = *self + rhs;
    }
}

/// Accumulates the work charged by result objects and operators.
///
/// A meter is threaded through every [`crate::ResultObject::iterate`] call
/// and every operator invocation, so a single meter captures the full cost
/// of evaluating a query — which is what the experiments compare between
/// VAOs and traditional operators.
#[derive(Clone, Debug, Default)]
pub struct WorkMeter {
    breakdown: WorkBreakdown,
    iterations: u64,
}

impl WorkMeter {
    /// A fresh meter with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges solver-execution work.
    pub fn charge_exec(&mut self, units: Work) {
        self.breakdown.exec_iter += units;
    }

    /// Charges state-load work.
    pub fn charge_get_state(&mut self, units: Work) {
        self.breakdown.get_state += units;
    }

    /// Charges state-store work.
    pub fn charge_store_state(&mut self, units: Work) {
        self.breakdown.store_state += units;
    }

    /// Charges operator strategy work (`chooseIter`).
    pub fn charge_choose(&mut self, units: Work) {
        self.breakdown.choose_iter += units;
    }

    /// Records that one `iterate()` call completed.
    pub fn count_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Number of `iterate()` calls recorded so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Current cumulative breakdown.
    #[must_use]
    pub fn breakdown(&self) -> WorkBreakdown {
        self.breakdown
    }

    /// Total work across all components.
    #[must_use]
    pub fn total(&self) -> Work {
        self.breakdown.total()
    }

    /// Snapshot for later differencing with [`WorkMeter::since`].
    #[must_use]
    pub fn snapshot(&self) -> WorkBreakdown {
        self.breakdown
    }

    /// Work charged since `snapshot` was taken.
    #[must_use]
    pub fn since(&self, snapshot: &WorkBreakdown) -> WorkBreakdown {
        self.breakdown.since(snapshot)
    }

    /// Merges another meter's counters into this one.
    ///
    /// Batched schedulers hand each worker thread a private scratch meter
    /// (a `&mut WorkMeter` cannot be shared across threads) and merge the
    /// scratch meters back after the batch joins. Work units are additive
    /// counters, so the merged totals are bit-identical to what serial
    /// execution of the same `iterate()` calls would have charged.
    pub fn absorb(&mut self, other: &WorkMeter) {
        self.breakdown += other.breakdown;
        self.iterations += other.iterations;
    }
}

/// Number of magnitude classes a [`Calibrator`] learns over: class `k`
/// covers estimates whose bit length is `k` (i.e. `2^(k-1) ≤ est < 2^k`),
/// with everything `≥ 2^(CAL_CLASSES-1)` clamped into the top class.
pub const CAL_CLASSES: usize = 16;

/// Observations a class needs before [`Calibrator::correct`] trusts its
/// ratio. Below this the calibrator returns the raw estimate unchanged.
pub const CAL_MIN_OBSERVATIONS: u64 = 8;

/// Decay threshold: when any counter in a cell would exceed this, the whole
/// cell is halved, so the learned ratio tracks drift instead of averaging
/// over all history. Power of two; halving is exact integer arithmetic.
const CAL_DECAY_LIMIT: u64 = 1 << 20;

/// One magnitude class of a [`Calibrator`]: integer sums of observed
/// estimated and actual iteration costs. All-integer state makes persisted
/// calibration trivially bit-exact across crash recovery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CalCell {
    /// Number of `(est, actual)` pairs folded into this cell.
    pub observations: u64,
    /// Sum of the estimated costs observed.
    pub est_sum: Work,
    /// Sum of the actual (metered) costs observed.
    pub actual_sum: Work,
}

/// Online multiplicative calibration of `estCPU` against metered cost.
///
/// The paper's scheduler (§5) admits work by trusting each object's
/// `estCPU`; the trace layer (PR 1) measures how wrong that trust is
/// (`cpu_mae` / `cpu_mape_pct`) but never feeds it back. The calibrator
/// closes the loop, GRACEFUL-style: per magnitude class of the raw
/// estimate it maintains integer sums of estimated and actual cost, and
/// [`correct`](Calibrator::correct) rescales a raw estimate by the
/// class's observed `actual/est` ratio once the class has seen enough
/// observations. Cold classes return the estimate unchanged, so an
/// uncalibrated (or freshly recovered legacy) model is exactly the
/// identity function.
///
/// Determinism: all state is integer, updates are order-dependent only in
/// the trivial additive sense, and the correction uses round-half-up
/// integer division — replaying the same observation stream rebuilds the
/// model bit-identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Calibrator {
    cells: [CalCell; CAL_CLASSES],
}

impl Calibrator {
    /// A cold (identity) calibrator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a calibrator from persisted cells.
    #[must_use]
    pub fn from_cells(cells: [CalCell; CAL_CLASSES]) -> Self {
        Self { cells }
    }

    /// The per-class state, for persistence.
    #[must_use]
    pub fn cells(&self) -> &[CalCell; CAL_CLASSES] {
        &self.cells
    }

    /// Magnitude class of a raw estimate: its bit length, clamped to the
    /// top class. `class(0) == 0`, `class(1) == 1`, `class(2..=3) == 2`, …
    fn class(est: Work) -> usize {
        let bits = (Work::BITS - est.leading_zeros()) as usize;
        bits.min(CAL_CLASSES - 1)
    }

    /// Folds one `(estimated, actual)` iteration-cost pair into the model.
    pub fn observe(&mut self, est: Work, actual: Work) {
        let cell = &mut self.cells[Self::class(est)];
        cell.observations += 1;
        cell.est_sum += est;
        cell.actual_sum += actual;
        if cell.observations >= CAL_DECAY_LIMIT
            || cell.est_sum >= CAL_DECAY_LIMIT
            || cell.actual_sum >= CAL_DECAY_LIMIT
        {
            cell.observations /= 2;
            cell.est_sum /= 2;
            cell.actual_sum /= 2;
        }
    }

    /// Rescales a raw estimate by its class's learned `actual/est` ratio.
    ///
    /// Identity while the class is cold (fewer than
    /// [`CAL_MIN_OBSERVATIONS`] observations, or a zero `est_sum`).
    /// A positive raw estimate never corrects below 1 work unit: a learned
    /// ratio of ~0 must not make admission free, or a recovered warm pool
    /// could re-admit converged objects past their achieved accuracy.
    #[must_use]
    pub fn correct(&self, est: Work) -> Work {
        let cell = &self.cells[Self::class(est)];
        if est == 0 || cell.observations < CAL_MIN_OBSERVATIONS || cell.est_sum == 0 {
            return est;
        }
        let corrected = (u128::from(est) * u128::from(cell.actual_sum)
            + u128::from(cell.est_sum / 2))
            / u128::from(cell.est_sum);
        Work::try_from(corrected).unwrap_or(Work::MAX).max(1)
    }

    /// Total observations across all classes.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.cells.iter().map(|c| c.observations).sum()
    }

    /// Whether no class has learned anything yet (the model is the
    /// identity everywhere).
    #[must_use]
    pub fn is_cold(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.observations < CAL_MIN_OBSERVATIONS || c.est_sum == 0)
    }

    /// Overall `actual/est` ratio in parts-per-million across warm
    /// classes, for budget arbitration and STATS. `1_000_000` (ratio 1.0)
    /// while cold.
    #[must_use]
    pub fn gain_ppm(&self) -> u64 {
        let mut est: u128 = 0;
        let mut actual: u128 = 0;
        for c in &self.cells {
            if c.observations >= CAL_MIN_OBSERVATIONS && c.est_sum > 0 {
                est += u128::from(c.est_sum);
                actual += u128::from(c.actual_sum);
            }
        }
        if est == 0 {
            return 1_000_000;
        }
        u64::try_from((actual * 1_000_000 + est / 2) / est).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_component() {
        let mut m = WorkMeter::new();
        m.charge_exec(100);
        m.charge_exec(50);
        m.charge_get_state(3);
        m.charge_store_state(4);
        m.charge_choose(7);
        let b = m.breakdown();
        assert_eq!(b.exec_iter, 150);
        assert_eq!(b.get_state, 3);
        assert_eq!(b.store_state, 4);
        assert_eq!(b.choose_iter, 7);
        assert_eq!(m.total(), 164);
    }

    #[test]
    fn snapshot_diff_isolates_a_phase() {
        let mut m = WorkMeter::new();
        m.charge_exec(10);
        let snap = m.snapshot();
        m.charge_exec(25);
        m.charge_choose(5);
        let d = m.since(&snap);
        assert_eq!(d.exec_iter, 25);
        assert_eq!(d.choose_iter, 5);
        assert_eq!(d.total(), 30);
        // Full total still includes the pre-snapshot work.
        assert_eq!(m.total(), 40);
    }

    #[test]
    fn iteration_counting() {
        let mut m = WorkMeter::new();
        assert_eq!(m.iterations(), 0);
        m.count_iteration();
        m.count_iteration();
        assert_eq!(m.iterations(), 2);
    }

    #[test]
    fn absorb_merges_meters() {
        let mut a = WorkMeter::new();
        a.charge_exec(5);
        a.count_iteration();
        let mut b = WorkMeter::new();
        b.charge_exec(7);
        b.charge_choose(2);
        b.count_iteration();
        a.absorb(&b);
        assert_eq!(a.total(), 14);
        assert_eq!(a.iterations(), 2);
    }

    #[test]
    fn breakdown_add() {
        let a = WorkBreakdown {
            exec_iter: 1,
            get_state: 2,
            store_state: 3,
            choose_iter: 4,
        };
        let b = WorkBreakdown {
            exec_iter: 10,
            get_state: 20,
            store_state: 30,
            choose_iter: 40,
        };
        let c = a + b;
        assert_eq!(c.exec_iter, 11);
        assert_eq!(c.get_state, 22);
        assert_eq!(c.store_state, 33);
        assert_eq!(c.choose_iter, 44);
        assert_eq!(c.total(), 110);
    }

    #[test]
    fn cold_calibrator_is_the_identity() {
        let cal = Calibrator::new();
        assert!(cal.is_cold());
        assert_eq!(cal.observations(), 0);
        assert_eq!(cal.gain_ppm(), 1_000_000);
        for est in [0, 1, 7, 100, 1_000_000] {
            assert_eq!(cal.correct(est), est);
        }
    }

    #[test]
    fn calibrator_stays_identity_below_min_observations() {
        let mut cal = Calibrator::new();
        for _ in 0..(CAL_MIN_OBSERVATIONS - 1) {
            cal.observe(100, 200);
        }
        assert_eq!(cal.correct(100), 100, "class still cold");
        cal.observe(100, 200);
        assert_eq!(cal.correct(100), 200, "class warmed at the threshold");
        assert!(!cal.is_cold());
    }

    #[test]
    fn calibrator_learns_a_per_class_ratio() {
        let mut cal = Calibrator::new();
        // Small estimates run 2x over; large estimates run at half cost.
        for _ in 0..16 {
            cal.observe(100, 200);
            cal.observe(10_000, 5_000);
        }
        assert_eq!(cal.correct(100), 200);
        assert_eq!(cal.correct(120), 240, "same class, scaled");
        assert_eq!(cal.correct(10_000), 5_000);
        // An estimate in a class never observed is untouched.
        assert_eq!(cal.correct(3), 3);
        // Overall gain pools both warm classes.
        let gain = cal.gain_ppm();
        assert!(gain > 0 && gain < 1_000_000, "{gain}");
    }

    #[test]
    fn calibrator_correction_never_reaches_zero_for_positive_estimates() {
        let mut cal = Calibrator::new();
        for _ in 0..32 {
            cal.observe(1_000, 0);
        }
        // Learned ratio ~0 must still charge at least one unit.
        assert_eq!(cal.correct(1_000), 1);
        // And a zero estimate stays zero (identity on the untracked class).
        assert_eq!(cal.correct(0), 0);
    }

    #[test]
    fn calibrator_round_trips_through_cells() {
        let mut cal = Calibrator::new();
        for i in 0..100u64 {
            cal.observe(50 + i, 90 + i);
        }
        let restored = Calibrator::from_cells(*cal.cells());
        assert_eq!(restored, cal);
        assert_eq!(restored.correct(64), cal.correct(64));
    }

    #[test]
    fn calibrator_decay_preserves_the_ratio_and_bounds_state() {
        let mut cal = Calibrator::new();
        let big = CAL_DECAY_LIMIT / 2 + 7;
        cal.observe(big, big * 2 / 3);
        cal.observe(big, big * 2 / 3); // crosses the limit -> halved
        let cell = cal.cells()[Calibrator::class(big)];
        assert!(cell.est_sum < CAL_DECAY_LIMIT);
        assert!(cell.actual_sum < CAL_DECAY_LIMIT);
    }
}
