//! Closed real intervals `[lo, hi]` used as error bounds on function results.
//!
//! Every variable-accuracy function reports its (unknown) true value through
//! a [`Bounds`] pair: the paper's `L` and `H` data members (§3.2). This
//! module provides the small interval algebra the operators need: width,
//! containment, overlap, intersection, shifting and negation.

use crate::error::VaoError;

/// A closed interval `[lo, hi]` with `lo <= hi`, both finite.
///
/// Invariants are established at construction and preserved by every method,
/// so operators can rely on `width() >= 0` and finiteness throughout.
///
/// ```
/// use vao::Bounds;
/// let price = Bounds::new(98.0, 110.0);
/// assert!(price.contains(100.0));          // predicate undecided
/// let refined = Bounds::new(102.0, 107.0);
/// assert!(refined.entirely_above(100.0));  // predicate true
/// assert_eq!(price.intersect(&refined), Some(refined));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Bounds {
    lo: f64,
    hi: f64,
}

impl Bounds {
    /// Creates bounds from `lo` and `hi`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is non-finite or if `lo > hi`. Use
    /// [`Bounds::try_new`] for fallible construction from untrusted values.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        Self::try_new(lo, hi).expect("invalid bounds")
    }

    /// Fallible constructor: rejects non-finite endpoints and `lo > hi`.
    pub fn try_new(lo: f64, hi: f64) -> Result<Self, VaoError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(VaoError::NonFiniteBounds { lo, hi });
        }
        if lo > hi {
            return Err(VaoError::InvertedBounds { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// Creates bounds from two endpoints in either order.
    ///
    /// Useful when an error model produces endpoints whose relative order
    /// depends on the signs of estimated error coefficients.
    pub fn ordered(a: f64, b: f64) -> Result<Self, VaoError> {
        if a <= b {
            Self::try_new(a, b)
        } else {
            Self::try_new(b, a)
        }
    }

    /// A degenerate interval `[v, v]`.
    #[must_use]
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The lower endpoint (`L` in the paper).
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper endpoint (`H` in the paper).
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width `H - L`; the paper's accuracy measure.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval midpoint, used as the point estimate when one is required.
    #[must_use]
    pub fn mid(&self) -> f64 {
        self.lo + 0.5 * (self.hi - self.lo)
    }

    /// Whether `v` lies within the closed interval.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the whole interval lies strictly above `v`.
    #[must_use]
    pub fn entirely_above(&self, v: f64) -> bool {
        self.lo > v
    }

    /// Whether the whole interval lies strictly below `v`.
    #[must_use]
    pub fn entirely_below(&self, v: f64) -> bool {
        self.hi < v
    }

    /// Length of the overlap with `other` (zero if disjoint).
    ///
    /// This is the quantity the MAX VAO's greedy heuristic tries to drive to
    /// zero between the presumed maximum and every other object (§5.1).
    #[must_use]
    pub fn overlap(&self, other: &Bounds) -> f64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0)
    }

    /// Whether the two intervals share at least one point.
    #[must_use]
    pub fn overlaps(&self, other: &Bounds) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of two intervals, or `None` if they are disjoint.
    ///
    /// Result objects whose refinements are each individually valid may
    /// intersect successive bounds to enforce monotone shrinkage.
    #[must_use]
    pub fn intersect(&self, other: &Bounds) -> Option<Bounds> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Bounds { lo, hi })
    }

    /// Translates the interval by `delta`.
    ///
    /// The synthetic-workload generator of §6 shifts the bounds of a real
    /// result object by a per-bond constant so that converged values follow a
    /// chosen distribution.
    #[must_use]
    pub fn shift(&self, delta: f64) -> Bounds {
        Bounds::new(self.lo + delta, self.hi + delta)
    }

    /// Reflects the interval about zero: `[-hi, -lo]`.
    ///
    /// Used by the MIN operator, which runs MAX over negated objects.
    #[must_use]
    pub fn negate(&self) -> Bounds {
        Bounds {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Scales both endpoints by a nonnegative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite (the weighted-sum
    /// operator requires nonnegative weights; see §5.2).
    #[must_use]
    pub fn scale(&self, factor: f64) -> Bounds {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and nonnegative, got {factor}"
        );
        Bounds {
            lo: self.lo * factor,
            hi: self.hi * factor,
        }
    }

    /// Interval addition: `[a.lo + b.lo, a.hi + b.hi]`.
    #[must_use]
    pub fn add(&self, other: &Bounds) -> Bounds {
        Bounds {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl std::fmt::Display for Bounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_valid() {
        let b = Bounds::new(1.0, 2.0);
        assert_eq!(b.lo(), 1.0);
        assert_eq!(b.hi(), 2.0);
        assert_eq!(b.width(), 1.0);
        assert_eq!(b.mid(), 1.5);
    }

    #[test]
    fn construction_point() {
        let b = Bounds::point(3.5);
        assert_eq!(b.width(), 0.0);
        assert!(b.contains(3.5));
    }

    #[test]
    fn try_new_rejects_inverted() {
        assert!(matches!(
            Bounds::try_new(2.0, 1.0),
            Err(VaoError::InvertedBounds { .. })
        ));
    }

    #[test]
    fn try_new_rejects_nan_and_inf() {
        assert!(Bounds::try_new(f64::NAN, 1.0).is_err());
        assert!(Bounds::try_new(0.0, f64::INFINITY).is_err());
        assert!(Bounds::try_new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn ordered_sorts_endpoints() {
        let b = Bounds::ordered(5.0, 2.0).unwrap();
        assert_eq!((b.lo(), b.hi()), (2.0, 5.0));
        let b = Bounds::ordered(2.0, 5.0).unwrap();
        assert_eq!((b.lo(), b.hi()), (2.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn new_panics_on_inverted() {
        let _ = Bounds::new(2.0, 1.0);
    }

    #[test]
    fn contains_endpoints() {
        let b = Bounds::new(1.0, 2.0);
        assert!(b.contains(1.0));
        assert!(b.contains(2.0));
        assert!(!b.contains(0.999));
        assert!(!b.contains(2.001));
    }

    #[test]
    fn entirely_above_below() {
        let b = Bounds::new(101.0, 104.0);
        assert!(b.entirely_above(100.0));
        assert!(!b.entirely_above(101.0)); // touching is not strictly above
        assert!(!b.entirely_below(104.0));
        assert!(b.entirely_below(105.0));
    }

    #[test]
    fn overlap_amounts() {
        // Example from the paper's Table 2 / Figure 6: o1 = [97,101],
        // o3 = [100,106]; overlap is 101 - 100 = 1.
        let o1 = Bounds::new(97.0, 101.0);
        let o3 = Bounds::new(100.0, 106.0);
        assert_eq!(o1.overlap(&o3), 1.0);
        assert_eq!(o3.overlap(&o1), 1.0);
        // Disjoint intervals have zero overlap.
        let far = Bounds::new(200.0, 300.0);
        assert_eq!(o1.overlap(&far), 0.0);
        assert!(!o1.overlaps(&far));
        // Containment: overlap equals the smaller width.
        let inner = Bounds::new(98.0, 99.0);
        assert_eq!(o1.overlap(&inner), 1.0);
    }

    #[test]
    fn overlaps_touching() {
        let a = Bounds::new(0.0, 1.0);
        let b = Bounds::new(1.0, 2.0);
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn intersect_some_and_none() {
        let a = Bounds::new(0.0, 10.0);
        let b = Bounds::new(5.0, 15.0);
        let i = a.intersect(&b).unwrap();
        assert_eq!((i.lo(), i.hi()), (5.0, 10.0));
        let c = Bounds::new(11.0, 12.0);
        assert!(b.intersect(&c).is_some());
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn shift_and_negate() {
        let b = Bounds::new(1.0, 3.0);
        let s = b.shift(-0.5);
        assert_eq!((s.lo(), s.hi()), (0.5, 2.5));
        let n = b.negate();
        assert_eq!((n.lo(), n.hi()), (-3.0, -1.0));
        assert_eq!(n.negate(), b);
    }

    #[test]
    fn scale_and_add() {
        let b = Bounds::new(1.0, 3.0);
        let s = b.scale(2.0);
        assert_eq!((s.lo(), s.hi()), (2.0, 6.0));
        let z = b.scale(0.0);
        assert_eq!(z.width(), 0.0);
        let sum = b.add(&Bounds::new(10.0, 20.0));
        assert_eq!((sum.lo(), sum.hi()), (11.0, 23.0));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn scale_rejects_negative() {
        let _ = Bounds::new(1.0, 2.0).scale(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bounds::new(1.0, 2.5).to_string(), "[1, 2.5]");
    }
}
