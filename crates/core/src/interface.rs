//! The iterative UDF interface of §3.2.
//!
//! With the VAO interface, the first call to a UDF returns a **result
//! object** instead of a value. The object carries:
//!
//! * `H` and `L` — high and low error bounds on the function value
//!   ([`ResultObject::bounds`]);
//! * `iterate()` — refine the bounds at the cost of more CPU
//!   ([`ResultObject::iterate`]);
//! * `minWidth` — the bounds width under which the answer is considered as
//!   accurate as possible ([`ResultObject::min_width`]);
//! * `estCPU`, `estL`, `estH` — estimates of the cost and outcome of the
//!   *next* iteration, used by aggregate VAOs to choose among objects
//!   ([`ResultObject::est_cpu`], [`ResultObject::est_bounds`]).

use crate::batch::{BatchLane, GridShape};
use crate::bounds::Bounds;
use crate::cost::{Work, WorkMeter};

/// A refinable approximation to a real-valued function result.
///
/// # Contract
///
/// Implementations must uphold, and the operators rely on:
///
/// 1. **Soundness** — the true function value always lies within
///    `bounds()`, at every refinement level.
/// 2. **Monotone shrinkage** — `iterate()` never widens the bounds (an
///    implementation may enforce this by intersecting successive bounds,
///    which is sound because each refinement's bounds are individually
///    valid).
/// 3. **Progress** — unless `converged()`, repeated `iterate()` calls
///    eventually drive `bounds().width()` below `min_width()`.
/// 4. **Idempotence at convergence** — once `converged()`, `iterate()` is a
///    no-op returning the current bounds without charging work.
/// 5. **Estimates are advisory** — `est_cpu()`/`est_bounds()` guide strategy
///    choices but carry no soundness obligation (§4: they come from big-O
///    error forms that ignore higher-order terms).
pub trait ResultObject {
    /// Current error bounds `[L, H]` on the function value.
    fn bounds(&self) -> Bounds;

    /// The bounds width under which no more `iterate()` calls should run.
    ///
    /// For the paper's bond models this is \$0.01: prices are only
    /// meaningful to the cent, so tighter bounds are useless.
    fn min_width(&self) -> f64;

    /// Refines the bounds, charging the consumed work to `meter`, and
    /// returns the new bounds.
    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds;

    /// Estimated CPU cost of the next `iterate()` call (`estCPU`).
    fn est_cpu(&self) -> Work;

    /// Estimated bounds after the next `iterate()` call (`[estL, estH]`).
    ///
    /// When `converged()`, returns the current bounds.
    fn est_bounds(&self) -> Bounds;

    /// Whether the stopping condition `width < minWidth` has been reached.
    fn converged(&self) -> bool {
        self.bounds().width() < self.min_width()
    }

    /// Work a traditional ("black box") implementation would spend to
    /// produce the current accuracy in a single call.
    ///
    /// §4.1 observes that for PDE solvers the final VAO iteration costs
    /// about as much as the traditional call at the same accuracy, so this
    /// is typically the cost of the *last* iteration alone; for integrators
    /// and root solvers it equals the cumulative cost (§4.3–4.4). The
    /// traditional-operator baseline replays exactly this amount of work.
    fn standalone_cost(&self) -> Work;

    /// Total solver work this object has charged across all iterations.
    fn cumulative_cost(&self) -> Work;

    /// The grid shape of the next iteration's fresh solve, when that
    /// iteration could instead run as one lane of a shape-grouped batched
    /// solve (see [`crate::batch`]). `None` — the default — means the next
    /// step must run through plain [`iterate`](ResultObject::iterate)
    /// (non-mesh objects, cache hits, converged or capped objects).
    ///
    /// Whenever this returns `Some`,
    /// [`as_batch_lane`](ResultObject::as_batch_lane) must return `Some`
    /// and the lane's [`BatchLane::lane_shape`] must agree.
    fn batch_shape(&self) -> Option<GridShape> {
        None
    }

    /// The object's lane view for a batched dispatcher, or `None` for
    /// scalar-only objects (the default).
    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        None
    }
}

impl<R: ResultObject + ?Sized> ResultObject for &mut R {
    fn bounds(&self) -> Bounds {
        (**self).bounds()
    }

    fn min_width(&self) -> f64 {
        (**self).min_width()
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        (**self).iterate(meter)
    }

    fn est_cpu(&self) -> Work {
        (**self).est_cpu()
    }

    fn est_bounds(&self) -> Bounds {
        (**self).est_bounds()
    }

    fn converged(&self) -> bool {
        (**self).converged()
    }

    fn standalone_cost(&self) -> Work {
        (**self).standalone_cost()
    }

    fn cumulative_cost(&self) -> Work {
        (**self).cumulative_cost()
    }

    fn batch_shape(&self) -> Option<GridShape> {
        (**self).batch_shape()
    }

    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        (**self).as_batch_lane()
    }
}

/// A user-defined function exposed through the variable-accuracy interface.
///
/// `invoke` performs the *minimal* amount of compute for the function and
/// returns a result object with initial, very coarse bounds (§3.2). The
/// work of that initial computation is charged to `meter`.
///
/// Result objects are `Send` so that schedulers may farm disjoint objects
/// out to worker threads (the `va-server` batched-round scheduler does);
/// solver state is plain owned data, so implementations satisfy the bound
/// without ceremony.
pub trait VariableAccuracyFn<Args: ?Sized> {
    /// Begins evaluating the function on `args`, returning a refinable
    /// result object.
    fn invoke(&self, args: &Args, meter: &mut WorkMeter) -> Box<dyn ResultObject + Send>;
}

impl<Args: ?Sized, F: VariableAccuracyFn<Args> + ?Sized> VariableAccuracyFn<Args> for &F {
    fn invoke(&self, args: &Args, meter: &mut WorkMeter) -> Box<dyn ResultObject + Send> {
        (**self).invoke(args, meter)
    }
}

/// A traditional all-or-nothing UDF: one call, one number, fixed accuracy.
///
/// This is the "black box" interface VAOs replace; it is retained as the
/// baseline the experiments compare against (§3.1, §6).
pub trait BlackBoxFn<Args: ?Sized> {
    /// Evaluates the function to its fixed accuracy, charging its full cost.
    fn call(&self, args: &Args, meter: &mut WorkMeter) -> f64;
}

impl<Args: ?Sized, F: BlackBoxFn<Args> + ?Sized> BlackBoxFn<Args> for &F {
    fn call(&self, args: &Args, meter: &mut WorkMeter) -> f64 {
        (**self).call(args, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ScriptedObject;

    #[test]
    fn converged_uses_strict_less_than() {
        // width == min_width is NOT converged (paper: "width ... under which").
        let obj = ScriptedObject::converging(&[(0.0, 0.01)], 1, 0.01);
        assert!(!obj.converged());
        let obj = ScriptedObject::converging(&[(0.0, 0.009)], 1, 0.01);
        assert!(obj.converged());
    }

    #[test]
    fn variable_accuracy_fn_usable_through_reference() {
        struct Unit;
        impl VariableAccuracyFn<f64> for Unit {
            fn invoke(&self, args: &f64, meter: &mut WorkMeter) -> Box<dyn ResultObject + Send> {
                meter.charge_exec(1);
                Box::new(ScriptedObject::converging(
                    &[(*args - 1.0, *args + 1.0), (*args, *args)],
                    1,
                    0.5,
                ))
            }
        }
        fn takes_generic<F: VariableAccuracyFn<f64>>(f: F) -> Bounds {
            let mut m = WorkMeter::new();
            f.invoke(&5.0, &mut m).bounds()
        }
        let f = Unit;
        let b = takes_generic(&f); // &F impl
        assert_eq!((b.lo(), b.hi()), (4.0, 6.0));
    }
}
