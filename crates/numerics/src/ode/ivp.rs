//! Initial-value ODE solvers with variable accuracy.
//!
//! §4.2 covers the boundary-value case in detail; initial-value problems
//! (`y' = f(x, y)`, `y(a) = y₀`, query `y(b)`) are the other big class of
//! ODE solves with the same work/accuracy trade-off: a fixed-step marcher
//! whose global error is `O(hᵖ)` (p = 1 for explicit Euler, p = 4 for the
//! classical Runge–Kutta scheme). Step halving plus the one-term
//! Richardson fit gives real-valued error bounds exactly as for the other
//! solver families.

use vao::cost::{Work, WorkMeter};
use vao::interface::ResultObject;
use vao::Bounds;

/// An initial-value problem `y' = f(x, y)`, `y(a) = y₀`, queried at `b`.
pub trait InitialValueProblem {
    /// Integration interval `[a, b]`, `a < b`.
    fn interval(&self) -> (f64, f64);
    /// Initial value `y(a)`.
    fn initial(&self) -> f64;
    /// The derivative `f(x, y)`.
    fn rhs(&self, x: f64, y: f64) -> f64;
}

/// The marching scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IvpMethod {
    /// Explicit Euler: one `rhs` evaluation per step, global error `O(h)`.
    Euler,
    /// Classical fourth-order Runge–Kutta: four evaluations per step,
    /// global error `O(h⁴)`.
    RungeKutta4,
}

impl IvpMethod {
    /// Global order of accuracy `p`.
    #[must_use]
    pub fn order(&self) -> u32 {
        match self {
            IvpMethod::Euler => 1,
            IvpMethod::RungeKutta4 => 4,
        }
    }

    /// `rhs` evaluations per step.
    #[must_use]
    pub fn evals_per_step(&self) -> u64 {
        match self {
            IvpMethod::Euler => 1,
            IvpMethod::RungeKutta4 => 4,
        }
    }
}

/// Marches the problem with `n` fixed steps; returns `(y(b), work)` where
/// work counts `rhs` evaluations.
pub fn solve_ivp<P: InitialValueProblem>(problem: &P, method: IvpMethod, n: u32) -> (f64, Work) {
    assert!(n >= 1, "need at least one step");
    let (a, b) = problem.interval();
    assert!(a.is_finite() && b.is_finite() && a < b, "bad interval");
    let h = (b - a) / f64::from(n);
    let mut y = problem.initial();
    for i in 0..n {
        let x = a + h * f64::from(i);
        y = match method {
            IvpMethod::Euler => y + h * problem.rhs(x, y),
            IvpMethod::RungeKutta4 => {
                let k1 = problem.rhs(x, y);
                let k2 = problem.rhs(x + 0.5 * h, y + 0.5 * h * k1);
                let k3 = problem.rhs(x + 0.5 * h, y + 0.5 * h * k2);
                let k4 = problem.rhs(x + h, y + h * k3);
                y + h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            }
        };
    }
    (y, u64::from(n) * method.evals_per_step())
}

/// Configuration for [`IvpResultObject`].
#[derive(Clone, Copy, Debug)]
pub struct IvpVaoConfig {
    /// Marching scheme.
    pub method: IvpMethod,
    /// Steps of the initial (coarsest) march.
    pub initial_n: u32,
    /// The `minWidth` stopping threshold.
    pub min_width: f64,
    /// Safety factor on the fitted coefficient (paper: 3).
    pub safety: f64,
    /// Hard cap on steps per march.
    pub max_steps: u64,
}

impl Default for IvpVaoConfig {
    fn default() -> Self {
        Self {
            method: IvpMethod::RungeKutta4,
            initial_n: 4,
            min_width: 1e-9,
            safety: 3.0,
            max_steps: 1 << 26,
        }
    }
}

/// A refinable IVP solution implementing [`ResultObject`].
///
/// The error model is `K·hᵖ`, fitted from the two most recent marches:
/// halving `h` divides the error by `2ᵖ`, so
/// `K = (F_coarse − F_fine) / (hᵖ·(1 − 2⁻ᵖ))`.
pub struct IvpResultObject<P: InitialValueProblem> {
    problem: P,
    config: IvpVaoConfig,
    n: u32,
    value: f64,
    k: f64,
    bounds: Bounds,
    cumulative: Work,
    last_work: Work,
    capped: bool,
}

impl<P: InitialValueProblem> IvpResultObject<P> {
    /// Creates the object with marches at `n` and `2n` to fit the error
    /// coefficient; work charged to `meter`.
    pub fn new(problem: P, config: IvpVaoConfig, meter: &mut WorkMeter) -> Self {
        assert!(
            config.min_width > 0.0 && config.min_width.is_finite(),
            "min_width must be positive"
        );
        let n = config.initial_n.max(1);
        let (f1, w1) = solve_ivp(&problem, config.method, n);
        let (f2, w2) = solve_ivp(&problem, config.method, n * 2);
        meter.charge_exec(w1 + w2);
        meter.charge_store_state(1);

        let (a, b) = problem.interval();
        let h = (b - a) / f64::from(n);
        let p = config.method.order();
        let k = (f1 - f2) / (h.powi(p as i32) * (1.0 - 0.5f64.powi(p as i32)));
        let h_fine = h / 2.0;
        let bounds = signed_error_bounds(f2, k * h_fine.powi(p as i32), config.safety);
        Self {
            problem,
            config,
            n: n * 2,
            value: f2,
            k,
            bounds,
            cumulative: w1 + w2,
            last_work: w2,
            capped: false,
        }
    }

    /// Current step count.
    #[must_use]
    pub fn steps(&self) -> u32 {
        self.n
    }

    /// Whether refinement hit the step cap.
    #[must_use]
    pub fn capped(&self) -> bool {
        self.capped
    }

    fn h(&self, n: u32) -> f64 {
        let (a, b) = self.problem.interval();
        (b - a) / f64::from(n)
    }
}

/// Bounds around `value` for a signed modeled error `e` with a safety
/// factor: the true answer is `value − e(1 ± safety-slack)`.
fn signed_error_bounds(value: f64, e: f64, safety: f64) -> Bounds {
    Bounds::new(value - safety * e.max(0.0), value + safety * (-e).max(0.0))
}

impl<P: InitialValueProblem> ResultObject for IvpResultObject<P> {
    fn bounds(&self) -> Bounds {
        self.bounds
    }

    fn min_width(&self) -> f64 {
        self.config.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let new_n = self.n.saturating_mul(2);
        if u64::from(new_n) > self.config.max_steps || new_n >= u32::MAX / 2 {
            self.capped = true;
            return self.bounds;
        }
        let (new_value, work) = solve_ivp(&self.problem, self.config.method, new_n);
        meter.charge_get_state(1);
        meter.charge_exec(work);
        meter.charge_store_state(1);
        meter.count_iteration();
        self.cumulative += work;
        self.last_work = work;

        let p = self.config.method.order() as i32;
        let h_old = self.h(self.n);
        self.k = (self.value - new_value) / (h_old.powi(p) * (1.0 - 0.5f64.powi(p)));
        self.n = new_n;
        self.value = new_value;
        let fresh = signed_error_bounds(
            new_value,
            self.k * self.h(new_n).powi(p),
            self.config.safety,
        );
        self.bounds = self.bounds.intersect(&fresh).unwrap_or(fresh);
        self.bounds
    }

    fn est_cpu(&self) -> Work {
        if self.converged() || self.capped {
            0
        } else {
            u64::from(self.n) * 2 * self.config.method.evals_per_step()
        }
    }

    fn est_bounds(&self) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let p = self.config.method.order() as i32;
        let h = self.h(self.n);
        let e = self.k * h.powi(p);
        let shrink = 0.5f64.powi(p);
        let predicted_value = self.value - e * (1.0 - shrink);
        let predicted = signed_error_bounds(predicted_value, e * shrink, self.config.safety);
        predicted.intersect(&self.bounds).unwrap_or(predicted)
    }

    fn standalone_cost(&self) -> Work {
        self.last_work
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }
}

/// Logistic growth `y' = r·y·(1 − y/cap)` — a nonlinear test problem with
/// the closed-form solution
/// `y(x) = cap / (1 + (cap/y₀ − 1)·e^{−r·x})`.
#[derive(Clone, Copy, Debug)]
pub struct LogisticGrowth {
    /// Growth rate `r`.
    pub rate: f64,
    /// Carrying capacity.
    pub cap: f64,
    /// Initial population `y(0)`.
    pub y0: f64,
    /// Horizon `b` (integrate over `[0, b]`).
    pub horizon: f64,
}

impl LogisticGrowth {
    /// The exact solution at `x`.
    #[must_use]
    pub fn exact(&self, x: f64) -> f64 {
        self.cap / (1.0 + (self.cap / self.y0 - 1.0) * (-self.rate * x).exp())
    }
}

impl InitialValueProblem for LogisticGrowth {
    fn interval(&self) -> (f64, f64) {
        (0.0, self.horizon)
    }

    fn initial(&self) -> f64 {
        self.y0
    }

    fn rhs(&self, _x: f64, y: f64) -> f64 {
        self.rate * y * (1.0 - y / self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logistic() -> LogisticGrowth {
        LogisticGrowth {
            rate: 0.8,
            cap: 10.0,
            y0: 1.0,
            horizon: 5.0,
        }
    }

    #[test]
    fn euler_is_first_order() {
        let p = logistic();
        let exact = p.exact(5.0);
        let (v1, w1) = solve_ivp(&p, IvpMethod::Euler, 256);
        let (v2, w2) = solve_ivp(&p, IvpMethod::Euler, 512);
        let ratio = (v1 - exact).abs() / (v2 - exact).abs();
        assert!((1.7..2.3).contains(&ratio), "Euler order ratio {ratio}");
        assert_eq!(w1, 256);
        assert_eq!(w2, 512);
    }

    #[test]
    fn rk4_is_fourth_order() {
        let p = logistic();
        let exact = p.exact(5.0);
        let (v1, w1) = solve_ivp(&p, IvpMethod::RungeKutta4, 16);
        let (v2, _) = solve_ivp(&p, IvpMethod::RungeKutta4, 32);
        let ratio = (v1 - exact).abs() / (v2 - exact).abs();
        assert!((10.0..25.0).contains(&ratio), "RK4 order ratio {ratio}");
        assert_eq!(w1, 64, "four evals per step");
    }

    #[test]
    fn vao_object_converges_soundly_with_rk4() {
        let p = logistic();
        let exact = p.exact(5.0);
        let mut meter = WorkMeter::new();
        let mut obj = IvpResultObject::new(p, IvpVaoConfig::default(), &mut meter);
        let mut guard = 0;
        while !obj.converged() {
            let b = obj.iterate(&mut meter);
            assert!(
                b.contains(exact) || (b.mid() - exact).abs() < 1e-9,
                "bounds {b} vs exact {exact}"
            );
            guard += 1;
            assert!(guard < 30);
        }
        assert!((obj.bounds().mid() - exact).abs() < 1e-8);
    }

    #[test]
    fn euler_object_needs_far_more_work_than_rk4() {
        let p = logistic();
        let run = |method: IvpMethod| {
            let mut meter = WorkMeter::new();
            let mut obj = IvpResultObject::new(
                p,
                IvpVaoConfig {
                    method,
                    min_width: 1e-6,
                    max_steps: 1 << 24,
                    ..IvpVaoConfig::default()
                },
                &mut meter,
            );
            let mut guard = 0;
            while !obj.converged() && !obj.capped() && guard < 40 {
                obj.iterate(&mut meter);
                guard += 1;
            }
            (obj.converged(), meter.total())
        };
        let (rk_done, rk_work) = run(IvpMethod::RungeKutta4);
        let (eu_done, eu_work) = run(IvpMethod::Euler);
        assert!(rk_done);
        assert!(eu_done);
        assert!(
            rk_work * 10 < eu_work,
            "RK4 {rk_work} should crush Euler {eu_work} at 1e-6"
        );
    }

    #[test]
    fn est_cpu_matches_next_march() {
        let mut meter = WorkMeter::new();
        let mut obj = IvpResultObject::new(logistic(), IvpVaoConfig::default(), &mut meter);
        for _ in 0..4 {
            if obj.converged() {
                break;
            }
            let est = obj.est_cpu();
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            assert_eq!(est, m.breakdown().exec_iter);
        }
    }

    #[test]
    fn step_cap_stalls_gracefully() {
        let mut meter = WorkMeter::new();
        let mut obj = IvpResultObject::new(
            logistic(),
            IvpVaoConfig {
                min_width: 1e-300,
                max_steps: 64,
                ..IvpVaoConfig::default()
            },
            &mut meter,
        );
        for _ in 0..20 {
            obj.iterate(&mut meter);
        }
        assert!(obj.capped());
        let before = meter.total();
        obj.iterate(&mut meter);
        assert_eq!(meter.total(), before);
    }

    #[test]
    fn works_inside_a_selection_vao() {
        // "Will the population exceed 9 by t=5?" decided without running
        // the march to 1e-9 accuracy.
        use vao::ops::selection::{select, CmpOp};
        let p = logistic();
        let mut meter = WorkMeter::new();
        let mut obj = IvpResultObject::new(
            p,
            IvpVaoConfig {
                min_width: 1e-9,
                ..IvpVaoConfig::default()
            },
            &mut meter,
        );
        let out = select(&mut obj, CmpOp::Gt, 9.0, &mut meter).unwrap();
        // exact(5) ≈ 8.58 < 9, so the answer is false.
        assert!(!out.satisfied);
        assert!(obj.bounds().width() > 1e-9, "stopped well before minWidth");
    }
}
