//! Linear two-point boundary-value ODEs with variable accuracy (§4.2).
//!
//! §4.2's example is the beam-deflection equation
//! `w''(x) = (S/EI)·w(x) + (q·x/2EI)(x − l)` with `w(0) = w(l) = 0`: a
//! linear second-order BVP solved by finite differencing, "very similar" to
//! the PDE case but with a single grid dimension — which makes the
//! extrapolation machinery a one-term `K·h²` model.

pub mod bvp;
pub mod ivp;
pub mod vao;

pub use bvp::{solve_bvp, BeamProblem, BvpError, LinearBvp};
pub use ivp::{solve_ivp, InitialValueProblem, IvpMethod, IvpResultObject, IvpVaoConfig};
pub use vao::{OdeResultObject, OdeVaoConfig};
