//! Finite-difference solver for linear two-point boundary-value problems.
//!
//! Problems of the form `w''(x) = v(x)·w(x) + u(x)` on `[a, b]` with
//! Dirichlet conditions `w(a) = wa`, `w(b) = wb`. The standard 3-point
//! stencil gives a tridiagonal system with `O(h²)` error.

use vao::cost::Work;

use crate::tridiag::{solve_tridiagonal, TridiagError};

/// A linear second-order BVP `w'' = v(x)·w + u(x)`, `w(a)=wa`, `w(b)=wb`,
/// queried at `x_query`.
pub trait LinearBvp {
    /// Interval `[a, b]`, `a < b`.
    fn interval(&self) -> (f64, f64);
    /// Coefficient `v(x)` multiplying `w`.
    fn linear_coeff(&self, x: f64) -> f64;
    /// Forcing term `u(x)`.
    fn forcing(&self, x: f64) -> f64;
    /// Boundary values `(w(a), w(b))`.
    fn boundary(&self) -> (f64, f64);
    /// Query point inside `[a, b]`.
    fn x_query(&self) -> f64;
}

/// Errors from the BVP solver.
#[derive(Clone, Debug, PartialEq)]
pub enum BvpError {
    /// Fewer than two intervals, or invalid geometry.
    BadInput(String),
    /// The tridiagonal system was singular (e.g. `v < 0` resonance).
    Singular(TridiagError),
}

impl std::fmt::Display for BvpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BvpError::BadInput(m) => write!(f, "invalid BVP input: {m}"),
            BvpError::Singular(e) => write!(f, "singular BVP system: {e}"),
        }
    }
}

impl std::error::Error for BvpError {}

/// Solves the BVP on `n` intervals and returns `(w(x_query), work)`.
///
/// Work is one unit per grid node, matching the PDE solver's mesh-entry
/// accounting.
pub fn solve_bvp<B: LinearBvp>(problem: &B, n: u32) -> Result<(f64, Work), BvpError> {
    if n < 2 {
        return Err(BvpError::BadInput(format!("need >= 2 intervals, got {n}")));
    }
    let (a, b) = problem.interval();
    if !(a.is_finite() && b.is_finite() && a < b) {
        return Err(BvpError::BadInput(format!("bad interval [{a}, {b}]")));
    }
    let xq = problem.x_query();
    if !(xq >= a && xq <= b) {
        return Err(BvpError::BadInput(format!("query {xq} outside [{a}, {b}]")));
    }

    let h = (b - a) / f64::from(n);
    let m = n as usize - 1; // interior nodes
    let (wa, wb) = problem.boundary();

    let mut sub = vec![1.0; m];
    let mut sup = vec![1.0; m];
    let mut diag = vec![0.0; m];
    let mut rhs = vec![0.0; m];
    for i in 0..m {
        let x = a + h * (i as f64 + 1.0);
        diag[i] = -(2.0 + h * h * problem.linear_coeff(x));
        rhs[i] = h * h * problem.forcing(x);
    }
    rhs[0] -= wa;
    rhs[m - 1] -= wb;
    sub[0] = 0.0;
    sup[m - 1] = 0.0;

    let w = solve_tridiagonal(&sub, &diag, &sup, &rhs).map_err(BvpError::Singular)?;

    // Full solution vector including boundaries, then interpolate.
    let node = |i: usize| -> f64 {
        if i == 0 {
            wa
        } else if i == n as usize {
            wb
        } else {
            w[i - 1]
        }
    };
    let pos = ((xq - a) / h).clamp(0.0, f64::from(n));
    let i0 = (pos.floor() as usize).min(n as usize - 1);
    let frac = pos - i0 as f64;
    let value = node(i0) * (1.0 - frac) + node(i0 + 1) * frac;
    Ok((value, u64::from(n) + 1))
}

/// The beam-deflection problem of §4.2:
/// `w'' = (S/EI)·w + (q·x/2EI)(x − l)`, `w(0) = w(l) = 0`.
#[derive(Clone, Copy, Debug)]
pub struct BeamProblem {
    /// Beam length `l`.
    pub length: f64,
    /// Axial stress `S`.
    pub stress: f64,
    /// Flexural rigidity `EI`.
    pub rigidity: f64,
    /// Uniform load intensity `q`.
    pub load: f64,
    /// Where the deflection is wanted.
    pub x_query: f64,
}

impl BeamProblem {
    /// A typical steel-beam instance (Burden & Faires flavour).
    #[must_use]
    pub fn example() -> Self {
        Self {
            length: 120.0,
            stress: 1000.0,
            rigidity: 3.0e7,
            load: 100.0,
            x_query: 60.0,
        }
    }

    /// Closed-form solution, used to validate the solver:
    /// `w(x) = c₁e^{λx} + c₂e^{−λx} − q/(2S)·x² + ql/(2S)·x − qEI/S²` with
    /// `λ = √(S/EI)` and `c₁, c₂` fixed by the boundary conditions.
    #[must_use]
    pub fn exact(&self, x: f64) -> f64 {
        let lambda = (self.stress / self.rigidity).sqrt();
        let gamma = -self.load * self.rigidity / (self.stress * self.stress);
        let l = self.length;
        // c1 + c2 = -gamma ; c1 e^{λl} + c2 e^{-λl} = -gamma
        let (ep, em) = ((lambda * l).exp(), (-lambda * l).exp());
        let c1 = -gamma * (1.0 - em) / (ep - em);
        let c2 = -gamma - c1;
        let particular = -self.load / (2.0 * self.stress) * x * x
            + self.load * l / (2.0 * self.stress) * x
            + gamma;
        c1 * (lambda * x).exp() + c2 * (-lambda * x).exp() + particular
    }
}

impl LinearBvp for BeamProblem {
    fn interval(&self) -> (f64, f64) {
        (0.0, self.length)
    }

    fn linear_coeff(&self, _x: f64) -> f64 {
        self.stress / self.rigidity
    }

    fn forcing(&self, x: f64) -> f64 {
        self.load * x / (2.0 * self.rigidity) * (x - self.length)
    }

    fn boundary(&self) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn x_query(&self) -> f64 {
        self.x_query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_solution_satisfies_boundaries_and_ode() {
        let p = BeamProblem::example();
        assert!(p.exact(0.0).abs() < 1e-9);
        assert!(p.exact(p.length).abs() < 1e-9);
        // Check the ODE residual at a few points by central differences.
        let h = 1e-3;
        for &x in &[20.0, 60.0, 100.0] {
            let wxx = (p.exact(x + h) - 2.0 * p.exact(x) + p.exact(x - h)) / (h * h);
            let rhs = p.linear_coeff(x) * p.exact(x) + p.forcing(x);
            assert!((wxx - rhs).abs() < 1e-5, "x={x}: {wxx} vs {rhs}");
        }
    }

    #[test]
    fn solver_converges_to_exact_beam_deflection() {
        let p = BeamProblem::example();
        let exact = p.exact(p.x_query);
        let (coarse, w1) = solve_bvp(&p, 8).unwrap();
        let (fine, w2) = solve_bvp(&p, 256).unwrap();
        assert!((fine - exact).abs() < (coarse - exact).abs());
        // O(h²) with h = 120/256: absolute error lands in the 1e-4 range
        // for this ~8.7-inch deflection.
        assert!((fine - exact).abs() < 1e-3, "{fine} vs {exact}");
        assert_eq!(w1, 9);
        assert_eq!(w2, 257);
        let (finest, _) = solve_bvp(&p, 4096).unwrap();
        assert!((finest - exact).abs() < 1e-5, "{finest} vs {exact}");
    }

    #[test]
    fn error_is_second_order_in_h() {
        let p = BeamProblem::example();
        let exact = p.exact(p.x_query);
        let (v1, _) = solve_bvp(&p, 16).unwrap();
        let (v2, _) = solve_bvp(&p, 32).unwrap();
        let ratio = (v1 - exact).abs() / (v2 - exact).abs();
        assert!((3.0..5.0).contains(&ratio), "expected ~4x, got {ratio}");
    }

    #[test]
    fn nonzero_boundaries_are_respected() {
        // w'' = 0 with w(0)=1, w(2)=5: solution is linear 1 + 2x.
        struct Line;
        impl LinearBvp for Line {
            fn interval(&self) -> (f64, f64) {
                (0.0, 2.0)
            }
            fn linear_coeff(&self, _: f64) -> f64 {
                0.0
            }
            fn forcing(&self, _: f64) -> f64 {
                0.0
            }
            fn boundary(&self) -> (f64, f64) {
                (1.0, 5.0)
            }
            fn x_query(&self) -> f64 {
                0.7
            }
        }
        let (v, _) = solve_bvp(&Line, 10).unwrap();
        assert!((v - (1.0 + 2.0 * 0.7)).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_input() {
        let p = BeamProblem::example();
        assert!(matches!(solve_bvp(&p, 1), Err(BvpError::BadInput(_))));
        let bad = BeamProblem {
            x_query: -5.0,
            ..BeamProblem::example()
        };
        assert!(matches!(solve_bvp(&bad, 8), Err(BvpError::BadInput(_))));
    }

    #[test]
    fn query_at_boundary_returns_boundary_value() {
        let p = BeamProblem {
            x_query: 0.0,
            ..BeamProblem::example()
        };
        let (v, _) = solve_bvp(&p, 8).unwrap();
        assert_eq!(v, 0.0);
        let p = BeamProblem {
            x_query: 120.0,
            ..BeamProblem::example()
        };
        let (v, _) = solve_bvp(&p, 8).unwrap();
        assert_eq!(v, 0.0);
    }
}
