//! The BVP solver wrapped as a variable-accuracy result object (§4.2).
//!
//! "The only difference is the presence of only one dimension in the grid,
//! which makes the extrapolation techniques slightly simpler": the error
//! model is a single term `K·h²`, fitted from two solves at `h` and `h/2`
//! (`K = (4/3)(F₁−F₂)/h²`), with the paper's safety factor bounding the
//! answer. Each `iterate()` halves `h` (one new solve, twice the nodes) and
//! re-fits `K`.

use vao::cost::{Work, WorkMeter};
use vao::interface::ResultObject;
use vao::Bounds;

use crate::ode::bvp::{solve_bvp, BvpError, LinearBvp};

/// Construction parameters for [`OdeResultObject`].
#[derive(Clone, Copy, Debug)]
pub struct OdeVaoConfig {
    /// Intervals of the initial (coarsest) grid.
    pub initial_n: u32,
    /// The `minWidth` stopping threshold.
    pub min_width: f64,
    /// Safety factor on the fitted coefficient (paper: 3).
    pub safety: f64,
    /// Hard cap on grid nodes per solve.
    pub max_nodes: u64,
}

impl Default for OdeVaoConfig {
    fn default() -> Self {
        Self {
            initial_n: 4,
            min_width: 1e-6,
            safety: 3.0,
            max_nodes: 1 << 24,
        }
    }
}

/// A refinable BVP solution implementing [`ResultObject`].
pub struct OdeResultObject<B: LinearBvp> {
    problem: B,
    config: OdeVaoConfig,
    n: u32,
    value: f64,
    k: f64,
    bounds: Bounds,
    cumulative: Work,
    last_solve_work: Work,
    capped: bool,
}

impl<B: LinearBvp> OdeResultObject<B> {
    /// Creates the object with two coarse solves (at `n` and `2n`) to fit
    /// the error coefficient; work is charged to `meter`.
    pub fn new(problem: B, config: OdeVaoConfig, meter: &mut WorkMeter) -> Result<Self, BvpError> {
        assert!(
            config.min_width > 0.0 && config.min_width.is_finite(),
            "min_width must be positive"
        );
        let n = config.initial_n.max(2);
        let (f1, w1) = solve_bvp(&problem, n)?;
        let (f2, w2) = solve_bvp(&problem, n * 2)?;
        meter.charge_exec(w1 + w2);
        meter.charge_store_state(1);

        let (a, b) = problem.interval();
        let h = (b - a) / f64::from(n);
        let k = (4.0 / 3.0) * (f1 - f2) / (h * h);
        // Center on the *finer* solution: its modeled error is K·(h/2)².
        let h_fine = h / 2.0;
        let bounds = one_term_bounds(f2, k, h_fine, config.safety);
        Ok(Self {
            problem,
            config,
            n: n * 2,
            value: f2,
            k,
            bounds,
            cumulative: w1 + w2,
            last_solve_work: w2,
            capped: false,
        })
    }

    /// Current grid intervals.
    #[must_use]
    pub fn grid(&self) -> u32 {
        self.n
    }

    /// The fitted `K` of the `K·h²` error model.
    #[must_use]
    pub fn error_coefficient(&self) -> f64 {
        self.k
    }

    /// Whether refinement stopped at the node cap.
    #[must_use]
    pub fn capped(&self) -> bool {
        self.capped
    }

    fn h(&self, n: u32) -> f64 {
        let (a, b) = self.problem.interval();
        (b - a) / f64::from(n)
    }
}

/// Bounds around `value` for a one-term signed error `K·h²`.
fn one_term_bounds(value: f64, k: f64, h: f64, safety: f64) -> Bounds {
    let e = k * h * h;
    Bounds::new(value - safety * e.max(0.0), value + safety * (-e).max(0.0))
}

impl<B: LinearBvp> ResultObject for OdeResultObject<B> {
    fn bounds(&self) -> Bounds {
        self.bounds
    }

    fn min_width(&self) -> f64 {
        self.config.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let new_n = self.n.saturating_mul(2);
        if u64::from(new_n) + 1 > self.config.max_nodes || new_n >= u32::MAX / 2 {
            self.capped = true;
            return self.bounds;
        }
        let (new_value, work) = match solve_bvp(&self.problem, new_n) {
            Ok(r) => r,
            Err(_) => {
                self.capped = true;
                return self.bounds;
            }
        };
        meter.charge_get_state(1);
        meter.charge_exec(work);
        meter.charge_store_state(1);
        meter.count_iteration();
        self.cumulative += work;
        self.last_solve_work = work;

        let h_old = self.h(self.n);
        self.k = (4.0 / 3.0) * (self.value - new_value) / (h_old * h_old);
        self.n = new_n;
        self.value = new_value;
        let fresh = one_term_bounds(new_value, self.k, self.h(new_n), self.config.safety);
        self.bounds = self.bounds.intersect(&fresh).unwrap_or(fresh);
        self.bounds
    }

    fn est_cpu(&self) -> Work {
        if self.converged() || self.capped {
            0
        } else {
            u64::from(self.n) * 2 + 1
        }
    }

    fn est_bounds(&self) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let h = self.h(self.n);
        // Halving h removes 3/4 of the modeled error from the value and
        // quarters the residual error.
        let predicted_value = self.value - 0.75 * self.k * h * h;
        let predicted = one_term_bounds(predicted_value, self.k, h / 2.0, self.config.safety);
        predicted.intersect(&self.bounds).unwrap_or(predicted)
    }

    fn standalone_cost(&self) -> Work {
        self.last_solve_work
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::bvp::BeamProblem;

    fn beam_object(min_width: f64) -> (OdeResultObject<BeamProblem>, WorkMeter) {
        let mut meter = WorkMeter::new();
        let obj = OdeResultObject::new(
            BeamProblem::example(),
            OdeVaoConfig {
                min_width,
                ..OdeVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        (obj, meter)
    }

    #[test]
    fn initial_bounds_contain_exact_deflection() {
        let (obj, meter) = beam_object(1e-6);
        let exact = BeamProblem::example().exact(60.0);
        assert!(obj.bounds().contains(exact), "{} vs {exact}", obj.bounds());
        // Two solves charged: 5 + 9 nodes.
        assert_eq!(meter.breakdown().exec_iter, 14);
    }

    #[test]
    fn refines_to_convergence_and_stays_sound() {
        // minWidth 1e-6: far below any useful engineering tolerance but
        // still above the tridiagonal solver's round-off floor (the
        // paper's footnote 4 — iterating past machine accuracy corrupts
        // the extrapolation model).
        let (mut obj, mut meter) = beam_object(1e-6);
        let exact = BeamProblem::example().exact(60.0);
        let mut guard = 0;
        while !obj.converged() && !obj.capped() {
            let b = obj.iterate(&mut meter);
            assert!(
                b.contains(exact),
                "iteration {guard}: bounds {b} lost exact {exact}"
            );
            guard += 1;
            assert!(guard < 30);
        }
        assert!(obj.converged(), "must converge before the node cap");
        assert!(obj.bounds().width() < 1e-6);
        assert!((obj.bounds().mid() - exact).abs() < 1e-6);
    }

    #[test]
    fn work_doubles_per_iteration() {
        let (mut obj, _) = beam_object(1e-12);
        let mut prev = 0u64;
        for i in 0..5 {
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            let w = m.breakdown().exec_iter;
            if i > 0 {
                let ratio = w as f64 / prev as f64;
                assert!((1.8..=2.2).contains(&ratio), "{w} vs {prev}");
            }
            prev = w;
        }
    }

    #[test]
    fn est_cpu_matches_next_solve() {
        let (mut obj, _) = beam_object(1e-12);
        for _ in 0..4 {
            let est = obj.est_cpu();
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            assert_eq!(est, m.breakdown().exec_iter);
        }
    }

    #[test]
    fn est_bounds_predict_roughly_quartered_error() {
        let (mut obj, mut meter) = beam_object(1e-12);
        obj.iterate(&mut meter);
        let est = obj.est_bounds();
        let actual = obj.iterate(&mut meter);
        let ratio = est.width() / actual.width().max(1e-300);
        assert!((0.2..=5.0).contains(&ratio), "est {est} vs actual {actual}");
    }

    #[test]
    fn node_cap_stalls_gracefully() {
        let mut meter = WorkMeter::new();
        let mut obj = OdeResultObject::new(
            BeamProblem::example(),
            OdeVaoConfig {
                min_width: 1e-300, // unreachable
                max_nodes: 64,
                ..OdeVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        for _ in 0..20 {
            obj.iterate(&mut meter);
        }
        assert!(obj.capped());
        let before = meter.total();
        obj.iterate(&mut meter);
        assert_eq!(meter.total(), before);
        assert_eq!(obj.est_cpu(), 0);
    }

    #[test]
    fn standalone_cost_tracks_last_grid() {
        let (mut obj, mut meter) = beam_object(1e-6);
        while !obj.converged() && !obj.capped() {
            obj.iterate(&mut meter);
        }
        assert!(obj.converged());
        assert_eq!(obj.standalone_cost(), u64::from(obj.grid()) + 1);
        // Geometric doubling: cumulative < ~2.5x the final solve.
        assert!(obj.cumulative_cost() < 3 * obj.standalone_cost());
    }
}
