//! # Variable-accuracy numerical solvers
//!
//! The solver substrate for the VAO reproduction (§4 of Denny & Franklin,
//! *Adaptive Execution of Variable-Accuracy Functions*, 2006). Each solver
//! family is implemented twice over:
//!
//! 1. a plain numerical routine (finite differencing, composite quadrature,
//!    bracketing), and
//! 2. a **VAO adapter** exposing it through the iterative
//!    [`vao::ResultObject`] interface — coarse initial bounds, `iterate()`
//!    to refine, `estCPU`/`estL`/`estH` estimates for iteration strategies.
//!
//! Families:
//!
//! * [`pde`] — parabolic PDEs (the bond-model workhorse, §4.1): implicit
//!   finite differencing with `O(Δt + Δx²)` error and Richardson
//!   extrapolation to real-valued error bounds.
//! * [`ode`] — linear two-point boundary-value problems (§4.2, the beam
//!   deflection example): finite differencing with `O(h²)` error.
//! * [`integrate`] — numerical integration (§4.3): composite trapezoid and
//!   Simpson rules with interval-halving refinement.
//! * [`roots`] — root finding (§4.4): bisection, whose bracket *is* its
//!   error bound.
//! * [`tridiag`] — the Thomas algorithm shared by the finite-difference
//!   solvers, both the scalar [`tridiag::ThomasSolver`] and the
//!   lane-parallel [`tridiag::BatchThomasSolver`] over struct-of-arrays
//!   [`tridiag::TridiagBatch`] planes (bit-identical per lane, but with the
//!   per-row division latency chain pipelined across lanes).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod integrate;
pub mod ode;
pub mod pde;
pub mod roots;
pub mod tridiag;
