//! Numerical integration as a variable-accuracy result object (§4.3).
//!
//! The object wraps the interval-halving [`TrapezoidLadder`]. At level `k`
//! the trapezoid error is modeled as `K·h²` per the big-O form, so the
//! observable difference between successive levels pins the error:
//! `E(Tₖ₊₁) ≈ |Tₖ − Tₖ₊₁| / 3`, and the *next* level's error is about a
//! quarter of that (§4.3's "one-fourth of the current error magnitude").
//! A safety factor (default 3) covers the higher-order terms the model
//! ignores. The Simpson variant accelerates the same ladder: its estimate
//! is the Richardson combination `(4Tₖ₊₁ − Tₖ)/3`, with error shrinking
//! ~16× per level.

use vao::cost::{Work, WorkMeter};
use vao::interface::ResultObject;
use vao::Bounds;

use crate::integrate::rules::TrapezoidLadder;

/// Which quadrature rule drives the bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuadratureRule {
    /// Composite trapezoid: error quarters per level.
    Trapezoid,
    /// Richardson-accelerated (Simpson): error shrinks ~16× per level.
    Simpson,
}

/// Construction parameters for [`QuadratureResultObject`].
#[derive(Clone, Copy, Debug)]
pub struct QuadratureVaoConfig {
    /// The rule to report estimates with.
    pub rule: QuadratureRule,
    /// The `minWidth` stopping threshold.
    pub min_width: f64,
    /// Safety factor on the difference-based error estimate.
    pub safety: f64,
    /// Work units charged per integrand evaluation (models an expensive
    /// `f`; §4.3 notes the approximation "can be expensive if f itself is
    /// expensive").
    pub work_per_eval: Work,
    /// Maximum ladder level (level `k` costs `2^k` evaluations to reach
    /// from `k−1`).
    pub max_level: u32,
}

impl Default for QuadratureVaoConfig {
    fn default() -> Self {
        Self {
            rule: QuadratureRule::Trapezoid,
            min_width: 1e-9,
            safety: 3.0,
            work_per_eval: 1,
            max_level: 40,
        }
    }
}

/// A refinable integral estimate implementing [`ResultObject`].
pub struct QuadratureResultObject<F: Fn(f64) -> f64> {
    ladder: TrapezoidLadder<F>,
    config: QuadratureVaoConfig,
    prev_estimate: f64,
    /// Trapezoid estimate two levels back, once available — the Simpson
    /// error model differences successive *Simpson* values, which needs
    /// three trapezoid levels.
    prev_prev_estimate: Option<f64>,
    bounds: Bounds,
    cumulative: Work,
    capped: bool,
}

impl<F: Fn(f64) -> f64> QuadratureResultObject<F> {
    /// Creates the object. Construction runs levels 0 and 1 of the ladder
    /// (three integrand evaluations) — the minimum needed for a
    /// difference-based error estimate — charging the work to `meter`.
    pub fn new(f: F, a: f64, b: f64, config: QuadratureVaoConfig, meter: &mut WorkMeter) -> Self {
        assert!(
            config.min_width > 0.0 && config.min_width.is_finite(),
            "min_width must be positive"
        );
        let mut ladder = TrapezoidLadder::new(f, a, b);
        let t0 = ladder.estimate();
        let t1 = ladder.advance();
        meter.charge_exec(3 * config.work_per_eval);
        meter.charge_store_state(1);
        let bounds = Self::bounds_for(&config, None, t0, t1);
        Self {
            ladder,
            config,
            prev_estimate: t0,
            prev_prev_estimate: None,
            bounds,
            cumulative: 3 * config.work_per_eval,
            capped: false,
        }
    }

    /// Point estimate under the configured rule.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        match self.config.rule {
            QuadratureRule::Trapezoid => self.ladder.estimate(),
            QuadratureRule::Simpson => (4.0 * self.ladder.estimate() - self.prev_estimate) / 3.0,
        }
    }

    /// Current ladder level.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.ladder.level()
    }

    /// Whether the level cap stopped refinement.
    #[must_use]
    pub fn capped(&self) -> bool {
        self.capped
    }

    fn bounds_for(
        config: &QuadratureVaoConfig,
        t_prev_prev: Option<f64>,
        t_prev: f64,
        t_cur: f64,
    ) -> Bounds {
        let diff = t_cur - t_prev;
        match config.rule {
            QuadratureRule::Trapezoid => {
                // E(t_cur) ≈ diff/3 with the sign telling which side the
                // truth lies on; widen symmetrically by the safety factor.
                let e = config.safety * diff.abs() / 3.0;
                Bounds::new(t_cur - e, t_cur + e)
            }
            QuadratureRule::Simpson => {
                let s_cur = (4.0 * t_cur - t_prev) / 3.0;
                // With three trapezoid levels, difference the successive
                // Simpson values: E(S_cur) ≈ |S_cur − S_prev|/15 (its
                // error is O(h⁴), a 16x shrink per level). Before that,
                // fall back to the conservative trapezoid-pair estimate.
                let e = match t_prev_prev {
                    Some(t_pp) => {
                        let s_prev = (4.0 * t_prev - t_pp) / 3.0;
                        config.safety * (s_cur - s_prev).abs() / 15.0
                    }
                    None => config.safety * diff.abs() / 12.0,
                };
                Bounds::new(s_cur - e, s_cur + e)
            }
        }
    }

    fn error_shrink_factor(&self) -> f64 {
        match self.config.rule {
            QuadratureRule::Trapezoid => 0.25,
            QuadratureRule::Simpson => 1.0 / 16.0,
        }
    }
}

impl<F: Fn(f64) -> f64> ResultObject for QuadratureResultObject<F> {
    fn bounds(&self) -> Bounds {
        self.bounds
    }

    fn min_width(&self) -> f64 {
        self.config.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        if self.ladder.level() >= self.config.max_level {
            self.capped = true;
            return self.bounds;
        }
        let new_evals = self.ladder.next_evaluations();
        let t_prev = self.ladder.estimate();
        let t_cur = self.ladder.advance();
        let work = new_evals * self.config.work_per_eval;
        meter.charge_get_state(1);
        meter.charge_exec(work);
        meter.charge_store_state(1);
        meter.count_iteration();
        self.cumulative += work;
        self.prev_prev_estimate = Some(self.prev_estimate);
        self.prev_estimate = t_prev;

        let fresh = Self::bounds_for(&self.config, self.prev_prev_estimate, t_prev, t_cur);
        self.bounds = self.bounds.intersect(&fresh).unwrap_or(fresh);
        self.bounds
    }

    fn est_cpu(&self) -> Work {
        if self.converged() || self.capped {
            0
        } else {
            self.ladder.next_evaluations() * self.config.work_per_eval
        }
    }

    fn est_bounds(&self) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        // Next-level error ≈ current error × shrink; center on the
        // Richardson-extrapolated prediction of the next estimate.
        let t_prev = self.prev_estimate;
        let t_cur = self.ladder.estimate();
        let predicted_center = match self.config.rule {
            QuadratureRule::Trapezoid => t_cur + (t_cur - t_prev) / 3.0,
            QuadratureRule::Simpson => self.estimate(),
        };
        let half_width = 0.5 * self.bounds.width() * self.error_shrink_factor();
        let predicted = Bounds::new(predicted_center - half_width, predicted_center + half_width);
        predicted.intersect(&self.bounds).unwrap_or(predicted)
    }

    fn standalone_cost(&self) -> Work {
        // §4.3: a traditional integrator at the same accuracy computes the
        // same points, so the standalone cost equals the cumulative cost.
        self.cumulative
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)] // test helper returning a concrete fn-pointer object
    fn sin_object(
        rule: QuadratureRule,
        min_width: f64,
    ) -> (QuadratureResultObject<fn(f64) -> f64>, WorkMeter) {
        let mut meter = WorkMeter::new();
        let obj = QuadratureResultObject::new(
            (|x: f64| x.sin()) as fn(f64) -> f64,
            0.0,
            std::f64::consts::PI,
            QuadratureVaoConfig {
                rule,
                min_width,
                ..QuadratureVaoConfig::default()
            },
            &mut meter,
        );
        (obj, meter)
    }

    #[test]
    fn initial_bounds_contain_exact_integral() {
        let (obj, meter) = sin_object(QuadratureRule::Trapezoid, 1e-9);
        assert!(obj.bounds().contains(2.0), "{}", obj.bounds());
        assert_eq!(meter.breakdown().exec_iter, 3);
    }

    #[test]
    fn trapezoid_converges_soundly() {
        let (mut obj, mut meter) = sin_object(QuadratureRule::Trapezoid, 1e-9);
        let mut guard = 0;
        while !obj.converged() {
            let b = obj.iterate(&mut meter);
            assert!(b.contains(2.0), "iteration {guard}: {b}");
            guard += 1;
            assert!(guard < 40);
        }
        assert!((obj.estimate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simpson_converges_much_faster() {
        let (mut t, mut mt) = sin_object(QuadratureRule::Trapezoid, 1e-9);
        let (mut s, mut ms) = sin_object(QuadratureRule::Simpson, 1e-9);
        while !t.converged() && !t.capped() {
            t.iterate(&mut mt);
        }
        while !s.converged() && !s.capped() {
            s.iterate(&mut ms);
        }
        assert!(t.converged() && s.converged());
        assert!(
            s.cumulative_cost() * 4 < t.cumulative_cost(),
            "simpson {} vs trapezoid {}",
            s.cumulative_cost(),
            t.cumulative_cost()
        );
        assert!((s.estimate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_iteration_work_doubles() {
        let (mut obj, _) = sin_object(QuadratureRule::Trapezoid, 1e-12);
        let mut prev = 0;
        for i in 0..6 {
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            let w = m.breakdown().exec_iter;
            if i > 0 {
                assert_eq!(w, prev * 2, "evaluations double per level");
            }
            prev = w;
        }
    }

    #[test]
    fn est_cpu_is_exact_for_quadrature() {
        let (mut obj, _) = sin_object(QuadratureRule::Trapezoid, 1e-12);
        for _ in 0..5 {
            let est = obj.est_cpu();
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            assert_eq!(est, m.breakdown().exec_iter);
        }
    }

    #[test]
    fn est_bounds_shrink_by_about_a_quarter() {
        let (mut obj, mut meter) = sin_object(QuadratureRule::Trapezoid, 1e-12);
        obj.iterate(&mut meter);
        obj.iterate(&mut meter);
        let est = obj.est_bounds();
        let cur_w = obj.bounds().width();
        assert!(est.width() < cur_w);
        let actual = obj.iterate(&mut meter);
        let ratio = est.width() / actual.width().max(1e-300);
        assert!(
            (0.1..=10.0).contains(&ratio),
            "est {est} vs actual {actual}"
        );
    }

    #[test]
    fn work_per_eval_scales_costs() {
        let mut meter = WorkMeter::new();
        let mut obj = QuadratureResultObject::new(
            |x: f64| x * x,
            0.0,
            1.0,
            QuadratureVaoConfig {
                work_per_eval: 1000,
                min_width: 1e-6,
                ..QuadratureVaoConfig::default()
            },
            &mut meter,
        );
        assert_eq!(meter.breakdown().exec_iter, 3000);
        let before = meter.breakdown().exec_iter;
        obj.iterate(&mut meter);
        assert_eq!(meter.breakdown().exec_iter - before, 2000); // 2 midpoints
    }

    #[test]
    fn level_cap_stalls_gracefully() {
        let mut meter = WorkMeter::new();
        let mut obj = QuadratureResultObject::new(
            |x: f64| 1.0 / (1.0 + x * x),
            0.0,
            1.0,
            QuadratureVaoConfig {
                min_width: 1e-300,
                max_level: 5,
                ..QuadratureVaoConfig::default()
            },
            &mut meter,
        );
        for _ in 0..10 {
            obj.iterate(&mut meter);
        }
        assert!(obj.capped());
        assert_eq!(obj.level(), 5);
        let before = meter.total();
        obj.iterate(&mut meter);
        assert_eq!(meter.total(), before);
    }

    #[test]
    fn standalone_equals_cumulative_for_quadrature() {
        let (mut obj, mut meter) = sin_object(QuadratureRule::Trapezoid, 1e-6);
        while !obj.converged() && !obj.capped() {
            obj.iterate(&mut meter);
        }
        assert!(obj.converged());
        assert_eq!(obj.standalone_cost(), obj.cumulative_cost());
    }

    #[test]
    fn handles_integrand_with_interior_structure() {
        // ∫₀¹ 1/(1+25x²) dx = atan(5)/5 — the Runge function.
        let exact = (5.0f64).atan() / 5.0;
        let mut meter = WorkMeter::new();
        let mut obj = QuadratureResultObject::new(
            |x: f64| 1.0 / (1.0 + 25.0 * x * x),
            0.0,
            1.0,
            QuadratureVaoConfig {
                min_width: 1e-8,
                ..QuadratureVaoConfig::default()
            },
            &mut meter,
        );
        while !obj.converged() && !obj.capped() {
            obj.iterate(&mut meter);
        }
        assert!(obj.converged());
        assert!((obj.estimate() - exact).abs() < 1e-8);
        assert!(obj.bounds().contains(exact));
    }
}
