//! Composite quadrature rules and the interval-halving ladder.

/// Composite trapezoid rule with `n ≥ 1` equal intervals.
///
/// Error is `O(h²)` overall (`O(h³)` per interval, as §4.3 notes).
pub fn composite_trapezoid(f: &dyn Fn(f64) -> f64, a: f64, b: f64, n: u32) -> f64 {
    assert!(n >= 1, "need at least one interval");
    let h = (b - a) / f64::from(n);
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + h * f64::from(i));
    }
    sum * h
}

/// Composite Simpson rule with an even `n ≥ 2` intervals. Error `O(h⁴)`.
pub fn composite_simpson(f: &dyn Fn(f64) -> f64, a: f64, b: f64, n: u32) -> f64 {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "Simpson needs an even interval count"
    );
    let h = (b - a) / f64::from(n);
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(a + h * f64::from(i));
    }
    sum * h / 3.0
}

/// The interval-halving trapezoid ladder: level `k` holds the composite
/// trapezoid estimate with `2^k` intervals, and advancing a level evaluates
/// only the `2^k` *new* midpoints — every previous evaluation is reused.
///
/// This is the refinement scheme of §4.3 ("subsequent iterations halve the
/// existing intervals"), and both the trapezoid- and Simpson-based result
/// objects are built on it (Simpson at level `k` is the Richardson
/// combination `(4·Tₖ − Tₖ₋₁)/3`).
pub struct TrapezoidLadder<F> {
    f: F,
    a: f64,
    b: f64,
    level: u32,
    current: f64,
    evals: u64,
}

impl<F: Fn(f64) -> f64> TrapezoidLadder<F> {
    /// Starts the ladder at level 0 (a single interval, 2 evaluations).
    pub fn new(f: F, a: f64, b: f64) -> Self {
        assert!(a.is_finite() && b.is_finite() && a < b, "bad interval");
        let current = 0.5 * (b - a) * (f(a) + f(b));
        Self {
            f,
            a,
            b,
            level: 0,
            current,
            evals: 2,
        }
    }

    /// Current level `k` (the estimate uses `2^k` intervals).
    #[must_use]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Current trapezoid estimate `Tₖ`.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.current
    }

    /// Total function evaluations so far (`2^k + 1`).
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evals
    }

    /// Function evaluations the next [`TrapezoidLadder::advance`] will make.
    #[must_use]
    pub fn next_evaluations(&self) -> u64 {
        1u64 << self.level
    }

    /// Advances to level `k+1`, evaluating the new midpoints, and returns
    /// the new estimate.
    pub fn advance(&mut self) -> f64 {
        let n_new = 1u64 << self.level; // midpoints to add
        let h_new = (self.b - self.a) / (2.0 * n_new as f64);
        let mut mid_sum = 0.0;
        for i in 0..n_new {
            let x = self.a + h_new * (2.0 * i as f64 + 1.0);
            mid_sum += (self.f)(x);
        }
        self.current = 0.5 * self.current + h_new * mid_sum;
        self.level += 1;
        self.evals += n_new;
        self.current
    }
}

/// A Romberg tableau built on the trapezoid ladder: column `m` of row `k`
/// removes the `O(h^{2m})` error term by Richardson extrapolation, giving
/// spectral-like convergence for smooth integrands. Column 0 is the plain
/// trapezoid value, column 1 is Simpson, column 2 is Boole, and so on —
/// §4.3's "the techniques discussed here apply to other rules as well",
/// taken to its limit.
pub struct RombergTable<F> {
    ladder: TrapezoidLadder<F>,
    /// The most recent tableau row `R[k][0..=k]`.
    row: Vec<f64>,
}

impl<F: Fn(f64) -> f64> RombergTable<F> {
    /// Starts the tableau at row 0 (a single trapezoid).
    pub fn new(f: F, a: f64, b: f64) -> Self {
        let ladder = TrapezoidLadder::new(f, a, b);
        let row = vec![ladder.estimate()];
        Self { ladder, row }
    }

    /// Current best estimate (the last entry of the deepest row).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        *self.row.last().expect("row is never empty")
    }

    /// Number of completed rows minus one (equals the ladder level).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.ladder.level()
    }

    /// Total integrand evaluations.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.ladder.evaluations()
    }

    /// Adds one row: halves the trapezoid intervals and extrapolates
    /// across all columns. Returns the new best estimate.
    pub fn advance(&mut self) -> f64 {
        let t = self.ladder.advance();
        let mut new_row = Vec::with_capacity(self.row.len() + 1);
        new_row.push(t);
        let mut factor = 1.0;
        for m in 0..self.row.len() {
            factor *= 4.0;
            let higher = new_row[m] + (new_row[m] - self.row[m]) / (factor - 1.0);
            new_row.push(higher);
        }
        self.row = new_row;
        self.estimate()
    }

    /// Difference between the two most accurate entries of the current
    /// row — the standard Romberg error proxy.
    #[must_use]
    pub fn error_estimate(&self) -> f64 {
        match self.row.len() {
            0 | 1 => f64::INFINITY,
            n => (self.row[n - 1] - self.row[n - 2]).abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_exact_for_linear() {
        let f = |x: f64| 3.0 * x + 1.0;
        let v = composite_trapezoid(&f, 0.0, 2.0, 1);
        assert!((v - 8.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_converges_quadratically() {
        let f = |x: f64| x.sin();
        let exact = 1.0 - (1.0f64).cos();
        let e1 = (composite_trapezoid(&f, 0.0, 1.0, 8) - exact).abs();
        let e2 = (composite_trapezoid(&f, 0.0, 1.0, 16) - exact).abs();
        let ratio = e1 / e2;
        assert!((3.5..4.5).contains(&ratio), "expected ~4, got {ratio}");
    }

    #[test]
    fn simpson_exact_for_cubics() {
        let f = |x: f64| x * x * x - 2.0 * x * x + 5.0;
        // ∫₀² = 4 - 16/3 + 10 = 8.666...
        let exact = 4.0 - 16.0 / 3.0 + 10.0;
        let v = composite_simpson(&f, 0.0, 2.0, 2);
        assert!((v - exact).abs() < 1e-12);
    }

    #[test]
    fn simpson_converges_quartically() {
        let f = |x: f64| (2.0 * x).exp();
        let exact = ((2.0f64).exp() * (2.0f64).exp() - 1.0) / 2.0; // ∫₀² e^{2x}
        let e1 = (composite_simpson(&f, 0.0, 2.0, 8) - exact).abs();
        let e2 = (composite_simpson(&f, 0.0, 2.0, 16) - exact).abs();
        let ratio = e1 / e2;
        assert!((12.0..20.0).contains(&ratio), "expected ~16, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn simpson_rejects_odd_n() {
        let _ = composite_simpson(&|x| x, 0.0, 1.0, 3);
    }

    #[test]
    fn ladder_matches_direct_composites() {
        let f = |x: f64| x.exp() * x.cos();
        let mut ladder = TrapezoidLadder::new(&f, 0.0, 2.0);
        for k in 1..=8 {
            let v = ladder.advance();
            let direct = composite_trapezoid(&f, 0.0, 2.0, 1 << k);
            assert!((v - direct).abs() < 1e-12, "level {k}: {v} vs {direct}");
        }
        assert_eq!(ladder.level(), 8);
        assert_eq!(ladder.evaluations(), (1 << 8) + 1);
    }

    #[test]
    fn romberg_converges_dramatically_faster_than_trapezoid() {
        // ∫₀¹ e^x dx = e − 1.
        let exact = std::f64::consts::E - 1.0;
        let mut romberg = RombergTable::new(|x: f64| x.exp(), 0.0, 1.0);
        for _ in 0..5 {
            romberg.advance();
        }
        // 33 evaluations get ~1e-12; plain trapezoid at 32 intervals is
        // ~1e-4.
        assert!(
            (romberg.estimate() - exact).abs() < 1e-11,
            "{}",
            romberg.estimate()
        );
        assert_eq!(romberg.evaluations(), 33);
        let trap = composite_trapezoid(&|x: f64| x.exp(), 0.0, 1.0, 32);
        assert!((trap - exact).abs() > 1e-5);
    }

    #[test]
    fn romberg_column_one_is_simpson() {
        let f = |x: f64| x.sin() + x * x;
        let mut romberg = RombergTable::new(f, 0.0, 2.0);
        romberg.advance(); // row 1: [T1, S1]
        let simpson = composite_simpson(&f, 0.0, 2.0, 2);
        assert!((romberg.estimate() - simpson).abs() < 1e-12);
    }

    #[test]
    fn romberg_error_estimate_tracks_true_error() {
        let exact = 2.0; // ∫₀^π sin
        let mut romberg = RombergTable::new(|x: f64| x.sin(), 0.0, std::f64::consts::PI);
        romberg.advance();
        for _ in 0..4 {
            romberg.advance();
            let err = (romberg.estimate() - exact).abs();
            assert!(
                err <= romberg.error_estimate() + 1e-15,
                "true err {err} vs estimate {}",
                romberg.error_estimate()
            );
        }
    }

    #[test]
    fn romberg_initial_error_estimate_is_infinite() {
        let romberg = RombergTable::new(|x: f64| x, 0.0, 1.0);
        assert!(romberg.error_estimate().is_infinite());
        assert_eq!(romberg.depth(), 0);
    }

    #[test]
    fn ladder_eval_accounting() {
        let f = |x: f64| x;
        let mut ladder = TrapezoidLadder::new(&f, 0.0, 1.0);
        assert_eq!(ladder.evaluations(), 2);
        assert_eq!(ladder.next_evaluations(), 1);
        ladder.advance();
        assert_eq!(ladder.evaluations(), 3);
        assert_eq!(ladder.next_evaluations(), 2);
        ladder.advance();
        assert_eq!(ladder.evaluations(), 5);
    }
}
