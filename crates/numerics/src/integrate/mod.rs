//! Numerical integration with variable accuracy (§4.3).
//!
//! Integrals `∫ₐᵇ f(x)dx` estimated by composite quadrature. [`rules`]
//! implements the composite trapezoid and Simpson rules plus the
//! interval-halving *ladder* that reuses every previous function
//! evaluation; [`adaptive`] is a classic run-to-tolerance integrator (the
//! "traditional solver" §4.3 compares against); [`vao`] exposes the ladder
//! through the [`::vao::ResultObject`] interface, where each `iterate()`
//! halves all intervals — doubling the evaluation count — and tightens the
//! `|Tₖ − Tₖ₊₁|`-based error bound by roughly 4× (trapezoid) or 16×
//! (Simpson).

pub mod adaptive;
pub mod rules;
pub mod vao;

pub use adaptive::adaptive_trapezoid;
pub use rules::{composite_simpson, composite_trapezoid, RombergTable, TrapezoidLadder};
pub use vao::{QuadratureResultObject, QuadratureRule, QuadratureVaoConfig};
