//! A classic run-to-tolerance adaptive integrator — the "traditional
//! solver" of §4.3, which performs the same point evaluations as the VAO
//! ladder at a given accuracy but offers no intermediate bounds.

/// Result of an adaptive integration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveResult {
    /// The integral estimate.
    pub value: f64,
    /// Estimated absolute error of the estimate.
    pub error_estimate: f64,
    /// Total function evaluations performed.
    pub evaluations: u64,
}

/// Integrates `f` over `[a, b]` by recursive trapezoid halving until the
/// §4.3 error estimate `|S(a,b) − (S(a,m) + S(m,b))|` falls below `tol` on
/// every subinterval (distributed proportionally to width).
///
/// `max_depth` bounds the recursion (each level doubles the evaluations).
pub fn adaptive_trapezoid(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: u32,
) -> AdaptiveResult {
    assert!(a < b && tol > 0.0, "bad interval or tolerance");
    let fa = f(a);
    let fb = f(b);
    let mut evals = 2u64;
    let (value, error_estimate) = refine(f, a, b, fa, fb, tol, max_depth, &mut evals);
    AdaptiveResult {
        value,
        error_estimate,
        evaluations: evals,
    }
}

#[allow(clippy::too_many_arguments)]
fn refine(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    tol: f64,
    depth: u32,
    evals: &mut u64,
) -> (f64, f64) {
    let m = a + 0.5 * (b - a);
    let fm = f(m);
    *evals += 1;
    let whole = 0.5 * (b - a) * (fa + fb);
    let left = 0.25 * (b - a) * (fa + fm);
    let right = 0.25 * (b - a) * (fm + fb);
    let split = left + right;
    // Trapezoid halving: E_whole = (4/3)|whole - split| (§4.3's bound with
    // the rule-specific constant), and the halves carry 1/3 of the
    // difference.
    let err = (whole - split).abs() / 3.0;
    if err <= tol || depth == 0 {
        return (split, err);
    }
    let (lv, le) = refine(f, a, m, fa, fm, tol / 2.0, depth - 1, evals);
    let (rv, re) = refine(f, m, b, fm, fb, tol / 2.0, depth - 1, evals);
    (lv + rv, le + re)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_smooth_function_to_tolerance() {
        let f = |x: f64| x.sin();
        let exact = 2.0; // ∫₀^π sin = 2
        let r = adaptive_trapezoid(&f, 0.0, std::f64::consts::PI, 1e-8, 30);
        assert!((r.value - exact).abs() < 1e-7, "{}", r.value);
        assert!(r.error_estimate < 1e-6);
    }

    #[test]
    fn spends_more_evaluations_for_tighter_tolerance() {
        let f = |x: f64| (x * x).exp();
        let loose = adaptive_trapezoid(&f, 0.0, 1.0, 1e-3, 30);
        let tight = adaptive_trapezoid(&f, 0.0, 1.0, 1e-9, 30);
        assert!(tight.evaluations > 4 * loose.evaluations);
        assert!((loose.value - tight.value).abs() < 1e-2);
    }

    #[test]
    fn concentrates_work_where_function_is_rough() {
        // 1/sqrt(x+eps) is steep near 0: adaptive should beat a uniform
        // grid with the same budget. We just sanity-check correctness here.
        let f = |x: f64| 1.0 / (x + 0.01).sqrt();
        let exact = 2.0 * ((1.01f64).sqrt() - (0.01f64).sqrt());
        let r = adaptive_trapezoid(&f, 0.0, 1.0, 1e-7, 40);
        assert!((r.value - exact).abs() < 1e-5, "{} vs {exact}", r.value);
    }

    #[test]
    fn max_depth_caps_work() {
        let f = |x: f64| (50.0 * x).sin().abs();
        let shallow = adaptive_trapezoid(&f, 0.0, 1.0, 1e-12, 4);
        // 2 initial + at most 2^5 - 1 midpoints.
        assert!(shallow.evaluations <= 2 + 31);
    }

    #[test]
    #[should_panic(expected = "bad interval")]
    fn rejects_inverted_interval() {
        let _ = adaptive_trapezoid(&|x| x, 1.0, 0.0, 1e-6, 10);
    }
}
