//! Root finding with variable accuracy (§4.4).
//!
//! Root solvers find `x` with `f(x) = 0`. The bisection method maintains a
//! bracket `[a, b]` with `f(a)·f(b) < 0`; the bracket *is* a guaranteed
//! error bound on the root, so it "fits nicely into our VAO interface"
//! (§4.4): `L` and `H` are the current bracket, `iterate()` evaluates the
//! midpoint, and `estCPU` is one function evaluation.

pub mod bisection;
pub mod vao;

pub use bisection::{bisect, false_position, BracketError};
pub use vao::{RootResultObject, RootVaoConfig};
