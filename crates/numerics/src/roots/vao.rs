//! Bisection as a variable-accuracy result object (§4.4).
//!
//! The bracket `[a, b]` is a *guaranteed* bound on the root (given a
//! continuous function and a sign change), so unlike the extrapolation-
//! based objects these bounds are sound by construction. `iterate()` runs
//! one midpoint evaluation; `estCPU` is the cost of one evaluation; and
//! `[estL, estH]` is a secant-informed guess at which half survives — §4.4
//! notes that even a random guess is wrong only half the time and never off
//! by more than a factor of 2.

use vao::cost::{Work, WorkMeter};
use vao::interface::ResultObject;
use vao::Bounds;

use crate::roots::bisection::BracketError;

/// Construction parameters for [`RootResultObject`].
#[derive(Clone, Copy, Debug)]
pub struct RootVaoConfig {
    /// The `minWidth` stopping threshold on the bracket.
    pub min_width: f64,
    /// Work units charged per function evaluation.
    pub work_per_eval: Work,
}

impl Default for RootVaoConfig {
    fn default() -> Self {
        Self {
            min_width: 1e-9,
            work_per_eval: 1,
        }
    }
}

/// A refinable root bracket implementing [`ResultObject`].
pub struct RootResultObject<F: Fn(f64) -> f64> {
    f: F,
    config: RootVaoConfig,
    lo: f64,
    hi: f64,
    f_lo: f64,
    f_hi: f64,
    cumulative: Work,
    /// Set when an exact zero was hit (bracket collapsed to a point).
    exact: bool,
}

impl<F: Fn(f64) -> f64> RootResultObject<F> {
    /// Creates the object, evaluating the two endpoints (charged to
    /// `meter`) and validating the sign change.
    pub fn new(
        f: F,
        a: f64,
        b: f64,
        config: RootVaoConfig,
        meter: &mut WorkMeter,
    ) -> Result<Self, BracketError> {
        assert!(
            config.min_width > 0.0 && config.min_width.is_finite(),
            "min_width must be positive"
        );
        if !(a.is_finite() && b.is_finite() && a < b) {
            return Err(BracketError::BadInterval { a, b });
        }
        let f_lo = f(a);
        let f_hi = f(b);
        meter.charge_exec(2 * config.work_per_eval);
        meter.charge_store_state(1);
        let mut obj = Self {
            f,
            config,
            lo: a,
            hi: b,
            f_lo,
            f_hi,
            cumulative: 2 * config.work_per_eval,
            exact: false,
        };
        if f_lo == 0.0 {
            obj.hi = a;
            obj.exact = true;
            return Ok(obj);
        }
        if f_hi == 0.0 {
            obj.lo = b;
            obj.exact = true;
            return Ok(obj);
        }
        if f_lo.signum() == f_hi.signum() {
            return Err(BracketError::NoSignChange { fa: f_lo, fb: f_hi });
        }
        Ok(obj)
    }

    /// Secant estimate of where the root lies inside the current bracket —
    /// the "some way of predicting" of §4.4.
    fn secant_guess(&self) -> f64 {
        if self.f_hi == self.f_lo {
            return self.lo + 0.5 * (self.hi - self.lo);
        }
        let g = self.lo - self.f_lo * (self.hi - self.lo) / (self.f_hi - self.f_lo);
        g.clamp(self.lo, self.hi)
    }
}

impl<F: Fn(f64) -> f64> ResultObject for RootResultObject<F> {
    fn bounds(&self) -> Bounds {
        Bounds::new(self.lo, self.hi)
    }

    fn min_width(&self) -> f64 {
        self.config.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.exact {
            return self.bounds();
        }
        let m = self.lo + 0.5 * (self.hi - self.lo);
        let fm = (self.f)(m);
        meter.charge_get_state(1);
        meter.charge_exec(self.config.work_per_eval);
        meter.charge_store_state(1);
        meter.count_iteration();
        self.cumulative += self.config.work_per_eval;

        if fm == 0.0 {
            self.lo = m;
            self.hi = m;
            self.exact = true;
        } else if fm.signum() == self.f_lo.signum() {
            self.lo = m;
            self.f_lo = fm;
        } else {
            self.hi = m;
            self.f_hi = fm;
        }
        self.bounds()
    }

    fn est_cpu(&self) -> Work {
        if self.converged() || self.exact {
            0
        } else {
            self.config.work_per_eval
        }
    }

    fn est_bounds(&self) -> Bounds {
        if self.converged() || self.exact {
            return self.bounds();
        }
        let m = self.lo + 0.5 * (self.hi - self.lo);
        if self.secant_guess() <= m {
            Bounds::new(self.lo, m)
        } else {
            Bounds::new(m, self.hi)
        }
    }

    fn standalone_cost(&self) -> Work {
        // §4.4: a traditional bisection at the same accuracy performs the
        // same evaluations — standalone equals cumulative.
        self.cumulative
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)] // test helper returning a concrete fn-pointer object
    fn sqrt2_object(min_width: f64) -> (RootResultObject<fn(f64) -> f64>, WorkMeter) {
        let mut meter = WorkMeter::new();
        let obj = RootResultObject::new(
            (|x: f64| x * x - 2.0) as fn(f64) -> f64,
            0.0,
            2.0,
            RootVaoConfig {
                min_width,
                ..RootVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        (obj, meter)
    }

    #[test]
    fn bracket_is_always_sound() {
        let (mut obj, mut meter) = sqrt2_object(1e-10);
        let root = std::f64::consts::SQRT_2;
        while !obj.converged() {
            let b = obj.iterate(&mut meter);
            assert!(b.contains(root), "{b}");
        }
        assert!(obj.bounds().width() < 1e-10);
    }

    #[test]
    fn each_iteration_halves_the_bracket() {
        let (mut obj, mut meter) = sqrt2_object(1e-6);
        let mut w = obj.bounds().width();
        for _ in 0..10 {
            let b = obj.iterate(&mut meter);
            assert!((b.width() - w / 2.0).abs() < 1e-12);
            w = b.width();
        }
    }

    #[test]
    fn costs_are_one_eval_per_iteration() {
        let (mut obj, _) = sqrt2_object(1e-6);
        assert_eq!(obj.est_cpu(), 1);
        let mut m = WorkMeter::new();
        obj.iterate(&mut m);
        assert_eq!(m.breakdown().exec_iter, 1);
        assert_eq!(obj.standalone_cost(), obj.cumulative_cost());
    }

    #[test]
    fn est_bounds_is_one_of_the_two_halves() {
        let (obj, _) = sqrt2_object(1e-6);
        let est = obj.est_bounds();
        let b = obj.bounds();
        let m = b.mid();
        let lower = Bounds::new(b.lo(), m);
        let upper = Bounds::new(m, b.hi());
        assert!(est == lower || est == upper);
        // sqrt(2) ≈ 1.414 lies in the upper half of [0,2]; the secant guess
        // for x²−2 on [0,2] is x=1, which is in the lower half — the guess
        // may be wrong, but it must still be a half-bracket.
    }

    #[test]
    fn exact_zero_collapses_bracket() {
        let mut meter = WorkMeter::new();
        let mut obj = RootResultObject::new(
            |x: f64| x - 1.0,
            0.0,
            2.0,
            RootVaoConfig::default(),
            &mut meter,
        )
        .unwrap();
        let b = obj.iterate(&mut meter); // midpoint is exactly the root
        assert_eq!((b.lo(), b.hi()), (1.0, 1.0));
        let before = meter.total();
        obj.iterate(&mut meter);
        assert_eq!(meter.total(), before);
    }

    #[test]
    fn endpoint_root_at_construction() {
        let mut meter = WorkMeter::new();
        let obj = RootResultObject::new(|x: f64| x, 0.0, 1.0, RootVaoConfig::default(), &mut meter)
            .unwrap();
        assert_eq!(obj.bounds().width(), 0.0);
        assert_eq!(obj.est_cpu(), 0);
    }

    #[test]
    fn rejects_invalid_brackets() {
        let mut meter = WorkMeter::new();
        assert!(matches!(
            RootResultObject::new(
                |x: f64| x * x + 1.0,
                0.0,
                1.0,
                RootVaoConfig::default(),
                &mut meter
            ),
            Err(BracketError::NoSignChange { .. })
        ));
        assert!(matches!(
            RootResultObject::new(|x: f64| x, 1.0, 0.0, RootVaoConfig::default(), &mut meter),
            Err(BracketError::BadInterval { .. })
        ));
    }

    #[test]
    fn works_inside_a_selection_vao() {
        // End-to-end: a selection predicate over a root-finder UDF decides
        // long before the bracket reaches minWidth.
        use vao::ops::selection::{select, CmpOp};
        let mut meter = WorkMeter::new();
        let mut obj = RootResultObject::new(
            |x: f64| x * x - 2.0,
            0.0,
            2.0,
            RootVaoConfig {
                min_width: 1e-12,
                work_per_eval: 1,
            },
            &mut meter,
        )
        .unwrap();
        let out = select(&mut obj, CmpOp::Gt, 1.0, &mut meter).unwrap();
        assert!(out.satisfied); // sqrt(2) > 1
        assert!(
            out.iterations <= 3,
            "needed only {} iterations",
            out.iterations
        );
        assert!(obj.bounds().width() > 1e-12, "far from full accuracy");
    }
}
