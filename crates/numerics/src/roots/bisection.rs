//! Plain bracketing root solvers: bisection and false position.

/// Error raised when a bracket is invalid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BracketError {
    /// `f(a)` and `f(b)` do not have opposite signs.
    NoSignChange {
        /// `f` at the left end.
        fa: f64,
        /// `f` at the right end.
        fb: f64,
    },
    /// The interval was empty or not finite.
    BadInterval {
        /// Left end.
        a: f64,
        /// Right end.
        b: f64,
    },
}

impl std::fmt::Display for BracketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BracketError::NoSignChange { fa, fb } => {
                write!(f, "f(a)={fa} and f(b)={fb} do not bracket a root")
            }
            BracketError::BadInterval { a, b } => write!(f, "bad bracket [{a}, {b}]"),
        }
    }
}

impl std::error::Error for BracketError {}

fn check_bracket(a: f64, b: f64, fa: f64, fb: f64) -> Result<(), BracketError> {
    if !(a.is_finite() && b.is_finite() && a < b) {
        return Err(BracketError::BadInterval { a, b });
    }
    if fa == 0.0 || fb == 0.0 {
        return Ok(()); // endpoint root: allowed
    }
    if fa.signum() == fb.signum() {
        return Err(BracketError::NoSignChange { fa, fb });
    }
    Ok(())
}

/// Bisection: halves the bracket until its width is at most `tol` (or an
/// exact zero is hit). Returns the final bracket and the number of `f`
/// evaluations.
pub fn bisect(
    f: &dyn Fn(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: u32,
) -> Result<((f64, f64), u64), BracketError> {
    let mut fa = f(a);
    let fb = f(b);
    let mut evals = 2u64;
    check_bracket(a, b, fa, fb)?;
    if fa == 0.0 {
        return Ok(((a, a), evals));
    }
    if fb == 0.0 {
        return Ok(((b, b), evals));
    }
    for _ in 0..max_iter {
        if b - a <= tol {
            break;
        }
        let m = a + 0.5 * (b - a);
        let fm = f(m);
        evals += 1;
        if fm == 0.0 {
            return Ok(((m, m), evals));
        }
        if fa.signum() == fm.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Ok(((a, b), evals))
}

/// False position (regula falsi): like bisection, but splits the bracket at
/// the secant intersection. Faster on smooth functions, though the bracket
/// width may converge one-sidedly — the returned bracket is still a sound
/// bound. Returns the final bracket and the evaluation count.
pub fn false_position(
    f: &dyn Fn(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: u32,
) -> Result<((f64, f64), u64), BracketError> {
    let mut fa = f(a);
    let mut fb = f(b);
    let mut evals = 2u64;
    check_bracket(a, b, fa, fb)?;
    if fa == 0.0 {
        return Ok(((a, a), evals));
    }
    if fb == 0.0 {
        return Ok(((b, b), evals));
    }
    for _ in 0..max_iter {
        if b - a <= tol {
            break;
        }
        let m = a - fa * (b - a) / (fb - fa);
        // Guard against the split point collapsing onto an endpoint.
        let m = m.clamp(a + 1e-3 * (b - a), b - 1e-3 * (b - a));
        let fm = f(m);
        evals += 1;
        if fm == 0.0 {
            return Ok(((m, m), evals));
        }
        if fa.signum() == fm.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
            fb = fm;
        }
    }
    Ok(((a, b), evals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let f = |x: f64| x * x - 2.0;
        let ((a, b), evals) = bisect(&f, 0.0, 2.0, 1e-10, 100).unwrap();
        let root = std::f64::consts::SQRT_2;
        assert!(a <= root && root <= b);
        assert!(b - a <= 1e-10);
        // 2 endpoint evals + ~34 halvings of a width-2 bracket.
        assert!((30..=40).contains(&(evals as i64)));
    }

    #[test]
    fn bisect_halves_bracket_each_iteration() {
        let f = |x: f64| x - 0.3;
        let ((a, b), _) = bisect(&f, 0.0, 1.0, 0.25, 100).unwrap();
        assert!(b - a <= 0.25);
        assert!(a <= 0.3 && 0.3 <= b);
    }

    #[test]
    fn bisect_detects_exact_zero() {
        let f = |x: f64| x - 0.5;
        let ((a, b), _) = bisect(&f, 0.0, 1.0, 1e-15, 100).unwrap();
        assert_eq!(a, 0.5);
        assert_eq!(b, 0.5);
    }

    #[test]
    fn bisect_rejects_non_bracketing_interval() {
        let f = |x: f64| x * x + 1.0;
        assert!(matches!(
            bisect(&f, 0.0, 1.0, 1e-6, 100),
            Err(BracketError::NoSignChange { .. })
        ));
        assert!(matches!(
            bisect(&f, 1.0, 0.0, 1e-6, 100),
            Err(BracketError::BadInterval { .. })
        ));
    }

    #[test]
    fn bisect_respects_max_iter() {
        let f = |x: f64| x - std::f64::consts::FRAC_1_PI;
        let ((a, b), evals) = bisect(&f, 0.0, 1.0, 1e-300, 5).unwrap();
        assert_eq!(evals, 7); // 2 endpoints + 5 midpoints
        assert!(b - a > 0.0);
        assert!((b - a - 1.0 / 32.0).abs() < 1e-15);
    }

    #[test]
    fn false_position_converges_faster_on_smooth_function() {
        let f = |x: f64| x.exp() - 2.0;
        let root = (2.0f64).ln();
        let ((a1, b1), e1) = false_position(&f, 0.0, 1.0, 1e-9, 200).unwrap();
        let ((a2, b2), e2) = bisect(&f, 0.0, 1.0, 1e-9, 200).unwrap();
        assert!(a1 <= root && root <= b1);
        assert!(a2 <= root && root <= b2);
        assert!(e1 <= e2, "false position {e1} evals vs bisection {e2}");
    }

    #[test]
    fn endpoint_roots_short_circuit() {
        let f = |x: f64| x;
        let ((a, b), _) = bisect(&f, 0.0, 1.0, 1e-9, 100).unwrap();
        assert_eq!((a, b), (0.0, 0.0));
    }
}
