//! Tridiagonal linear systems via the Thomas algorithm.
//!
//! Each implicit time step of the finite-difference PDE solver, and the
//! whole of the ODE boundary-value solver, reduce to a system
//! `sub[i]·x[i-1] + diag[i]·x[i] + sup[i]·x[i+1] = rhs[i]`. The Thomas
//! algorithm solves it in `O(n)` — which is what makes one PDE "cell
//! update" an `O(1)` unit of work.

/// Error from the tridiagonal solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TridiagError {
    /// Input slices had inconsistent or zero lengths.
    BadShape,
    /// Forward elimination hit a (numerically) zero pivot; the system is
    /// singular or severely ill-conditioned.
    ZeroPivot {
        /// Row at which elimination failed.
        row: usize,
    },
}

impl std::fmt::Display for TridiagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TridiagError::BadShape => {
                write!(f, "tridiagonal system slices have inconsistent lengths")
            }
            TridiagError::ZeroPivot { row } => write!(f, "zero pivot at row {row}"),
        }
    }
}

impl std::error::Error for TridiagError {}

/// A reusable tridiagonal solver holding its scratch buffers, so repeated
/// time steps allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct ThomasSolver {
    c_prime: Vec<f64>,
    d_prime: Vec<f64>,
}

impl ThomasSolver {
    /// Creates a solver; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the system in place: on success `x` holds the solution.
    ///
    /// Conventions: `sub[0]` and `sup[n-1]` are ignored (there is no
    /// element left of row 0 or right of row n-1).
    pub fn solve(
        &mut self,
        sub: &[f64],
        diag: &[f64],
        sup: &[f64],
        rhs: &[f64],
        x: &mut [f64],
    ) -> Result<(), TridiagError> {
        let n = diag.len();
        if n == 0 || sub.len() != n || sup.len() != n || rhs.len() != n || x.len() != n {
            return Err(TridiagError::BadShape);
        }
        self.c_prime.resize(n, 0.0);
        self.d_prime.resize(n, 0.0);

        let pivot_eps = 1e-300;
        if diag[0].abs() < pivot_eps {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        self.c_prime[0] = sup[0] / diag[0];
        self.d_prime[0] = rhs[0] / diag[0];
        for i in 1..n {
            let denom = diag[i] - sub[i] * self.c_prime[i - 1];
            if denom.abs() < pivot_eps {
                return Err(TridiagError::ZeroPivot { row: i });
            }
            self.c_prime[i] = sup[i] / denom;
            self.d_prime[i] = (rhs[i] - sub[i] * self.d_prime[i - 1]) / denom;
        }
        x[n - 1] = self.d_prime[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = self.d_prime[i] - self.c_prime[i] * x[i + 1];
        }
        Ok(())
    }
}

/// Struct-of-arrays coefficient planes for `lanes` independent tridiagonal
/// systems of the same row count.
///
/// Layout: the entry for row `i` of lane `l` lives at `i * lanes + l`, so
/// the per-row inner loop over lanes walks contiguous, cache-line-friendly
/// memory that auto-vectorizes. More importantly, the Thomas recurrence is
/// serial in `i` but *independent across lanes*: interleaving K lanes lets
/// the per-row divisions — the latency chain that dominates the scalar
/// solver — pipeline across lanes instead of stalling back-to-back.
#[derive(Clone, Debug)]
pub struct TridiagBatch {
    rows: usize,
    lanes: usize,
    sub: Vec<f64>,
    diag: Vec<f64>,
    sup: Vec<f64>,
    rhs: Vec<f64>,
}

impl TridiagBatch {
    /// Allocates zeroed planes for `lanes` systems of `rows` rows each.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `lanes` is zero.
    #[must_use]
    pub fn new(rows: usize, lanes: usize) -> Self {
        assert!(rows > 0 && lanes > 0, "batch must have rows and lanes");
        Self {
            rows,
            lanes,
            sub: vec![0.0; rows * lanes],
            diag: vec![0.0; rows * lanes],
            sup: vec![0.0; rows * lanes],
            rhs: vec![0.0; rows * lanes],
        }
    }

    /// Rows per lane system.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mutable views of all four planes (`sub`, `diag`, `sup`, `rhs`) for
    /// strided per-lane filling.
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        (&mut self.sub, &mut self.diag, &mut self.sup, &mut self.rhs)
    }

    /// Mutable view of the right-hand-side plane alone (refilled every
    /// time step while the bands stay fixed).
    pub fn rhs_mut(&mut self) -> &mut [f64] {
        &mut self.rhs
    }

    /// Copies one lane's scalar system into the planes (tests and one-off
    /// callers; hot paths fill the planes strided in place).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or any slice length differs from
    /// [`TridiagBatch::rows`].
    pub fn set_lane(&mut self, lane: usize, sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let n = self.rows;
        assert!(
            sub.len() == n && diag.len() == n && sup.len() == n && rhs.len() == n,
            "lane slices must have {n} rows"
        );
        for i in 0..n {
            let at = i * self.lanes + lane;
            self.sub[at] = sub[i];
            self.diag[at] = diag[i];
            self.sup[at] = sup[i];
            self.rhs[at] = rhs[i];
        }
    }
}

/// A reusable lane-parallel Thomas solver over [`TridiagBatch`] planes.
///
/// Per lane it performs exactly the floating-point operations of
/// [`ThomasSolver::solve`] in exactly the same order — lanes are
/// interleaved in memory, never combined arithmetically, and IEEE
/// division/multiplication round identically whether issued scalar or
/// SIMD — so results are **bit-identical** to solving each lane
/// independently.
#[derive(Clone, Debug, Default)]
pub struct BatchThomasSolver {
    c_prime: Vec<f64>,
    d_prime: Vec<f64>,
    /// First failing row per lane as an `f64` (∞ = no failure): keeping the
    /// pivot bookkeeping in the same element type as the arithmetic lets
    /// the hot loop stay branch-free and vectorizable.
    first_bad: Vec<f64>,
}

impl BatchThomasSolver {
    /// Creates a solver; scratch planes grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves every lane of `batch`: on return `x` (a `rows × lanes`
    /// plane) holds each successful lane's solution and `status` (one
    /// entry per lane) each lane's outcome.
    ///
    /// A lane whose elimination hits a numerically zero pivot gets
    /// `Err(ZeroPivot)` naming the same first failing row the scalar
    /// solver would report; its `x` entries are unspecified garbage, while
    /// sibling lanes are completely unaffected (the sweep keeps computing
    /// through the dead lane — IEEE arithmetic never traps — and only the
    /// status stops its garbage from escaping). The outer `Result` is
    /// `Err(BadShape)` only when `x` or `status` are sized wrong.
    pub fn solve(
        &mut self,
        batch: &TridiagBatch,
        x: &mut [f64],
        status: &mut [Result<(), TridiagError>],
    ) -> Result<(), TridiagError> {
        let n = batch.rows;
        let l = batch.lanes;
        if x.len() != n * l || status.len() != l {
            return Err(TridiagError::BadShape);
        }
        self.c_prime.resize(n * l, 0.0);
        self.d_prime.resize(n * l, 0.0);
        self.first_bad.resize(l, f64::INFINITY);

        let pivot_eps = 1e-300;
        let (sub, diag, sup, rhs) = (&batch.sub, &batch.diag, &batch.sup, &batch.rhs);
        let c = &mut self.c_prime[..n * l];
        let d = &mut self.d_prime[..n * l];
        let bad = &mut self.first_bad[..l];

        // Row 0: `sub[0]` is ignored, exactly as in the scalar solver.
        {
            let (diag, sup, rhs) = (&diag[..l], &sup[..l], &rhs[..l]);
            for lane in 0..l {
                let denom = diag[lane];
                bad[lane] = if denom.abs() < pivot_eps {
                    0.0
                } else {
                    f64::INFINITY
                };
                c[lane] = sup[lane] / denom;
                d[lane] = rhs[lane] / denom;
            }
        }
        // Forward elimination, one row across all lanes at a time. The
        // pivot check is a branch-free min against the row index so the
        // loop carries no per-lane control flow.
        for i in 1..n {
            let row = i * l;
            let fi = i as f64;
            let (sub, diag, sup, rhs) = (
                &sub[row..row + l],
                &diag[row..row + l],
                &sup[row..row + l],
                &rhs[row..row + l],
            );
            let (c_prev, c_row) = c[row - l..row + l].split_at_mut(l);
            let (d_prev, d_row) = d[row - l..row + l].split_at_mut(l);
            for lane in 0..l {
                let denom = diag[lane] - sub[lane] * c_prev[lane];
                let cand = if denom.abs() < pivot_eps {
                    fi
                } else {
                    f64::INFINITY
                };
                bad[lane] = bad[lane].min(cand);
                c_row[lane] = sup[lane] / denom;
                d_row[lane] = (rhs[lane] - sub[lane] * d_prev[lane]) / denom;
            }
        }
        // Back substitution.
        let last = (n - 1) * l;
        x[last..last + l].copy_from_slice(&d[last..last + l]);
        for i in (0..n - 1).rev() {
            let row = i * l;
            let (x_row, x_next) = x[row..row + 2 * l].split_at_mut(l);
            let (c_row, d_row) = (&c[row..row + l], &d[row..row + l]);
            for lane in 0..l {
                x_row[lane] = d_row[lane] - c_row[lane] * x_next[lane];
            }
        }
        for lane in 0..l {
            status[lane] = if bad[lane].is_finite() {
                Err(TridiagError::ZeroPivot {
                    row: bad[lane] as usize,
                })
            } else {
                Ok(())
            };
        }
        Ok(())
    }
}

/// One-shot convenience wrapper over [`ThomasSolver::solve`].
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, TridiagError> {
    let mut x = vec![0.0; diag.len()];
    ThomasSolver::new().solve(sub, diag, sup, rhs, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multiply(sub: &[f64], diag: &[f64], sup: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        (0..n)
            .map(|i| {
                let mut v = diag[i] * x[i];
                if i > 0 {
                    v += sub[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += sup[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    #[test]
    fn solves_identity() {
        let n = 5;
        let sub = vec![0.0; n];
        let diag = vec![1.0; n];
        let sup = vec![0.0; n];
        let rhs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        assert_eq!(x, rhs);
    }

    #[test]
    fn solves_known_laplacian_system() {
        // -u'' = 1 on (0,1), u(0)=u(1)=0, discretized with 4 interior nodes:
        // exact discrete solution equals continuous u(x) = x(1-x)/2 at nodes
        // (the 3-point stencil is exact for quadratics).
        let n = 4;
        let h = 1.0 / (n as f64 + 1.0);
        let sub = vec![-1.0; n];
        let diag = vec![2.0; n];
        let sup = vec![-1.0; n];
        let rhs = vec![h * h; n];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        for (i, xi) in x.iter().enumerate() {
            let xi_pos = (i as f64 + 1.0) * h;
            let exact = xi_pos * (1.0 - xi_pos) / 2.0;
            assert!((xi - exact).abs() < 1e-12, "node {i}: {xi} vs {exact}");
        }
    }

    #[test]
    fn residual_is_tiny_for_diagonally_dominant_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 64;
        let mut state = 0x12345678u64;
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let sub: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let sup: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| 2.0 + sub[i].abs() + sup[i].abs() + rnd())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 10.0 - 5.0).collect();
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        let back = multiply(&sub, &diag, &sup, &x);
        for i in 0..n {
            assert!((back[i] - rhs[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn single_element_system() {
        let x = solve_tridiagonal(&[0.0], &[4.0], &[0.0], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert_eq!(
            solve_tridiagonal(&[0.0], &[1.0, 2.0], &[0.0, 0.0], &[1.0, 1.0]).unwrap_err(),
            TridiagError::BadShape
        );
        assert_eq!(
            solve_tridiagonal(&[], &[], &[], &[]).unwrap_err(),
            TridiagError::BadShape
        );
    }

    #[test]
    fn reports_zero_pivot() {
        let err =
            solve_tridiagonal(&[0.0, 1.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]).unwrap_err();
        assert_eq!(err, TridiagError::ZeroPivot { row: 0 });
    }

    /// Deterministic pseudo-random stream for batch-vs-scalar comparisons.
    fn rng(mut state: u64) -> impl FnMut() -> f64 {
        move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn batched_solve_is_bit_identical_to_scalar_lanes() {
        let mut rnd = rng(0xDEC0DE);
        for &(rows, lanes) in &[(1usize, 1usize), (3, 2), (9, 7), (17, 64), (33, 5)] {
            let mut batch = TridiagBatch::new(rows, lanes);
            let mut systems = Vec::new();
            for lane in 0..lanes {
                let sub: Vec<f64> = (0..rows).map(|_| rnd() - 0.5).collect();
                let sup: Vec<f64> = (0..rows).map(|_| rnd() - 0.5).collect();
                let diag: Vec<f64> = (0..rows)
                    .map(|i| 1.5 + sub[i].abs() + sup[i].abs() + rnd())
                    .collect();
                let rhs: Vec<f64> = (0..rows).map(|_| rnd() * 10.0 - 5.0).collect();
                batch.set_lane(lane, &sub, &diag, &sup, &rhs);
                systems.push((sub, diag, sup, rhs));
            }
            let mut x = vec![0.0; rows * lanes];
            let mut status = vec![Ok(()); lanes];
            BatchThomasSolver::new()
                .solve(&batch, &mut x, &mut status)
                .unwrap();
            let mut scalar = ThomasSolver::new();
            for (lane, (sub, diag, sup, rhs)) in systems.iter().enumerate() {
                let mut expect = vec![0.0; rows];
                scalar.solve(sub, diag, sup, rhs, &mut expect).unwrap();
                assert_eq!(status[lane], Ok(()));
                for i in 0..rows {
                    assert_eq!(
                        x[i * lanes + lane].to_bits(),
                        expect[i].to_bits(),
                        "{rows}x{lanes}: lane {lane} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_pivot_degrades_only_its_own_lane() {
        let rows = 6;
        let lanes = 3;
        let mut batch = TridiagBatch::new(rows, lanes);
        let good_sub = vec![-1.0; rows];
        let good_diag = vec![3.0; rows];
        let good_sup = vec![-1.0; rows];
        let rhs: Vec<f64> = (0..rows).map(|i| i as f64 + 1.0).collect();
        batch.set_lane(0, &good_sub, &good_diag, &good_sup, &rhs);
        // Lane 1 is singular partway through elimination: diag[2] equals
        // sub[2]·c'[1] by construction, so the pivot at row 2 cancels.
        let mut bad_diag = good_diag.clone();
        bad_diag[2] = 1.0 / (3.0 - 1.0 / 3.0); // == sub[2]·c'[1], exactly
        batch.set_lane(1, &good_sub, &bad_diag, &good_sup, &rhs);
        batch.set_lane(2, &good_sub, &good_diag, &good_sup, &rhs);

        let mut x = vec![0.0; rows * lanes];
        let mut status = vec![Ok(()); lanes];
        BatchThomasSolver::new()
            .solve(&batch, &mut x, &mut status)
            .unwrap();

        // The scalar solver agrees on the failing lane's first bad row.
        let scalar_err = ThomasSolver::new()
            .solve(&good_sub, &bad_diag, &good_sup, &rhs, &mut vec![0.0; rows])
            .unwrap_err();
        assert_eq!(status[1], Err(scalar_err));
        assert!(matches!(status[1], Err(TridiagError::ZeroPivot { row: 2 })));

        // Sibling lanes are bit-identical to their scalar solves.
        let mut expect = vec![0.0; rows];
        ThomasSolver::new()
            .solve(&good_sub, &good_diag, &good_sup, &rhs, &mut expect)
            .unwrap();
        for &lane in &[0usize, 2] {
            assert_eq!(status[lane], Ok(()));
            for i in 0..rows {
                assert_eq!(x[i * lanes + lane].to_bits(), expect[i].to_bits());
            }
        }
    }

    #[test]
    fn zero_pivot_at_row_zero_is_reported() {
        let mut batch = TridiagBatch::new(2, 2);
        batch.set_lane(0, &[0.0, 1.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]);
        batch.set_lane(1, &[0.0, 0.0], &[1.0, 1.0], &[0.0, 0.0], &[7.0, 8.0]);
        let mut x = vec![0.0; 4];
        let mut status = vec![Ok(()); 2];
        BatchThomasSolver::new()
            .solve(&batch, &mut x, &mut status)
            .unwrap();
        assert_eq!(status[0], Err(TridiagError::ZeroPivot { row: 0 }));
        assert_eq!(status[1], Ok(()));
        assert_eq!((x[1], x[3]), (7.0, 8.0));
    }

    #[test]
    fn batch_solver_rejects_misshapen_outputs() {
        let batch = TridiagBatch::new(3, 2);
        let mut solver = BatchThomasSolver::new();
        assert_eq!(
            solver.solve(&batch, &mut [0.0; 5], &mut [Ok(()); 2]),
            Err(TridiagError::BadShape)
        );
        assert_eq!(
            solver.solve(&batch, &mut [0.0; 6], &mut [Ok(()); 1]),
            Err(TridiagError::BadShape)
        );
    }

    #[test]
    fn batch_solver_scratch_is_reusable_across_sizes() {
        let mut solver = BatchThomasSolver::new();
        // Large solve first so stale scratch could shadow the small one.
        let mut rnd = rng(0xBEEF);
        let rows = 12;
        let lanes = 8;
        let mut big = TridiagBatch::new(rows, lanes);
        for lane in 0..lanes {
            let sub: Vec<f64> = (0..rows).map(|_| rnd() - 0.5).collect();
            let sup: Vec<f64> = (0..rows).map(|_| rnd() - 0.5).collect();
            let diag: Vec<f64> = (0..rows)
                .map(|i| 2.0 + sub[i].abs() + sup[i].abs())
                .collect();
            let rhs: Vec<f64> = (0..rows).map(|_| rnd()).collect();
            big.set_lane(lane, &sub, &diag, &sup, &rhs);
        }
        let mut x = vec![0.0; rows * lanes];
        let mut status = vec![Ok(()); lanes];
        solver.solve(&big, &mut x, &mut status).unwrap();

        let mut small = TridiagBatch::new(2, 1);
        small.set_lane(0, &[0.0, 0.0], &[2.0, 4.0], &[0.0, 0.0], &[2.0, 8.0]);
        let mut y = vec![0.0; 2];
        let mut st = vec![Ok(()); 1];
        solver.solve(&small, &mut y, &mut st).unwrap();
        assert_eq!(st[0], Ok(()));
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn solver_buffers_are_reusable() {
        let mut s = ThomasSolver::new();
        let mut x = vec![0.0; 3];
        s.solve(
            &[0.0, -1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &mut x,
        )
        .unwrap();
        let first = x.clone();
        // Solve a smaller system afterwards with the same scratch space.
        let mut y = vec![0.0; 2];
        s.solve(&[0.0, 0.0], &[1.0, 1.0], &[0.0, 0.0], &[5.0, 6.0], &mut y)
            .unwrap();
        assert_eq!(y, vec![5.0, 6.0]);
        // And the original system again: same answer.
        let mut x2 = vec![0.0; 3];
        s.solve(
            &[0.0, -1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &mut x2,
        )
        .unwrap();
        assert_eq!(first, x2);
    }
}
