//! Tridiagonal linear systems via the Thomas algorithm.
//!
//! Each implicit time step of the finite-difference PDE solver, and the
//! whole of the ODE boundary-value solver, reduce to a system
//! `sub[i]·x[i-1] + diag[i]·x[i] + sup[i]·x[i+1] = rhs[i]`. The Thomas
//! algorithm solves it in `O(n)` — which is what makes one PDE "cell
//! update" an `O(1)` unit of work.

/// Error from the tridiagonal solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TridiagError {
    /// Input slices had inconsistent or zero lengths.
    BadShape,
    /// Forward elimination hit a (numerically) zero pivot; the system is
    /// singular or severely ill-conditioned.
    ZeroPivot {
        /// Row at which elimination failed.
        row: usize,
    },
}

impl std::fmt::Display for TridiagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TridiagError::BadShape => {
                write!(f, "tridiagonal system slices have inconsistent lengths")
            }
            TridiagError::ZeroPivot { row } => write!(f, "zero pivot at row {row}"),
        }
    }
}

impl std::error::Error for TridiagError {}

/// A reusable tridiagonal solver holding its scratch buffers, so repeated
/// time steps allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct ThomasSolver {
    c_prime: Vec<f64>,
    d_prime: Vec<f64>,
}

impl ThomasSolver {
    /// Creates a solver; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the system in place: on success `x` holds the solution.
    ///
    /// Conventions: `sub[0]` and `sup[n-1]` are ignored (there is no
    /// element left of row 0 or right of row n-1).
    pub fn solve(
        &mut self,
        sub: &[f64],
        diag: &[f64],
        sup: &[f64],
        rhs: &[f64],
        x: &mut [f64],
    ) -> Result<(), TridiagError> {
        let n = diag.len();
        if n == 0 || sub.len() != n || sup.len() != n || rhs.len() != n || x.len() != n {
            return Err(TridiagError::BadShape);
        }
        self.c_prime.resize(n, 0.0);
        self.d_prime.resize(n, 0.0);

        let pivot_eps = 1e-300;
        if diag[0].abs() < pivot_eps {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        self.c_prime[0] = sup[0] / diag[0];
        self.d_prime[0] = rhs[0] / diag[0];
        for i in 1..n {
            let denom = diag[i] - sub[i] * self.c_prime[i - 1];
            if denom.abs() < pivot_eps {
                return Err(TridiagError::ZeroPivot { row: i });
            }
            self.c_prime[i] = sup[i] / denom;
            self.d_prime[i] = (rhs[i] - sub[i] * self.d_prime[i - 1]) / denom;
        }
        x[n - 1] = self.d_prime[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = self.d_prime[i] - self.c_prime[i] * x[i + 1];
        }
        Ok(())
    }
}

/// One-shot convenience wrapper over [`ThomasSolver::solve`].
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, TridiagError> {
    let mut x = vec![0.0; diag.len()];
    ThomasSolver::new().solve(sub, diag, sup, rhs, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multiply(sub: &[f64], diag: &[f64], sup: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        (0..n)
            .map(|i| {
                let mut v = diag[i] * x[i];
                if i > 0 {
                    v += sub[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += sup[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    #[test]
    fn solves_identity() {
        let n = 5;
        let sub = vec![0.0; n];
        let diag = vec![1.0; n];
        let sup = vec![0.0; n];
        let rhs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        assert_eq!(x, rhs);
    }

    #[test]
    fn solves_known_laplacian_system() {
        // -u'' = 1 on (0,1), u(0)=u(1)=0, discretized with 4 interior nodes:
        // exact discrete solution equals continuous u(x) = x(1-x)/2 at nodes
        // (the 3-point stencil is exact for quadratics).
        let n = 4;
        let h = 1.0 / (n as f64 + 1.0);
        let sub = vec![-1.0; n];
        let diag = vec![2.0; n];
        let sup = vec![-1.0; n];
        let rhs = vec![h * h; n];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        for (i, xi) in x.iter().enumerate() {
            let xi_pos = (i as f64 + 1.0) * h;
            let exact = xi_pos * (1.0 - xi_pos) / 2.0;
            assert!((xi - exact).abs() < 1e-12, "node {i}: {xi} vs {exact}");
        }
    }

    #[test]
    fn residual_is_tiny_for_diagonally_dominant_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 64;
        let mut state = 0x12345678u64;
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let sub: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let sup: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| 2.0 + sub[i].abs() + sup[i].abs() + rnd())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 10.0 - 5.0).collect();
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        let back = multiply(&sub, &diag, &sup, &x);
        for i in 0..n {
            assert!((back[i] - rhs[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn single_element_system() {
        let x = solve_tridiagonal(&[0.0], &[4.0], &[0.0], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert_eq!(
            solve_tridiagonal(&[0.0], &[1.0, 2.0], &[0.0, 0.0], &[1.0, 1.0]).unwrap_err(),
            TridiagError::BadShape
        );
        assert_eq!(
            solve_tridiagonal(&[], &[], &[], &[]).unwrap_err(),
            TridiagError::BadShape
        );
    }

    #[test]
    fn reports_zero_pivot() {
        let err =
            solve_tridiagonal(&[0.0, 1.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]).unwrap_err();
        assert_eq!(err, TridiagError::ZeroPivot { row: 0 });
    }

    #[test]
    fn solver_buffers_are_reusable() {
        let mut s = ThomasSolver::new();
        let mut x = vec![0.0; 3];
        s.solve(
            &[0.0, -1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &mut x,
        )
        .unwrap();
        let first = x.clone();
        // Solve a smaller system afterwards with the same scratch space.
        let mut y = vec![0.0; 2];
        s.solve(&[0.0, 0.0], &[1.0, 1.0], &[0.0, 0.0], &[5.0, 6.0], &mut y)
            .unwrap();
        assert_eq!(y, vec![5.0, 6.0]);
        // And the original system again: same answer.
        let mut x2 = vec![0.0; 3];
        s.solve(
            &[0.0, -1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &mut x2,
        )
        .unwrap();
        assert_eq!(first, x2);
    }
}
