//! Richardson-extrapolation error model for `O(Δt + Δx²)` solvers (§4.1).
//!
//! The mesh solver only gives a big-O *form* for its error. Following the
//! paper, we approximate the error as `e(Δt, Δx) = K₁·Δt + K₂·Δx²`, estimate
//! the constants from solutions at systematically varied step sizes
//! (`K₁ = 2(F₁−F₂)/Δt` from halving the time step, `K₂ = (4/3)(F₁−F₃)/Δx²`
//! from halving the space step), and bound the accurate answer `A = F − e`
//! conservatively by inflating each term by a safety factor — the paper
//! observed fitted constants varying by 2–3× across step sizes and uses 3.

use vao::Bounds;

/// Which step size a refinement should halve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// Halve Δt (double the number of time steps).
    Time,
    /// Halve Δx (double the number of space intervals).
    Space,
}

/// The fitted two-term error model `e(Δt, Δx) = K₁·Δt + K₂·Δx²`.
#[derive(Clone, Copy, Debug)]
pub struct TwoTermErrorModel {
    /// Temporal error coefficient.
    pub k1: f64,
    /// Spatial error coefficient.
    pub k2: f64,
    /// Conservatism multiplier on each term (the paper's factor 3).
    pub safety: f64,
}

impl TwoTermErrorModel {
    /// Fits both constants from the §4.1 trio: `f1` at `(Δt, Δx)`, `f2` at
    /// `(Δt/2, Δx)`, `f3` at `(Δt, Δx/2)`.
    #[must_use]
    pub fn fit(f1: f64, f2: f64, f3: f64, dt: f64, dx: f64, safety: f64) -> Self {
        Self {
            k1: 2.0 * (f1 - f2) / dt,
            k2: (4.0 / 3.0) * (f1 - f3) / (dx * dx),
            safety,
        }
    }

    /// Re-fits only `K₁` from a time-step halving: `f_coarse` at `Δt`,
    /// `f_fine` at `Δt/2` (same Δx).
    pub fn refit_k1(&mut self, f_coarse: f64, f_fine: f64, dt: f64) {
        self.k1 = 2.0 * (f_coarse - f_fine) / dt;
    }

    /// Re-fits only `K₂` from a space-step halving: `f_coarse` at `Δx`,
    /// `f_fine` at `Δx/2` (same Δt).
    pub fn refit_k2(&mut self, f_coarse: f64, f_fine: f64, dx: f64) {
        self.k2 = (4.0 / 3.0) * (f_coarse - f_fine) / (dx * dx);
    }

    /// The two signed error terms `(K₁·Δt, K₂·Δx²)` at the given steps.
    #[must_use]
    pub fn terms(&self, dt: f64, dx: f64) -> (f64, f64) {
        (self.k1 * dt, self.k2 * dx * dx)
    }

    /// Conservative bounds on the accurate answer around a solution
    /// computed at `(Δt, Δx)`.
    ///
    /// Generalizes the paper's signed formula (`A ∈ [F − 3K₁Δt, F − 3K₂Δx²]`
    /// for `K₁ > 0 > K₂`) to arbitrary coefficient signs: each term pushes
    /// one side of the interval away from `F` by `safety` times itself.
    #[must_use]
    pub fn bounds_around(&self, value: f64, dt: f64, dx: f64) -> Bounds {
        let (e1, e2) = self.terms(dt, dx);
        let lo = value - self.safety * (e1.max(0.0) + e2.max(0.0));
        let hi = value + self.safety * ((-e1).max(0.0) + (-e2).max(0.0));
        Bounds::new(lo, hi)
    }

    /// Bounds width at the given steps: `safety · (|K₁Δt| + |K₂Δx²|)`.
    #[must_use]
    pub fn width(&self, dt: f64, dx: f64) -> f64 {
        let (e1, e2) = self.terms(dt, dx);
        self.safety * (e1.abs() + e2.abs())
    }

    /// Which halving the model predicts reduces the error most.
    ///
    /// Halving Δt removes `|K₁|·Δt/2`; halving Δx removes `(3/4)|K₂|·Δx²`.
    /// Both halvings roughly double the mesh, so the comparison is on raw
    /// error reduction, exactly as §4.1 prescribes.
    #[must_use]
    pub fn dominant_step(&self, dt: f64, dx: f64) -> StepKind {
        let (e1, e2) = self.terms(dt, dx);
        if 0.5 * e1.abs() >= 0.75 * e2.abs() {
            StepKind::Time
        } else {
            StepKind::Space
        }
    }

    /// Predicted solution value after halving `kind`: the model says the
    /// halved term's contribution shrinks by half (time) or three quarters
    /// (space).
    #[must_use]
    pub fn predicted_value(&self, value: f64, dt: f64, dx: f64, kind: StepKind) -> f64 {
        let (e1, e2) = self.terms(dt, dx);
        match kind {
            StepKind::Time => value - 0.5 * e1,
            StepKind::Space => value - 0.75 * e2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic solver value with exactly the modeled error form.
    fn synthetic(a: f64, k1: f64, k2: f64, dt: f64, dx: f64) -> f64 {
        a + k1 * dt + k2 * dx * dx
    }

    #[test]
    fn fit_recovers_exact_coefficients() {
        let (a, k1, k2) = (100.0, 4.0, -250.0);
        let (dt, dx) = (0.5, 0.1);
        let f1 = synthetic(a, k1, k2, dt, dx);
        let f2 = synthetic(a, k1, k2, dt / 2.0, dx);
        let f3 = synthetic(a, k1, k2, dt, dx / 2.0);
        let m = TwoTermErrorModel::fit(f1, f2, f3, dt, dx, 3.0);
        assert!((m.k1 - k1).abs() < 1e-9, "k1 {}", m.k1);
        assert!((m.k2 - k2).abs() < 1e-9, "k2 {}", m.k2);
    }

    #[test]
    fn bounds_contain_the_true_answer_when_model_is_exact() {
        let (a, k1, k2) = (100.0, 4.0, -250.0);
        let (dt, dx) = (0.5, 0.1);
        let f1 = synthetic(a, k1, k2, dt, dx);
        let m = TwoTermErrorModel::fit(
            f1,
            synthetic(a, k1, k2, dt / 2.0, dx),
            synthetic(a, k1, k2, dt, dx / 2.0),
            dt,
            dx,
            3.0,
        );
        let b = m.bounds_around(f1, dt, dx);
        assert!(b.contains(a), "bounds {b} should contain {a}");
        // Paper's signed case: K1 > 0 > K2 gives [F1-3K1Δt, F1-3K2Δx²].
        assert!((b.lo() - (f1 - 3.0 * k1 * dt)).abs() < 1e-9);
        assert!((b.hi() - (f1 - 3.0 * k2 * dx * dx)).abs() < 1e-9);
    }

    #[test]
    fn bounds_contain_truth_even_with_misfit_constants_within_safety() {
        // The true K's are up to 3x the fitted ones: the safety factor must
        // still cover the answer.
        let (dt, dx) = (0.25, 0.05);
        let m = TwoTermErrorModel {
            k1: 2.0,
            k2: -100.0,
            safety: 3.0,
        };
        for scale in [0.5, 1.0, 2.0, 2.9] {
            let true_err = scale * (m.k1 * dt) + scale * (m.k2 * dx * dx);
            let value = 50.0 + true_err; // A = 50
            let b = m.bounds_around(value, dt, dx);
            assert!(b.contains(50.0), "scale {scale}: {b}");
        }
    }

    #[test]
    fn width_shrinks_with_steps() {
        let m = TwoTermErrorModel {
            k1: 1.0,
            k2: 1.0,
            safety: 3.0,
        };
        let w0 = m.width(0.4, 0.2);
        let w_t = m.width(0.2, 0.2);
        let w_x = m.width(0.4, 0.1);
        assert!(w_t < w0 && w_x < w0);
        // Time halving removes K1·dt/2 = 0.2·3; space removes 0.75·K2·dx².
        assert!((w0 - w_t - 3.0 * 0.2).abs() < 1e-12);
        assert!((w0 - w_x - 3.0 * 0.75 * 0.04).abs() < 1e-12);
    }

    #[test]
    fn dominant_step_picks_larger_reduction() {
        // Large temporal term: halve time.
        let m = TwoTermErrorModel {
            k1: 10.0,
            k2: 0.1,
            safety: 3.0,
        };
        assert_eq!(m.dominant_step(1.0, 0.1), StepKind::Time);
        // Large spatial term: halve space.
        let m = TwoTermErrorModel {
            k1: 0.01,
            k2: -500.0,
            safety: 3.0,
        };
        assert_eq!(m.dominant_step(0.01, 0.5), StepKind::Space);
    }

    #[test]
    fn refits_update_single_coefficients() {
        let mut m = TwoTermErrorModel {
            k1: 1.0,
            k2: 1.0,
            safety: 3.0,
        };
        // True K1 = 6: halving dt=0.5 moves the value by K1·dt/2 = 1.5.
        m.refit_k1(101.5, 100.0, 0.5);
        assert!((m.k1 - 6.0).abs() < 1e-12);
        assert_eq!(m.k2, 1.0);
        // True K2 = -80: halving dx=0.1 moves value by 0.75·K2·dx² = -0.6.
        m.refit_k2(99.4, 100.0, 0.1);
        assert!((m.k2 + 80.0).abs() < 1e-9);
        assert!((m.k1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_value_matches_model() {
        let m = TwoTermErrorModel {
            k1: 4.0,
            k2: -100.0,
            safety: 3.0,
        };
        let (dt, dx) = (0.5, 0.1);
        let v = 102.0;
        assert!((m.predicted_value(v, dt, dx, StepKind::Time) - (v - 1.0)).abs() < 1e-12);
        // Space: removes 0.75·(-100)·0.01 = -0.75, so value rises by 0.75.
        assert!((m.predicted_value(v, dt, dx, StepKind::Space) - (v + 0.75)).abs() < 1e-12);
    }

    #[test]
    fn zero_coefficients_give_zero_width() {
        let m = TwoTermErrorModel {
            k1: 0.0,
            k2: 0.0,
            safety: 3.0,
        };
        assert_eq!(m.width(1.0, 1.0), 0.0);
        let b = m.bounds_around(42.0, 1.0, 1.0);
        assert_eq!((b.lo(), b.hi()), (42.0, 42.0));
    }
}
