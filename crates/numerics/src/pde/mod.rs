//! Parabolic PDE solving with variable accuracy (§4.1).
//!
//! The paper's motivating UDF — a bond-pricing model — is the solution of a
//! parabolic PDE of the form
//!
//! ```text
//! a(x)·F_xx + b(x)·F_x + F_t − r(x)·F + c(x,t) = 0 ,   F(x, T) given,
//! ```
//!
//! evaluated at `F(x_query, 0)`. [`problem`] defines that problem shape,
//! [`solver`] solves it by implicit finite differencing on an `n_x × n_t`
//! mesh (error `O(Δt + Δx²)`), [`extrapolation`] turns solutions at three
//! step-size combinations into real-valued error bounds via Richardson
//! extrapolation, and [`vao`] wraps the whole machinery as a
//! [`::vao::ResultObject`] whose `iterate()` halves whichever step size the
//! error model blames most. [`batch`] advances many such objects whose next
//! refinements share a grid shape in lockstep, as lanes of one
//! struct-of-arrays sweep, bit-identically to their scalar iterations.

pub mod batch;
pub mod extrapolation;
pub mod problem;
pub mod solver;
pub mod two_factor;
pub mod vao;

pub use batch::step_batch;
pub use extrapolation::{StepKind, TwoTermErrorModel};
pub use problem::ParabolicPde;
pub use solver::{solve_on_mesh, MeshSolution, SolverConfig};
pub use two_factor::{solve_adi, TwoFactorPde, TwoFactorResultObject, TwoFactorVaoConfig};
pub use vao::{PdeResultObject, PdeVaoConfig};
