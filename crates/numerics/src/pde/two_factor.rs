//! Two-factor parabolic PDEs via ADI (alternating-direction implicit).
//!
//! The paper's bond-model citations include two-factor valuation models
//! (Downing, Stanton & Wallace's mortgage model with an interest-rate and
//! a housing-price factor). Those lead to PDEs of the form
//!
//! ```text
//! ax·F_xx + ay·F_yy + bx·F_x + by·F_y + F_t − r·F + c = 0,   F(x,y,T) given,
//! ```
//!
//! (zero cross-diffusion — independent factors), solved here with
//! Peaceman–Rachford-style ADI: each backward time step is split into an
//! x-implicit half-step and a y-implicit half-step, so the cost stays one
//! tridiagonal solve per grid line and the total work per step is
//! `2·n_x·n_y` cell updates. The error form `O(Δt + Δx² + Δy²)` feeds a
//! three-term Richardson model, and [`TwoFactorResultObject`] halves
//! whichever of the three steps the model blames most — §4.1's refinement
//! rule with one more dimension.

use vao::cost::{Work, WorkMeter};
use vao::interface::ResultObject;
use vao::Bounds;

use crate::pde::solver::SolveError;
use crate::tridiag::ThomasSolver;

/// A two-factor terminal-value problem queried at `(x_query, y_query, 0)`.
pub trait TwoFactorPde {
    /// Domain of the first factor, `[x_min, x_max]`.
    fn x_domain(&self) -> (f64, f64);
    /// Domain of the second factor, `[y_min, y_max]`.
    fn y_domain(&self) -> (f64, f64);
    /// Terminal time `T > 0`.
    fn horizon(&self) -> f64;
    /// Diffusion in `x` (≥ 0).
    fn diffusion_x(&self, x: f64, y: f64) -> f64;
    /// Diffusion in `y` (≥ 0).
    fn diffusion_y(&self, x: f64, y: f64) -> f64;
    /// Drift in `x`.
    fn drift_x(&self, x: f64, y: f64) -> f64;
    /// Drift in `y`.
    fn drift_y(&self, x: f64, y: f64) -> f64;
    /// Discount rate `r(x, y)`.
    fn discount(&self, x: f64, y: f64) -> f64;
    /// Source term `c(x, y, t)`.
    fn source(&self, x: f64, y: f64, t: f64) -> f64;
    /// Terminal condition `F(x, y, T)`.
    fn terminal(&self, x: f64, y: f64) -> f64;
    /// Query point, inside the domain.
    fn query(&self) -> (f64, f64);
}

/// Result of one ADI solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdiSolution {
    /// `F(x_query, y_query, 0)` (bilinear interpolation).
    pub value: f64,
    /// Cell updates performed (`2·n_t·n_x·n_y` plus boundary columns).
    pub work: Work,
}

/// Solves on an `n_x × n_y × n_t` mesh by ADI splitting.
///
/// Boundary treatment matches the 1-D solver: diffusion dropped and drift
/// one-sided *into* the domain on each lateral face.
pub fn solve_adi<P: TwoFactorPde>(
    problem: &P,
    n_x: u32,
    n_y: u32,
    n_t: u32,
    max_cells: u64,
) -> Result<AdiSolution, SolveError> {
    if n_x < 2 || n_y < 2 || n_t < 1 {
        return Err(SolveError::BadMesh {
            cells: 2 * u64::from(n_t) * u64::from(n_x + 1) * u64::from(n_y + 1),
            max: max_cells,
        });
    }
    let cells = 2 * u64::from(n_t) * u64::from(n_x + 1) * u64::from(n_y + 1);
    if cells > max_cells {
        return Err(SolveError::BadMesh {
            cells,
            max: max_cells,
        });
    }
    let (x_lo, x_hi) = problem.x_domain();
    let (y_lo, y_hi) = problem.y_domain();
    let horizon = problem.horizon();
    if !(x_lo < x_hi && y_lo < y_hi && horizon > 0.0) {
        return Err(SolveError::Problem("invalid two-factor geometry".into()));
    }

    let nx = n_x as usize + 1;
    let ny = n_y as usize + 1;
    let hx = (x_hi - x_lo) / f64::from(n_x);
    let hy = (y_hi - y_lo) / f64::from(n_y);
    let dt = horizon / f64::from(n_t);
    let xs: Vec<f64> = (0..nx).map(|i| x_lo + hx * i as f64).collect();
    let ys: Vec<f64> = (0..ny).map(|j| y_lo + hy * j as f64).collect();

    // g[j][i] = F(x_i, y_j).
    let mut g: Vec<Vec<f64>> = ys
        .iter()
        .map(|&y| xs.iter().map(|&x| problem.terminal(x, y)).collect())
        .collect();

    let mut thomas = ThomasSolver::new();
    let mut sub = vec![0.0; nx.max(ny)];
    let mut diag = vec![0.0; nx.max(ny)];
    let mut sup = vec![0.0; nx.max(ny)];
    let mut rhs = vec![0.0; nx.max(ny)];
    let mut sol = vec![0.0; nx.max(ny)];

    for k in 1..=n_t {
        let t = horizon - dt * f64::from(k);

        // Half-step 1: implicit in x, explicit-in-nothing (operator split:
        // the y-terms act in the second half-step). Half the discount and
        // source are applied in each half-step.
        for j in 0..ny {
            let y = ys[j];
            for i in 0..nx {
                let x = xs[i];
                let (a, b) = (problem.diffusion_x(x, y), problem.drift_x(x, y));
                let r = 0.5 * problem.discount(x, y);
                if i == 0 || i == nx - 1 {
                    let binward = if i == 0 { b.max(0.0) } else { (-b).max(0.0) };
                    diag[i] = 1.0 + dt * r + dt * binward / hx;
                    if i == 0 {
                        sup[i] = -dt * binward / hx;
                        sub[i] = 0.0;
                    } else {
                        sub[i] = -dt * binward / hx;
                        sup[i] = 0.0;
                    }
                } else {
                    let alpha = dt * a / (hx * hx);
                    let beta = dt * b / (2.0 * hx);
                    sub[i] = -(alpha - beta);
                    diag[i] = 1.0 + 2.0 * alpha + dt * r;
                    sup[i] = -(alpha + beta);
                }
                rhs[i] = g[j][i] + 0.5 * dt * problem.source(x, y, t);
            }
            thomas
                .solve(
                    &sub[..nx],
                    &diag[..nx],
                    &sup[..nx],
                    &rhs[..nx],
                    &mut sol[..nx],
                )
                .map_err(SolveError::Singular)?;
            g[j][..nx].copy_from_slice(&sol[..nx]);
        }

        // Half-step 2: implicit in y.
        for i in 0..nx {
            let x = xs[i];
            for j in 0..ny {
                let y = ys[j];
                let (a, b) = (problem.diffusion_y(x, y), problem.drift_y(x, y));
                let r = 0.5 * problem.discount(x, y);
                if j == 0 || j == ny - 1 {
                    let binward = if j == 0 { b.max(0.0) } else { (-b).max(0.0) };
                    diag[j] = 1.0 + dt * r + dt * binward / hy;
                    if j == 0 {
                        sup[j] = -dt * binward / hy;
                        sub[j] = 0.0;
                    } else {
                        sub[j] = -dt * binward / hy;
                        sup[j] = 0.0;
                    }
                } else {
                    let alpha = dt * a / (hy * hy);
                    let beta = dt * b / (2.0 * hy);
                    sub[j] = -(alpha - beta);
                    diag[j] = 1.0 + 2.0 * alpha + dt * r;
                    sup[j] = -(alpha + beta);
                }
                rhs[j] = g[j][i] + 0.5 * dt * problem.source(x, y, t);
            }
            thomas
                .solve(
                    &sub[..ny],
                    &diag[..ny],
                    &sup[..ny],
                    &rhs[..ny],
                    &mut sol[..ny],
                )
                .map_err(SolveError::Singular)?;
            for j in 0..ny {
                g[j][i] = sol[j];
            }
        }
    }

    // Bilinear interpolation at the query point.
    let (xq, yq) = problem.query();
    let px = ((xq - x_lo) / hx).clamp(0.0, (nx - 1) as f64);
    let py = ((yq - y_lo) / hy).clamp(0.0, (ny - 1) as f64);
    let (i0, j0) = (
        (px.floor() as usize).min(nx - 2),
        (py.floor() as usize).min(ny - 2),
    );
    let (fx, fy) = (px - i0 as f64, py - j0 as f64);
    let value = g[j0][i0] * (1.0 - fx) * (1.0 - fy)
        + g[j0][i0 + 1] * fx * (1.0 - fy)
        + g[j0 + 1][i0] * (1.0 - fx) * fy
        + g[j0 + 1][i0 + 1] * fx * fy;

    Ok(AdiSolution { value, work: cells })
}

/// Configuration for [`TwoFactorResultObject`].
#[derive(Clone, Copy, Debug)]
pub struct TwoFactorVaoConfig {
    /// Initial x intervals.
    pub initial_nx: u32,
    /// Initial y intervals.
    pub initial_ny: u32,
    /// Initial time steps.
    pub initial_nt: u32,
    /// The `minWidth` stopping threshold.
    pub min_width: f64,
    /// Safety factor on fitted coefficients.
    pub safety: f64,
    /// Mesh-size cap per solve.
    pub max_cells: u64,
}

impl Default for TwoFactorVaoConfig {
    fn default() -> Self {
        Self {
            initial_nx: 8,
            initial_ny: 8,
            initial_nt: 4,
            min_width: 0.01,
            safety: 3.0,
            max_cells: 1 << 30,
        }
    }
}

/// Which mesh dimension a refinement halves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dim {
    Time,
    X,
    Y,
}

/// A refinable two-factor PDE solution implementing [`ResultObject`].
pub struct TwoFactorResultObject<P: TwoFactorPde> {
    problem: P,
    config: TwoFactorVaoConfig,
    nt: u32,
    nx: u32,
    ny: u32,
    value: f64,
    k_t: f64,
    k_x: f64,
    k_y: f64,
    bounds: Bounds,
    cumulative: Work,
    last_work: Work,
    capped: bool,
}

impl<P: TwoFactorPde> TwoFactorResultObject<P> {
    /// Creates the object: four coarse solves fit the three error
    /// coefficients (base, Δt/2, Δx/2, Δy/2), charged to `meter`.
    pub fn new(
        problem: P,
        config: TwoFactorVaoConfig,
        meter: &mut WorkMeter,
    ) -> Result<Self, SolveError> {
        assert!(
            config.min_width > 0.0 && config.min_width.is_finite(),
            "min_width must be positive"
        );
        let (nt, nx, ny) = (
            config.initial_nt.max(1),
            config.initial_nx.max(2),
            config.initial_ny.max(2),
        );
        let solve = |nt: u32, nx: u32, ny: u32, meter: &mut WorkMeter| -> Result<f64, SolveError> {
            let s = solve_adi(&problem, nx, ny, nt, config.max_cells)?;
            meter.charge_exec(s.work);
            Ok(s.value)
        };
        let f1 = solve(nt, nx, ny, meter)?;
        let f2 = solve(nt * 2, nx, ny, meter)?;
        let f3 = solve(nt, nx * 2, ny, meter)?;
        let f4 = solve(nt, nx, ny * 2, meter)?;
        meter.charge_store_state(1);

        let (dt, hx, hy) = steps_of(&problem, nt, nx, ny);
        let k_t = 2.0 * (f1 - f2) / dt;
        let k_x = (4.0 / 3.0) * (f1 - f3) / (hx * hx);
        let k_y = (4.0 / 3.0) * (f1 - f4) / (hy * hy);
        let cumulative = meter.breakdown().exec_iter;
        let mut obj = Self {
            problem,
            config,
            nt,
            nx,
            ny,
            value: f1,
            k_t,
            k_x,
            k_y,
            bounds: Bounds::point(f1),
            cumulative,
            last_work: 0,
            capped: false,
        };
        obj.last_work = obj.mesh_cells(nt, nx, ny);
        obj.bounds = obj.bounds_at(f1, nt, nx, ny);
        Ok(obj)
    }

    /// Current mesh `(nt, nx, ny)`.
    #[must_use]
    pub fn mesh(&self) -> (u32, u32, u32) {
        (self.nt, self.nx, self.ny)
    }

    /// Whether refinement hit the cell cap.
    #[must_use]
    pub fn capped(&self) -> bool {
        self.capped
    }

    fn mesh_cells(&self, nt: u32, nx: u32, ny: u32) -> Work {
        2 * u64::from(nt) * u64::from(nx + 1) * u64::from(ny + 1)
    }

    fn terms(&self, nt: u32, nx: u32, ny: u32) -> (f64, f64, f64) {
        let (dt, hx, hy) = steps_of(&self.problem, nt, nx, ny);
        (self.k_t * dt, self.k_x * hx * hx, self.k_y * hy * hy)
    }

    fn bounds_at(&self, value: f64, nt: u32, nx: u32, ny: u32) -> Bounds {
        let (et, ex, ey) = self.terms(nt, nx, ny);
        let s = self.config.safety;
        let lo = value - s * (et.max(0.0) + ex.max(0.0) + ey.max(0.0));
        let hi = value + s * ((-et).max(0.0) + (-ex).max(0.0) + (-ey).max(0.0));
        Bounds::new(lo, hi)
    }

    /// The dimension whose halving removes the most modeled error.
    fn dominant(&self) -> Dim {
        let (et, ex, ey) = self.terms(self.nt, self.nx, self.ny);
        let (rt, rx, ry) = (0.5 * et.abs(), 0.75 * ex.abs(), 0.75 * ey.abs());
        if rt >= rx && rt >= ry {
            Dim::Time
        } else if rx >= ry {
            Dim::X
        } else {
            Dim::Y
        }
    }

    fn next_mesh(&self) -> (u32, u32, u32, Dim) {
        match self.dominant() {
            Dim::Time => (self.nt.saturating_mul(2), self.nx, self.ny, Dim::Time),
            Dim::X => (self.nt, self.nx.saturating_mul(2), self.ny, Dim::X),
            Dim::Y => (self.nt, self.nx, self.ny.saturating_mul(2), Dim::Y),
        }
    }
}

fn steps_of<P: TwoFactorPde>(problem: &P, nt: u32, nx: u32, ny: u32) -> (f64, f64, f64) {
    let (x_lo, x_hi) = problem.x_domain();
    let (y_lo, y_hi) = problem.y_domain();
    (
        problem.horizon() / f64::from(nt),
        (x_hi - x_lo) / f64::from(nx),
        (y_hi - y_lo) / f64::from(ny),
    )
}

impl<P: TwoFactorPde> ResultObject for TwoFactorResultObject<P> {
    fn bounds(&self) -> Bounds {
        self.bounds
    }

    fn min_width(&self) -> f64 {
        self.config.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let (nt, nx, ny, dim) = self.next_mesh();
        if self.mesh_cells(nt, nx, ny) > self.config.max_cells {
            self.capped = true;
            return self.bounds;
        }
        let sol = match solve_adi(&self.problem, nx, ny, nt, self.config.max_cells) {
            Ok(s) => s,
            Err(_) => {
                self.capped = true;
                return self.bounds;
            }
        };
        meter.charge_get_state(1);
        meter.charge_exec(sol.work);
        meter.charge_store_state(1);
        meter.count_iteration();
        self.cumulative += sol.work;
        self.last_work = sol.work;

        let (dt, hx, hy) = steps_of(&self.problem, self.nt, self.nx, self.ny);
        match dim {
            Dim::Time => self.k_t = 2.0 * (self.value - sol.value) / dt,
            Dim::X => self.k_x = (4.0 / 3.0) * (self.value - sol.value) / (hx * hx),
            Dim::Y => self.k_y = (4.0 / 3.0) * (self.value - sol.value) / (hy * hy),
        }
        self.nt = nt;
        self.nx = nx;
        self.ny = ny;
        self.value = sol.value;
        let fresh = self.bounds_at(sol.value, nt, nx, ny);
        self.bounds = self.bounds.intersect(&fresh).unwrap_or(fresh);
        self.bounds
    }

    fn est_cpu(&self) -> Work {
        if self.converged() || self.capped {
            return 0;
        }
        let (nt, nx, ny, _) = self.next_mesh();
        self.mesh_cells(nt, nx, ny)
    }

    fn est_bounds(&self) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let (nt, nx, ny, dim) = self.next_mesh();
        let (et, ex, ey) = self.terms(self.nt, self.nx, self.ny);
        let removed = match dim {
            Dim::Time => 0.5 * et,
            Dim::X => 0.75 * ex,
            Dim::Y => 0.75 * ey,
        };
        let predicted_value = self.value - removed;
        let predicted = self.bounds_at(predicted_value, nt, nx, ny);
        predicted.intersect(&self.bounds).unwrap_or(predicted)
    }

    fn standalone_cost(&self) -> Work {
        self.last_work
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pure decay: no spatial structure, closed-form solution.
    struct Decay2F;

    impl TwoFactorPde for Decay2F {
        fn x_domain(&self) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn y_domain(&self) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn horizon(&self) -> f64 {
            10.0
        }
        fn diffusion_x(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn diffusion_y(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn drift_x(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn drift_y(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn discount(&self, _: f64, _: f64) -> f64 {
            0.05
        }
        fn source(&self, _: f64, _: f64, _: f64) -> f64 {
            5.0
        }
        fn terminal(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn query(&self) -> (f64, f64) {
            (0.5, 0.5)
        }
    }

    fn decay_exact() -> f64 {
        100.0 * (1.0 - (-0.5f64).exp())
    }

    #[test]
    fn adi_converges_on_the_decay_problem() {
        let coarse = solve_adi(&Decay2F, 4, 4, 8, 1 << 30).unwrap();
        let fine = solve_adi(&Decay2F, 4, 4, 512, 1 << 30).unwrap();
        let exact = decay_exact();
        assert!((fine.value - exact).abs() < (coarse.value - exact).abs());
        assert!(
            (fine.value - exact).abs() < 0.05,
            "{} vs {exact}",
            fine.value
        );
    }

    #[test]
    fn adi_work_counts_cells() {
        let s = solve_adi(&Decay2F, 4, 8, 16, 1 << 30).unwrap();
        assert_eq!(s.work, 2 * 16 * 5 * 9);
    }

    #[test]
    fn adi_respects_cell_cap() {
        assert!(matches!(
            solve_adi(&Decay2F, 64, 64, 64, 1000),
            Err(SolveError::BadMesh { .. })
        ));
    }

    /// Diffusive two-factor problem with genuinely 2-D structure.
    struct Heat2F;

    impl TwoFactorPde for Heat2F {
        fn x_domain(&self) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn y_domain(&self) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn horizon(&self) -> f64 {
            0.25
        }
        fn diffusion_x(&self, _: f64, _: f64) -> f64 {
            0.05
        }
        fn diffusion_y(&self, _: f64, _: f64) -> f64 {
            0.08
        }
        fn drift_x(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn drift_y(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn discount(&self, _: f64, _: f64) -> f64 {
            0.0
        }
        fn source(&self, _: f64, _: f64, _: f64) -> f64 {
            0.0
        }
        fn terminal(&self, x: f64, y: f64) -> f64 {
            (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
        }
        fn query(&self) -> (f64, f64) {
            (0.5, 0.5)
        }
    }

    #[test]
    fn adi_mesh_refinement_converges_on_2d_heat() {
        let reference = solve_adi(&Heat2F, 96, 96, 512, 1 << 32).unwrap().value;
        let e1 = (solve_adi(&Heat2F, 8, 8, 512, 1 << 32).unwrap().value - reference).abs();
        let e2 = (solve_adi(&Heat2F, 16, 16, 512, 1 << 32).unwrap().value - reference).abs();
        assert!(
            e2 < e1 / 2.5,
            "halving both spatial steps should cut error ~4x: {e1} -> {e2}"
        );
    }

    #[test]
    fn vao_object_converges_on_decay() {
        let mut meter = WorkMeter::new();
        let mut obj = TwoFactorResultObject::new(
            Decay2F,
            TwoFactorVaoConfig {
                min_width: 0.01,
                ..TwoFactorVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        assert!(obj.bounds().contains(decay_exact()));
        let mut guard = 0;
        while !obj.converged() {
            obj.iterate(&mut meter);
            guard += 1;
            assert!(guard < 40, "failed to converge");
        }
        assert!((obj.bounds().mid() - decay_exact()).abs() < 0.02);
    }

    #[test]
    fn vao_object_refines_the_blamed_dimension() {
        // The decay problem has zero spatial error: every refinement must
        // halve the time step, never the spatial ones.
        let mut meter = WorkMeter::new();
        let mut obj = TwoFactorResultObject::new(
            Decay2F,
            TwoFactorVaoConfig {
                min_width: 1e-4,
                ..TwoFactorVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        let (_, nx0, ny0) = obj.mesh();
        for _ in 0..5 {
            if obj.converged() {
                break;
            }
            obj.iterate(&mut meter);
        }
        let (nt, nx, ny) = obj.mesh();
        assert_eq!(nx, nx0, "x mesh untouched");
        assert_eq!(ny, ny0, "y mesh untouched");
        assert!(nt > 4, "time mesh refined");
    }

    #[test]
    fn vao_object_works_in_a_selection() {
        use vao::ops::selection::{select, CmpOp};
        let mut meter = WorkMeter::new();
        let mut obj =
            TwoFactorResultObject::new(Decay2F, TwoFactorVaoConfig::default(), &mut meter).unwrap();
        // Exact value ≈ 39.35: the predicate "> 20" decides quickly.
        let out = select(&mut obj, CmpOp::Gt, 20.0, &mut meter).unwrap();
        assert!(out.satisfied);
        assert!(out.iterations <= 3);
    }

    #[test]
    fn cap_stalls_gracefully() {
        let mut meter = WorkMeter::new();
        let mut obj = TwoFactorResultObject::new(
            Heat2F,
            TwoFactorVaoConfig {
                min_width: 1e-300,
                max_cells: 20_000,
                ..TwoFactorVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        for _ in 0..40 {
            obj.iterate(&mut meter);
        }
        assert!(obj.capped());
        let before = meter.total();
        obj.iterate(&mut meter);
        assert_eq!(meter.total(), before);
    }
}
