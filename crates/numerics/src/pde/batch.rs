//! Lockstep batched execution of shape-grouped PDE refinements.
//!
//! One `iterate()` of a [`PdeResultObject`] is one fresh mesh solve: `nt`
//! backward time steps, each a tridiagonal solve over `nx + 1` mesh
//! columns. When K objects' next solves share a [`GridShape`], this module
//! advances all K in lockstep: their bands, states and right-hand sides
//! live as interleaved lanes in struct-of-arrays planes, and every time
//! step runs **one** lane-parallel [`BatchThomasSolver`] sweep instead of K
//! scalar ones.
//!
//! Per lane, the arithmetic is exactly the scalar
//! [`solve_on_mesh`](crate::pde::solver::solve_on_mesh) sequence in the
//! same order, so committed values, bounds and meter charges are
//! bit-identical to K independent `iterate()` calls. A lane whose
//! elimination goes singular is isolated: the sweep keeps computing through
//! its (garbage, but IEEE-safe) entries, the first failure is recorded, and
//! the lane's [`BatchLane::lane_commit`] receives the failure so the object
//! degrades exactly as its scalar path would — sibling lanes never notice.
//!
//! [`PdeResultObject`]: crate::pde::vao::PdeResultObject

use vao::batch::{BatchLane, GridShape, LaneFailure};
use vao::cost::WorkMeter;
use vao::Bounds;

use crate::tridiag::{BatchThomasSolver, TridiagBatch, TridiagError};

/// Advances every lane through one full refinement solve (`shape.nt` time
/// steps in lockstep), committing each lane's result on its own meter, and
/// returns the per-lane post-commit bounds in lane order.
///
/// Every lane must currently report `lane_shape() == Some(shape)`; the
/// caller (e.g. the server's round scheduler) is responsible for grouping.
/// Failed lanes are committed with their [`LaneFailure`] instead of a
/// value, exactly once, at the step where the scalar solver would have
/// aborted.
///
/// # Panics
///
/// Panics if `lanes` and `meters` have different lengths.
pub fn step_batch(
    shape: GridShape,
    lanes: &mut [&mut dyn BatchLane],
    meters: &mut [WorkMeter],
) -> Vec<Bounds> {
    assert_eq!(lanes.len(), meters.len(), "one meter per lane");
    let k = lanes.len();
    if k == 0 {
        return Vec::new();
    }
    debug_assert!(
        lanes.iter().all(|l| l.lane_shape() == Some(shape)),
        "every lane must agree on the group shape"
    );

    let rows = shape.rows();
    let mut batch = TridiagBatch::new(rows, k);
    let mut state = vec![0.0; rows * k];
    let mut next = vec![0.0; rows * k];
    let mut status: Vec<Result<(), TridiagError>> = vec![Ok(()); k];
    let mut failures: Vec<Option<LaneFailure>> = vec![None; k];
    let mut solver = BatchThomasSolver::new();

    {
        let (sub, diag, sup, _) = batch.planes_mut();
        for (idx, lane) in lanes.iter().enumerate() {
            lane.lane_init(shape, sub, diag, sup, &mut state, k, idx);
        }
    }
    for step in 1..=shape.nt {
        {
            let rhs = batch.rhs_mut();
            for (idx, lane) in lanes.iter().enumerate() {
                lane.lane_rhs(shape, step, &state, rhs, k, idx);
            }
        }
        solver
            .solve(&batch, &mut next, &mut status)
            .expect("stepper sized the planes");
        for (idx, s) in status.iter().enumerate() {
            if let Err(TridiagError::ZeroPivot { row }) = *s {
                failures[idx].get_or_insert(LaneFailure { step, row });
            }
        }
        std::mem::swap(&mut state, &mut next);
    }

    lanes
        .iter_mut()
        .zip(meters.iter_mut())
        .enumerate()
        .map(|(idx, (lane, meter))| lane.lane_commit(shape, &state, k, idx, failures[idx], meter))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pde::problem::DecayProblem;
    use crate::pde::vao::{PdeResultObject, PdeVaoConfig};
    use vao::interface::ResultObject;

    fn problems() -> Vec<DecayProblem> {
        (0..6)
            .map(|i| DecayProblem {
                rate: 0.03 + 0.01 * f64::from(i),
                coupon: 4.0 + f64::from(i),
                terminal_value: 100.0,
                horizon: 5.0 + 2.5 * f64::from(i),
            })
            .collect()
    }

    /// Builds the objects and drains the trio's cache-hit refinements so
    /// the next iterate() on each is a fresh, batchable solve.
    fn fresh_objects() -> Vec<PdeResultObject<DecayProblem>> {
        let mut meter = WorkMeter::new();
        problems()
            .into_iter()
            .map(|p| {
                let mut obj = PdeResultObject::new(p, PdeVaoConfig::default(), &mut meter).unwrap();
                while !obj.converged() && obj.batch_shape().is_none() {
                    obj.iterate(&mut meter);
                }
                assert!(obj.batch_shape().is_some(), "object must become batchable");
                obj
            })
            .collect()
    }

    #[test]
    fn lockstep_solve_is_bit_identical_to_scalar_iterates() {
        let mut scalar = fresh_objects();
        let mut batched = fresh_objects();

        // All decay problems share the mesh schedule, hence the shape.
        let shape = batched[0].batch_shape().unwrap();
        for obj in &batched {
            assert_eq!(obj.batch_shape(), Some(shape));
        }

        let mut scalar_meters: Vec<WorkMeter> = scalar.iter().map(|_| WorkMeter::new()).collect();
        let scalar_bounds: Vec<Bounds> = scalar
            .iter_mut()
            .zip(scalar_meters.iter_mut())
            .map(|(obj, m)| obj.iterate(m))
            .collect();

        let mut meters: Vec<WorkMeter> = batched.iter().map(|_| WorkMeter::new()).collect();
        let mut lanes: Vec<&mut dyn BatchLane> = batched
            .iter_mut()
            .map(|o| o as &mut dyn BatchLane)
            .collect();
        let batch_bounds = step_batch(shape, &mut lanes, &mut meters);
        drop(lanes);

        for i in 0..scalar.len() {
            assert_eq!(
                scalar_bounds[i].lo().to_bits(),
                batch_bounds[i].lo().to_bits(),
                "lane {i} lower bound"
            );
            assert_eq!(
                scalar_bounds[i].hi().to_bits(),
                batch_bounds[i].hi().to_bits(),
                "lane {i} upper bound"
            );
            assert_eq!(scalar[i].mesh(), batched[i].mesh());
            assert_eq!(scalar[i].est_cpu(), batched[i].est_cpu());
            assert_eq!(
                scalar_meters[i].breakdown(),
                meters[i].breakdown(),
                "lane {i} charges its own meter exactly like scalar"
            );
            assert_eq!(scalar_meters[i].iterations(), meters[i].iterations());
        }
    }

    #[test]
    fn batched_refinement_to_convergence_matches_scalar() {
        // Drive one batched and one scalar population all the way down and
        // compare the final converged bounds bitwise.
        let mut scalar = fresh_objects();
        let mut meter = WorkMeter::new();
        for obj in &mut scalar {
            let mut guard = 0;
            while !obj.converged() {
                obj.iterate(&mut meter);
                guard += 1;
                assert!(guard < 64, "scalar object failed to converge");
            }
        }

        let mut batched = fresh_objects();
        let mut guard = 0;
        loop {
            // Group by shape each round, batch the groups, scalar-step the
            // stragglers — a miniature of the server's dispatch.
            let mut by_shape: Vec<(GridShape, Vec<usize>)> = Vec::new();
            for (i, obj) in batched.iter().enumerate() {
                if let Some(s) = obj.batch_shape() {
                    match by_shape.iter_mut().find(|(g, _)| *g == s) {
                        Some((_, v)) => v.push(i),
                        None => by_shape.push((s, vec![i])),
                    }
                }
            }
            if by_shape.is_empty() {
                for obj in &mut batched {
                    if !obj.converged() {
                        obj.iterate(&mut meter);
                    }
                }
                if batched.iter().all(|o| o.converged()) {
                    break;
                }
            }
            for (shape, idxs) in by_shape {
                let mut meters: Vec<WorkMeter> = idxs.iter().map(|_| WorkMeter::new()).collect();
                let mut taken: Vec<&mut PdeResultObject<DecayProblem>> = Vec::new();
                let mut rest = batched.as_mut_slice();
                let mut consumed = 0;
                for &i in &idxs {
                    let (head, tail) = rest.split_at_mut(i - consumed + 1);
                    taken.push(&mut head[i - consumed]);
                    consumed = i + 1;
                    rest = tail;
                }
                let mut lanes: Vec<&mut dyn BatchLane> =
                    taken.into_iter().map(|o| o as &mut dyn BatchLane).collect();
                step_batch(shape, &mut lanes, &mut meters);
            }
            guard += 1;
            assert!(guard < 64, "batched population failed to converge");
        }

        for (s, b) in scalar.iter().zip(&batched) {
            assert_eq!(s.bounds().lo().to_bits(), b.bounds().lo().to_bits());
            assert_eq!(s.bounds().hi().to_bits(), b.bounds().hi().to_bits());
            assert_eq!(s.mesh(), b.mesh());
            assert_eq!(s.cumulative_cost(), b.cumulative_cost());
        }
    }

    #[test]
    fn empty_group_is_a_no_op() {
        let mut lanes: Vec<&mut dyn BatchLane> = Vec::new();
        let mut meters: Vec<WorkMeter> = Vec::new();
        let out = step_batch(GridShape { nt: 4, nx: 8 }, &mut lanes, &mut meters);
        assert!(out.is_empty());
    }
}
