//! The PDE solver wrapped as a variable-accuracy result object (§4.1).
//!
//! Construction runs the solver at very coarse step sizes — the §4.1 trio
//! `(Δt, Δx)`, `(Δt/2, Δx)`, `(Δt, Δx/2)` — to fit the two-term error model
//! and produce initial bounds. Each `iterate()` then:
//!
//! 1. asks the error model which step size is responsible for more error
//!    and halves it;
//! 2. runs **one** new solve at the refined mesh (reusing a cached solution
//!    when the trio already computed it), so per-iteration work roughly
//!    doubles — the cost profile §4.1 analyzes;
//! 3. re-fits the halved dimension's error coefficient from the two
//!    solutions that differ only in that dimension;
//! 4. re-centers the bounds on the new solution and updates `estCPU` /
//!    `estL` / `estH` from the model's prediction for the *next* halving.

use vao::batch::{BatchLane, GridShape, LaneFailure};
use vao::cost::{Work, WorkMeter};
use vao::interface::ResultObject;
use vao::Bounds;

use crate::pde::extrapolation::{StepKind, TwoTermErrorModel};
use crate::pde::problem::ParabolicPde;
use crate::pde::solver::{solve_on_mesh, SolveError, SolverConfig};

/// Construction parameters for [`PdeResultObject`].
#[derive(Clone, Copy, Debug)]
pub struct PdeVaoConfig {
    /// Space intervals of the initial (coarsest) mesh.
    pub initial_nx: u32,
    /// Time steps of the initial (coarsest) mesh.
    pub initial_nt: u32,
    /// The `minWidth` stopping threshold (e.g. \$0.01 for bond prices).
    pub min_width: f64,
    /// Safety factor on the fitted error coefficients (paper: 3).
    pub safety: f64,
    /// Mesh-size guard for individual solves.
    pub solver: SolverConfig,
}

impl Default for PdeVaoConfig {
    fn default() -> Self {
        Self {
            initial_nx: 8,
            initial_nt: 4,
            min_width: 0.01,
            safety: 3.0,
            solver: SolverConfig::default(),
        }
    }
}

/// A refinable PDE solution implementing [`ResultObject`].
pub struct PdeResultObject<P: ParabolicPde> {
    problem: P,
    config: PdeVaoConfig,
    /// Current mesh resolution; bounds are centered on the solution here.
    nt: u32,
    nx: u32,
    value: f64,
    model: TwoTermErrorModel,
    bounds: Bounds,
    /// Solutions already computed, keyed by `(nt, nx)`; refinement paths
    /// revisit at most a handful of meshes, so a linear scan suffices.
    cache: Vec<(u32, u32, f64)>,
    cumulative: Work,
    last_solve_work: Work,
    /// Set when a refinement would exceed the mesh cap; the object then
    /// reports itself unable to improve (iterate becomes a no-op).
    capped: bool,
}

impl<P: ParabolicPde> PdeResultObject<P> {
    /// Creates the object, running the initial coarse trio of solves and
    /// charging their work to `meter`.
    pub fn new(
        problem: P,
        config: PdeVaoConfig,
        meter: &mut WorkMeter,
    ) -> Result<Self, SolveError> {
        assert!(
            config.min_width > 0.0 && config.min_width.is_finite(),
            "min_width must be positive"
        );
        let (nt, nx) = (config.initial_nt.max(1), config.initial_nx.max(2));
        let mut obj = Self {
            problem,
            config,
            nt,
            nx,
            value: 0.0,
            model: TwoTermErrorModel {
                k1: 0.0,
                k2: 0.0,
                safety: config.safety,
            },
            bounds: Bounds::point(0.0),
            cache: Vec::with_capacity(8),
            cumulative: 0,
            last_solve_work: 0,
            capped: false,
        };
        let f1 = obj.solve(nt, nx, meter)?;
        let f2 = obj.solve(nt * 2, nx, meter)?;
        let f3 = obj.solve(nt, nx * 2, meter)?;
        let (dt, dx) = obj.steps(nt, nx);
        obj.model = TwoTermErrorModel::fit(f1, f2, f3, dt, dx, config.safety);
        obj.value = f1;
        obj.bounds = obj.model.bounds_around(f1, dt, dx);
        obj.last_solve_work = obj.mesh_cells(nt, nx);
        Ok(obj)
    }

    /// The current mesh resolution `(nt, nx)`.
    #[must_use]
    pub fn mesh(&self) -> (u32, u32) {
        (self.nt, self.nx)
    }

    /// The fitted error model (exposed for experiments and diagnostics).
    #[must_use]
    pub fn error_model(&self) -> &TwoTermErrorModel {
        &self.model
    }

    /// The problem being solved.
    #[must_use]
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Whether refinement stopped because the mesh cap was reached.
    #[must_use]
    pub fn capped(&self) -> bool {
        self.capped
    }

    fn steps(&self, nt: u32, nx: u32) -> (f64, f64) {
        let (lo, hi) = self.problem.domain();
        (
            self.problem.horizon() / f64::from(nt),
            (hi - lo) / f64::from(nx),
        )
    }

    fn mesh_cells(&self, nt: u32, nx: u32) -> Work {
        u64::from(nt) * (u64::from(nx) + 1)
    }

    fn cached(&self, nt: u32, nx: u32) -> Option<f64> {
        self.cache
            .iter()
            .find(|&&(a, b, _)| a == nt && b == nx)
            .map(|&(_, _, v)| v)
    }

    /// Solves at `(nt, nx)`, charging work only for cache misses.
    fn solve(&mut self, nt: u32, nx: u32, meter: &mut WorkMeter) -> Result<f64, SolveError> {
        if let Some(v) = self.cached(nt, nx) {
            meter.charge_get_state(1);
            return Ok(v);
        }
        let sol = solve_on_mesh(&self.problem, nx, nt, &self.config.solver)?;
        meter.charge_exec(sol.work);
        meter.charge_store_state(1);
        self.cumulative += sol.work;
        self.cache.push((nt, nx, sol.value));
        Ok(sol.value)
    }

    /// The mesh the next refinement would use, per the error model.
    fn next_mesh(&self) -> (u32, u32, StepKind) {
        let (dt, dx) = self.steps(self.nt, self.nx);
        match self.model.dominant_step(dt, dx) {
            StepKind::Time => (self.nt.saturating_mul(2), self.nx, StepKind::Time),
            StepKind::Space => (self.nt, self.nx.saturating_mul(2), StepKind::Space),
        }
    }

    fn refinement_possible(&self, nt: u32, nx: u32) -> bool {
        self.mesh_cells(nt, nx) <= self.config.solver.max_cells
            && nt < u32::MAX / 2
            && nx < u32::MAX / 2
    }

    /// Mesh geometry shared by the lane protocol and the scalar solver:
    /// space step `h` and the lower domain edge. Grid coordinates are
    /// recomputed as `x_lo + h·i` — the identical expression
    /// `solve_on_mesh` evaluates, so lane and scalar solves see
    /// bit-identical coefficients.
    fn geometry(&self, shape: GridShape) -> (f64, f64, f64) {
        let (x_lo, x_hi) = self.problem.domain();
        let h = (x_hi - x_lo) / f64::from(shape.nx);
        let dt = self.problem.horizon() / f64::from(shape.nt);
        (x_lo, h, dt)
    }
}

impl<P: ParabolicPde> ResultObject for PdeResultObject<P> {
    fn bounds(&self) -> Bounds {
        self.bounds
    }

    fn min_width(&self) -> f64 {
        self.config.min_width
    }

    fn iterate(&mut self, meter: &mut WorkMeter) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let (new_nt, new_nx, kind) = self.next_mesh();
        if !self.refinement_possible(new_nt, new_nx) {
            self.capped = true;
            return self.bounds;
        }

        let old_value = self.value;
        let (old_dt, old_dx) = self.steps(self.nt, self.nx);
        let new_value = match self.solve(new_nt, new_nx, meter) {
            Ok(v) => v,
            Err(_) => {
                // A singular step at a finer mesh: stop refining rather
                // than report bogus bounds.
                self.capped = true;
                return self.bounds;
            }
        };
        meter.count_iteration();

        match kind {
            StepKind::Time => self.model.refit_k1(old_value, new_value, old_dt),
            StepKind::Space => self.model.refit_k2(old_value, new_value, old_dx),
        }
        self.nt = new_nt;
        self.nx = new_nx;
        self.value = new_value;
        self.last_solve_work = self.mesh_cells(new_nt, new_nx);

        let (dt, dx) = self.steps(self.nt, self.nx);
        let fresh = self.model.bounds_around(new_value, dt, dx);
        // Successive bound sets are each individually valid; intersect to
        // shrink monotonically. If a bad early fit made them disjoint,
        // trust the finer solve.
        self.bounds = self.bounds.intersect(&fresh).unwrap_or(fresh);
        self.bounds
    }

    fn est_cpu(&self) -> Work {
        if self.converged() || self.capped {
            return 0;
        }
        let (nt, nx, _) = self.next_mesh();
        if self.cached(nt, nx).is_some() {
            1
        } else {
            self.mesh_cells(nt, nx)
        }
    }

    fn est_bounds(&self) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        let (dt, dx) = self.steps(self.nt, self.nx);
        let (_, _, kind) = self.next_mesh();
        let predicted_value = self.model.predicted_value(self.value, dt, dx, kind);
        let (new_dt, new_dx) = match kind {
            StepKind::Time => (dt / 2.0, dx),
            StepKind::Space => (dt, dx / 2.0),
        };
        let predicted = self.model.bounds_around(predicted_value, new_dt, new_dx);
        predicted.intersect(&self.bounds).unwrap_or(predicted)
    }

    fn standalone_cost(&self) -> Work {
        self.last_solve_work
    }

    fn cumulative_cost(&self) -> Work {
        self.cumulative
    }

    fn batch_shape(&self) -> Option<GridShape> {
        self.lane_shape()
    }

    fn as_batch_lane(&mut self) -> Option<&mut dyn BatchLane> {
        Some(self)
    }
}

impl<P: ParabolicPde> BatchLane for PdeResultObject<P> {
    fn lane_shape(&self) -> Option<GridShape> {
        if self.converged() || self.capped {
            return None;
        }
        let (nt, nx, _) = self.next_mesh();
        if !self.refinement_possible(nt, nx) || self.cached(nt, nx).is_some() {
            return None;
        }
        Some(GridShape { nt, nx })
    }

    fn lane_init(
        &self,
        shape: GridShape,
        sub: &mut [f64],
        diag: &mut [f64],
        sup: &mut [f64],
        state: &mut [f64],
        stride: usize,
        offset: usize,
    ) {
        // The band setup of `solve_on_mesh`, written strided. The planes
        // may hold another group's leftovers, so the convention entries the
        // scalar path leaves at their vec![0.0] initialization (`sub[0]`,
        // `sup[n-1]`) are written explicitly here.
        let n = shape.rows();
        let (x_lo, h, dt) = self.geometry(shape);
        let at = |i: usize| i * stride + offset;
        let x_at = |i: usize| x_lo + h * i as f64;
        for i in 1..n - 1 {
            let x = x_at(i);
            let a = self.problem.diffusion(x);
            let b = self.problem.drift(x);
            let r = self.problem.discount(x);
            let alpha = dt * a / (h * h);
            let beta = dt * b / (2.0 * h);
            sub[at(i)] = -(alpha - beta);
            diag[at(i)] = 1.0 + 2.0 * alpha + dt * r;
            sup[at(i)] = -(alpha + beta);
        }
        {
            // Lower boundary: no diffusion; inward (positive) drift
            // one-sided.
            let b = self.problem.drift(x_at(0)).max(0.0);
            let r = self.problem.discount(x_at(0));
            sub[at(0)] = 0.0;
            diag[at(0)] = 1.0 + dt * r + dt * b / h;
            sup[at(0)] = -dt * b / h;
            // Upper boundary: no diffusion; inward (negative) drift
            // one-sided.
            let b = (-self.problem.drift(x_at(n - 1))).max(0.0);
            let r = self.problem.discount(x_at(n - 1));
            sub[at(n - 1)] = -dt * b / h;
            diag[at(n - 1)] = 1.0 + dt * r + dt * b / h;
            sup[at(n - 1)] = 0.0;
        }
        for i in 0..n {
            state[at(i)] = self.problem.terminal(x_at(i));
        }
    }

    fn lane_rhs(
        &self,
        shape: GridShape,
        step: u32,
        state: &[f64],
        rhs: &mut [f64],
        stride: usize,
        offset: usize,
    ) {
        let n = shape.rows();
        let (x_lo, h, dt) = self.geometry(shape);
        let t = self.problem.horizon() - dt * f64::from(step);
        // `x_lo + h·i` is the identical expression behind the scalar
        // solver's precomputed `xs[i]`, so sources are evaluated at
        // bit-identical coordinates.
        for i in 0..n {
            let at = i * stride + offset;
            rhs[at] = state[at] + dt * self.problem.source(x_lo + h * i as f64, t);
        }
    }

    fn lane_commit(
        &mut self,
        shape: GridShape,
        state: &[f64],
        stride: usize,
        offset: usize,
        failure: Option<LaneFailure>,
        meter: &mut WorkMeter,
    ) -> Bounds {
        if self.converged() || self.capped {
            return self.bounds;
        }
        if failure.is_some() {
            // The scalar path's singular-solve handling: stop refining
            // rather than report bogus bounds, charging nothing.
            self.capped = true;
            return self.bounds;
        }
        let (nt, nx) = (shape.nt, shape.nx);

        // Interpolation at the query point, as in `solve_on_mesh`.
        let n = shape.rows();
        let (x_lo, h, _) = self.geometry(shape);
        let xq = self.problem.x_query();
        let pos = ((xq - x_lo) / h).clamp(0.0, (n - 1) as f64);
        let i0 = (pos.floor() as usize).min(n - 2);
        let frac = pos - i0 as f64;
        let new_value =
            state[i0 * stride + offset] * (1.0 - frac) + state[(i0 + 1) * stride + offset] * frac;

        // The post-solve bookkeeping of `iterate()`, charge for charge.
        let cells = self.mesh_cells(nt, nx);
        meter.charge_exec(cells);
        meter.charge_store_state(1);
        self.cumulative += cells;
        self.cache.push((nt, nx, new_value));
        meter.count_iteration();

        let old_value = self.value;
        let (old_dt, old_dx) = self.steps(self.nt, self.nx);
        if nt != self.nt {
            self.model.refit_k1(old_value, new_value, old_dt);
        } else {
            self.model.refit_k2(old_value, new_value, old_dx);
        }
        self.nt = nt;
        self.nx = nx;
        self.value = new_value;
        self.last_solve_work = cells;

        let (dt, dx) = self.steps(nt, nx);
        let fresh = self.model.bounds_around(new_value, dt, dx);
        self.bounds = self.bounds.intersect(&fresh).unwrap_or(fresh);
        self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pde::problem::DecayProblem;

    fn decay() -> DecayProblem {
        DecayProblem {
            rate: 0.05,
            coupon: 5.0,
            terminal_value: 0.0,
            horizon: 10.0,
        }
    }

    fn make(config: PdeVaoConfig) -> (PdeResultObject<DecayProblem>, WorkMeter) {
        let mut meter = WorkMeter::new();
        let obj = PdeResultObject::new(decay(), config, &mut meter).unwrap();
        (obj, meter)
    }

    #[test]
    fn initial_bounds_are_coarse_and_contain_truth() {
        let (obj, meter) = make(PdeVaoConfig::default());
        let exact = decay().exact();
        assert!(
            obj.bounds().contains(exact),
            "bounds {} vs exact {exact}",
            obj.bounds()
        );
        assert!(!obj.converged());
        // Trio of solves was charged: (4,8), (8,8), (4,16).
        assert_eq!(meter.breakdown().exec_iter, 4 * 9 + 8 * 9 + 4 * 17);
    }

    #[test]
    fn iteration_refines_until_convergence() {
        let (mut obj, mut meter) = make(PdeVaoConfig::default());
        let exact = decay().exact();
        let mut last_width = obj.bounds().width();
        let mut guard = 0;
        while !obj.converged() {
            let b = obj.iterate(&mut meter);
            assert!(b.width() <= last_width + 1e-12, "bounds must not widen");
            last_width = b.width();
            guard += 1;
            assert!(guard < 60, "failed to converge");
        }
        assert!(obj.bounds().width() < 0.01);
        let mid = obj.bounds().mid();
        assert!(
            (mid - exact).abs() < 0.02,
            "converged mid {mid} vs exact {exact}"
        );
    }

    #[test]
    fn bounds_track_truth_through_refinement() {
        // The decay problem has zero spatial error and smooth temporal
        // error, so the fitted model is accurate and bounds stay sound.
        let (mut obj, mut meter) = make(PdeVaoConfig::default());
        let exact = decay().exact();
        for _ in 0..8 {
            if obj.converged() {
                break;
            }
            let b = obj.iterate(&mut meter);
            assert!(
                b.contains(exact) || (b.mid() - exact).abs() < 0.01,
                "bounds {b} lost the exact value {exact}"
            );
        }
    }

    #[test]
    fn per_iteration_work_roughly_doubles() {
        let (mut obj, _) = make(PdeVaoConfig::default());
        let mut costs = Vec::new();
        for _ in 0..6 {
            if obj.converged() {
                break;
            }
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            if m.breakdown().exec_iter > 0 {
                costs.push(m.breakdown().exec_iter);
            }
        }
        assert!(costs.len() >= 3, "expected several charged iterations");
        for w in costs.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (1.5..=2.6).contains(&ratio),
                "cost should ~double: {costs:?}"
            );
        }
    }

    #[test]
    fn est_cpu_predicts_next_iteration_cost() {
        let (mut obj, _) = make(PdeVaoConfig::default());
        for _ in 0..4 {
            if obj.converged() {
                break;
            }
            let est = obj.est_cpu();
            let mut m = WorkMeter::new();
            obj.iterate(&mut m);
            let actual = m.breakdown().exec_iter;
            if actual > 0 && est > 1 {
                assert_eq!(est, actual, "estCPU must match a cache-missing solve");
            }
        }
    }

    #[test]
    fn est_bounds_are_a_reasonable_preview() {
        let (mut obj, mut meter) = make(PdeVaoConfig::default());
        // Skip cache-hit iterations (their est is trivial), then compare.
        for _ in 0..3 {
            obj.iterate(&mut meter);
        }
        if !obj.converged() {
            let est = obj.est_bounds();
            let actual = obj.iterate(&mut meter);
            // The prediction should at least narrow in the right ballpark:
            // within a factor of 4 of the realized width.
            if actual.width() > 0.0 && est.width() > 0.0 {
                let ratio = est.width() / actual.width();
                assert!(
                    (0.2..=5.0).contains(&ratio),
                    "est width {} vs actual {}",
                    est.width(),
                    actual.width()
                );
            }
        }
    }

    #[test]
    fn converged_object_stops_charging() {
        let (mut obj, mut meter) = make(PdeVaoConfig::default());
        let mut guard = 0;
        while !obj.converged() && guard < 60 {
            obj.iterate(&mut meter);
            guard += 1;
        }
        assert!(obj.converged());
        let before = meter.total();
        let b1 = obj.bounds();
        let b2 = obj.iterate(&mut meter);
        assert_eq!(b1, b2);
        assert_eq!(meter.total(), before);
        assert_eq!(obj.est_cpu(), 0);
        assert_eq!(obj.est_bounds(), b1);
    }

    #[test]
    fn mesh_cap_stalls_gracefully() {
        let config = PdeVaoConfig {
            min_width: 1e-12, // unreachable
            solver: SolverConfig { max_cells: 2000 },
            ..PdeVaoConfig::default()
        };
        let (mut obj, mut meter) = make(config);
        for _ in 0..40 {
            obj.iterate(&mut meter);
        }
        assert!(obj.capped());
        let before = meter.total();
        obj.iterate(&mut meter);
        assert_eq!(meter.total(), before, "capped object charges nothing");
    }

    #[test]
    fn standalone_cost_is_one_fine_solve() {
        let (mut obj, mut meter) = make(PdeVaoConfig::default());
        while !obj.converged() && !obj.capped() {
            obj.iterate(&mut meter);
        }
        assert!(obj.converged());
        let (nt, nx) = obj.mesh();
        assert_eq!(obj.standalone_cost(), u64::from(nt) * (u64::from(nx) + 1));
        // §4.1: the iterative path costs at most a small multiple of the
        // single fine solve (geometric doubling gives ~2x, plus the trio).
        assert!(obj.cumulative_cost() <= 4 * obj.standalone_cost());
    }

    #[test]
    fn trio_cache_hits_make_early_iterations_cheap() {
        // The first refinement halves a step whose half-size solution was
        // already computed by the construction trio: it must cost ~nothing.
        let (mut obj, _) = make(PdeVaoConfig::default());
        let mut m = WorkMeter::new();
        obj.iterate(&mut m);
        assert_eq!(
            m.breakdown().exec_iter,
            0,
            "first refinement is a cache hit"
        );
        assert_eq!(m.iterations(), 1);
    }
}
