//! Implicit finite-difference mesh solver (§4.1's "finite differencing").
//!
//! Works backwards from the terminal condition at `t = T` to `t = 0`,
//! exactly like the mesh of the paper's Figure 5. Each backward step solves
//! a tridiagonal system (implicit/backward-Euler time stepping: first-order
//! in time, unconditionally stable), with centered second-order spatial
//! differences — yielding the `O(Δt + Δx²)` error form the extrapolation
//! machinery of §4.1 assumes.
//!
//! The compute work is proportional to the number of mesh entries,
//! `n_t · (n_x + 1)`, which is what the solver charges.

use vao::cost::Work;

use crate::pde::problem::ParabolicPde;
use crate::tridiag::{ThomasSolver, TridiagError};

/// Configuration for the mesh solver.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Hard cap on mesh entries per solve — a defense against refinement
    /// loops requesting absurd meshes.
    pub max_cells: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self { max_cells: 1 << 28 }
    }
}

/// Outcome of one mesh solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeshSolution {
    /// `F(x_query, 0)` (linear interpolation between the two nearest mesh
    /// columns).
    pub value: f64,
    /// Mesh entries computed — the work charged for this solve.
    pub work: Work,
}

/// Failure modes of the mesh solver.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The problem definition failed validation.
    Problem(String),
    /// Mesh size was zero or exceeded the configured cap.
    BadMesh {
        /// Requested mesh entries.
        cells: u64,
        /// The configured cap.
        max: u64,
    },
    /// A time step's tridiagonal system was singular.
    Singular(TridiagError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Problem(msg) => write!(f, "invalid PDE problem: {msg}"),
            SolveError::BadMesh { cells, max } => {
                write!(f, "mesh of {cells} entries is empty or exceeds cap {max}")
            }
            SolveError::Singular(e) => write!(f, "singular time step: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the problem on an `n_x`-interval × `n_t`-step mesh.
///
/// Boundary treatment: diffusion is dropped at the two lateral boundaries
/// (far-field linearity, `F_xx ≈ 0`) and drift is discretized one-sided
/// *into* the domain; drift pointing out of the domain at a boundary is
/// dropped. Domains should therefore be set wide enough that the query
/// point is far from both boundaries — the bond model does this.
pub fn solve_on_mesh<P: ParabolicPde>(
    problem: &P,
    n_x: u32,
    n_t: u32,
    config: &SolverConfig,
) -> Result<MeshSolution, SolveError> {
    problem.validate().map_err(SolveError::Problem)?;
    if n_x < 2 || n_t < 1 {
        return Err(SolveError::BadMesh {
            cells: u64::from(n_t) * (u64::from(n_x) + 1),
            max: config.max_cells,
        });
    }
    let cells = u64::from(n_t) * (u64::from(n_x) + 1);
    if cells > config.max_cells {
        return Err(SolveError::BadMesh {
            cells,
            max: config.max_cells,
        });
    }

    let (x_lo, x_hi) = problem.domain();
    let horizon = problem.horizon();
    let n = n_x as usize + 1; // mesh columns
    let h = (x_hi - x_lo) / f64::from(n_x);
    let dt = horizon / f64::from(n_t);

    let xs: Vec<f64> = (0..n).map(|i| x_lo + h * i as f64).collect();

    // Coefficients are time-independent; precompute the tridiagonal bands.
    let mut sub = vec![0.0; n];
    let mut diag = vec![0.0; n];
    let mut sup = vec![0.0; n];
    for i in 1..n - 1 {
        let a = problem.diffusion(xs[i]);
        let b = problem.drift(xs[i]);
        let r = problem.discount(xs[i]);
        let alpha = dt * a / (h * h);
        let beta = dt * b / (2.0 * h);
        sub[i] = -(alpha - beta);
        diag[i] = 1.0 + 2.0 * alpha + dt * r;
        sup[i] = -(alpha + beta);
    }
    {
        // Lower boundary: no diffusion; inward (positive) drift one-sided.
        let b = problem.drift(xs[0]).max(0.0);
        let r = problem.discount(xs[0]);
        diag[0] = 1.0 + dt * r + dt * b / h;
        sup[0] = -dt * b / h;
        // Upper boundary: no diffusion; inward (negative) drift one-sided.
        let b = (-problem.drift(xs[n - 1])).max(0.0);
        let r = problem.discount(xs[n - 1]);
        diag[n - 1] = 1.0 + dt * r + dt * b / h;
        sub[n - 1] = -dt * b / h;
    }

    let mut g: Vec<f64> = xs.iter().map(|&x| problem.terminal(x)).collect();
    let mut rhs = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut thomas = ThomasSolver::new();

    for k in 1..=n_t {
        let t = horizon - dt * f64::from(k);
        for i in 0..n {
            rhs[i] = g[i] + dt * problem.source(xs[i], t);
        }
        thomas
            .solve(&sub, &diag, &sup, &rhs, &mut next)
            .map_err(SolveError::Singular)?;
        std::mem::swap(&mut g, &mut next);
    }

    // Linear interpolation at the query point.
    let xq = problem.x_query();
    let pos = ((xq - x_lo) / h).clamp(0.0, (n - 1) as f64);
    let i0 = (pos.floor() as usize).min(n - 2);
    let frac = pos - i0 as f64;
    let value = g[i0] * (1.0 - frac) + g[i0 + 1] * frac;

    Ok(MeshSolution { value, work: cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pde::problem::DecayProblem;

    fn decay() -> DecayProblem {
        DecayProblem {
            rate: 0.05,
            coupon: 5.0,
            terminal_value: 0.0,
            horizon: 10.0,
        }
    }

    #[test]
    fn converges_to_exact_decay_solution() {
        let p = decay();
        let exact = p.exact();
        let cfg = SolverConfig::default();
        let coarse = solve_on_mesh(&p, 4, 8, &cfg).unwrap();
        let fine = solve_on_mesh(&p, 4, 1024, &cfg).unwrap();
        let err_coarse = (coarse.value - exact).abs();
        let err_fine = (fine.value - exact).abs();
        assert!(err_fine < err_coarse / 50.0, "{err_fine} vs {err_coarse}");
        assert!(err_fine < 1e-2);
    }

    #[test]
    fn temporal_error_is_first_order() {
        // Halving Δt should roughly halve the error for the decay problem
        // (whose spatial error is exactly zero).
        let p = decay();
        let exact = p.exact();
        let cfg = SolverConfig::default();
        let e1 = (solve_on_mesh(&p, 4, 64, &cfg).unwrap().value - exact).abs();
        let e2 = (solve_on_mesh(&p, 4, 128, &cfg).unwrap().value - exact).abs();
        let ratio = e1 / e2;
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn work_equals_mesh_entries() {
        let p = decay();
        let cfg = SolverConfig::default();
        let s = solve_on_mesh(&p, 8, 16, &cfg).unwrap();
        assert_eq!(s.work, 16 * 9);
    }

    #[test]
    fn spatial_error_second_order_with_diffusion() {
        // Heat-like problem with a curved terminal condition so the spatial
        // error is exercised: F_t + a F_xx = 0 backwards, terminal sin(pi x)
        // on [0,1] — exact solution e^{-a pi^2 T} sin(pi x_q) if boundaries
        // were absorbing; our far-field boundaries differ, so instead test
        // mesh convergence against a very fine reference.
        struct Heat;
        impl ParabolicPde for Heat {
            fn domain(&self) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn horizon(&self) -> f64 {
                0.5
            }
            fn diffusion(&self, _: f64) -> f64 {
                0.05
            }
            fn drift(&self, _: f64) -> f64 {
                0.0
            }
            fn discount(&self, _: f64) -> f64 {
                0.0
            }
            fn source(&self, _: f64, _: f64) -> f64 {
                0.0
            }
            fn terminal(&self, x: f64) -> f64 {
                (std::f64::consts::PI * x).sin()
            }
            fn x_query(&self) -> f64 {
                0.5
            }
        }
        let cfg = SolverConfig::default();
        let reference = solve_on_mesh(&Heat, 512, 4096, &cfg).unwrap().value;
        let e1 = (solve_on_mesh(&Heat, 8, 4096, &cfg).unwrap().value - reference).abs();
        let e2 = (solve_on_mesh(&Heat, 16, 4096, &cfg).unwrap().value - reference).abs();
        let ratio = e1 / e2;
        assert!(ratio > 3.0, "halving Δx should cut error ~4x, got {ratio}");
    }

    #[test]
    fn rejects_degenerate_meshes() {
        let p = decay();
        let cfg = SolverConfig::default();
        assert!(matches!(
            solve_on_mesh(&p, 1, 8, &cfg),
            Err(SolveError::BadMesh { .. })
        ));
        assert!(matches!(
            solve_on_mesh(&p, 8, 0, &cfg),
            Err(SolveError::BadMesh { .. })
        ));
    }

    #[test]
    fn enforces_cell_cap() {
        let p = decay();
        let cfg = SolverConfig { max_cells: 100 };
        assert!(matches!(
            solve_on_mesh(&p, 64, 64, &cfg),
            Err(SolveError::BadMesh { cells, max: 100 }) if cells == 64 * 65
        ));
    }

    #[test]
    fn query_interpolation_between_nodes() {
        // Terminal condition linear in x with no dynamics: solution stays
        // linear, so interpolation at any query point is exact.
        struct Linear {
            xq: f64,
        }
        impl ParabolicPde for Linear {
            fn domain(&self) -> (f64, f64) {
                (0.0, 2.0)
            }
            fn horizon(&self) -> f64 {
                1.0
            }
            fn diffusion(&self, _: f64) -> f64 {
                0.0
            }
            fn drift(&self, _: f64) -> f64 {
                0.0
            }
            fn discount(&self, _: f64) -> f64 {
                0.0
            }
            fn source(&self, _: f64, _: f64) -> f64 {
                0.0
            }
            fn terminal(&self, x: f64) -> f64 {
                3.0 * x + 1.0
            }
            fn x_query(&self) -> f64 {
                self.xq
            }
        }
        let cfg = SolverConfig::default();
        for xq in [0.0, 0.31, 1.0, 1.77, 2.0] {
            let s = solve_on_mesh(&Linear { xq }, 10, 4, &cfg).unwrap();
            assert!(
                (s.value - (3.0 * xq + 1.0)).abs() < 1e-9,
                "xq {xq}: {}",
                s.value
            );
        }
    }
}
