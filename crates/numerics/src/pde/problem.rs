//! Problem definition for parabolic PDEs.

/// A parabolic PDE terminal-value problem
/// `a(x)·F_xx + b(x)·F_x + F_t − r(x)·F + c(x,t) = 0` on
/// `x ∈ [x_min, x_max]`, `t ∈ [0, T]`, with `F(x, T)` given, queried at
/// `F(x_query, 0)`.
///
/// This is the shape of the paper's Figure-4 bond PDE, where `x` is the
/// short interest rate and `t` runs from now (0) to the bond's maturity
/// (`T`): diffusion `a = σ²/2`, drift `b = κμ − (κ+q)x`, discounting
/// `r(x)`, and a coupon-payment source term `c`.
pub trait ParabolicPde {
    /// Spatial domain `[x_min, x_max]`. Must satisfy `x_min < x_max`.
    fn domain(&self) -> (f64, f64);

    /// Terminal time `T > 0` (e.g. years to maturity).
    fn horizon(&self) -> f64;

    /// Diffusion coefficient `a(x) ≥ 0` multiplying `F_xx`.
    fn diffusion(&self, x: f64) -> f64;

    /// Drift coefficient `b(x)` multiplying `F_x`.
    fn drift(&self, x: f64) -> f64;

    /// Discount rate `r(x)` multiplying `−F`.
    fn discount(&self, x: f64) -> f64;

    /// Source term `c(x, t)` (e.g. continuous coupon flow).
    fn source(&self, x: f64, t: f64) -> f64;

    /// Terminal condition `F(x, T)`.
    fn terminal(&self, x: f64) -> f64;

    /// The spatial point at which the solution is wanted (must lie in the
    /// domain).
    fn x_query(&self) -> f64;

    /// Validates the basic geometry. Implementations get this for free;
    /// solvers call it once before meshing.
    fn validate(&self) -> Result<(), String> {
        let (lo, hi) = self.domain();
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("invalid domain [{lo}, {hi}]"));
        }
        let t = self.horizon();
        if !(t.is_finite() && t > 0.0) {
            return Err(format!("invalid horizon {t}"));
        }
        let q = self.x_query();
        if !(q >= lo && q <= hi) {
            return Err(format!("query point {q} outside domain [{lo}, {hi}]"));
        }
        Ok(())
    }
}

/// A self-contained test problem with a known closed-form solution:
/// the pure-decay equation `F_t − r·F + c = 0` (no diffusion, no drift),
/// whose solution is
/// `F(x, t) = (terminal + c/r)·e^{−r(T−t)} − c/r + ... ` — concretely, with
/// constant coefficients, `F(x, 0) = terminal·e^{−rT} + (c/r)(1 − e^{−rT})`.
///
/// Because the solution is independent of `x` and smooth in `t`, the mesh
/// solver's spatial error is exactly zero and its temporal error is `O(Δt)`
/// — a sharp probe for both the solver and the error model.
#[derive(Clone, Copy, Debug)]
pub struct DecayProblem {
    /// Discount rate `r > 0`.
    pub rate: f64,
    /// Constant source `c`.
    pub coupon: f64,
    /// Terminal value `F(x, T)`.
    pub terminal_value: f64,
    /// Horizon `T`.
    pub horizon: f64,
}

impl DecayProblem {
    /// The exact value `F(x_query, 0)`.
    #[must_use]
    pub fn exact(&self) -> f64 {
        let decay = (-self.rate * self.horizon).exp();
        self.terminal_value * decay + (self.coupon / self.rate) * (1.0 - decay)
    }
}

impl ParabolicPde for DecayProblem {
    fn domain(&self) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn horizon(&self) -> f64 {
        self.horizon
    }

    fn diffusion(&self, _x: f64) -> f64 {
        0.0
    }

    fn drift(&self, _x: f64) -> f64 {
        0.0
    }

    fn discount(&self, _x: f64) -> f64 {
        self.rate
    }

    fn source(&self, _x: f64, _t: f64) -> f64 {
        self.coupon
    }

    fn terminal(&self, _x: f64) -> f64 {
        self.terminal_value
    }

    fn x_query(&self) -> f64 {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_problem_exact_value() {
        // r=0.05, c=5, terminal=0, T=10: F = 100*(1 - e^{-0.5}).
        let p = DecayProblem {
            rate: 0.05,
            coupon: 5.0,
            terminal_value: 0.0,
            horizon: 10.0,
        };
        let expected = 100.0 * (1.0 - (-0.5f64).exp());
        assert!((p.exact() - expected).abs() < 1e-12);
    }

    #[test]
    fn decay_problem_validates() {
        let p = DecayProblem {
            rate: 0.05,
            coupon: 5.0,
            terminal_value: 0.0,
            horizon: 10.0,
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_geometry() {
        struct Bad;
        impl ParabolicPde for Bad {
            fn domain(&self) -> (f64, f64) {
                (1.0, 0.0)
            }
            fn horizon(&self) -> f64 {
                1.0
            }
            fn diffusion(&self, _: f64) -> f64 {
                0.0
            }
            fn drift(&self, _: f64) -> f64 {
                0.0
            }
            fn discount(&self, _: f64) -> f64 {
                0.0
            }
            fn source(&self, _: f64, _: f64) -> f64 {
                0.0
            }
            fn terminal(&self, _: f64) -> f64 {
                0.0
            }
            fn x_query(&self) -> f64 {
                0.5
            }
        }
        assert!(Bad.validate().is_err());

        struct BadQuery;
        impl ParabolicPde for BadQuery {
            fn domain(&self) -> (f64, f64) {
                (0.0, 1.0)
            }
            fn horizon(&self) -> f64 {
                1.0
            }
            fn diffusion(&self, _: f64) -> f64 {
                0.0
            }
            fn drift(&self, _: f64) -> f64 {
                0.0
            }
            fn discount(&self, _: f64) -> f64 {
                0.0
            }
            fn source(&self, _: f64, _: f64) -> f64 {
                0.0
            }
            fn terminal(&self, _: f64) -> f64 {
                0.0
            }
            fn x_query(&self) -> f64 {
                2.0
            }
        }
        assert!(BadQuery.validate().is_err());
    }
}
