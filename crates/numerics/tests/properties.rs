//! Property-based tests for the numerical substrate.

use proptest::prelude::*;

use va_numerics::integrate::{
    composite_simpson, composite_trapezoid, QuadratureResultObject, QuadratureRule,
    QuadratureVaoConfig, TrapezoidLadder,
};
use va_numerics::pde::problem::DecayProblem;
use va_numerics::pde::{solve_on_mesh, SolverConfig};
use va_numerics::roots::{bisect, RootResultObject, RootVaoConfig};
use va_numerics::tridiag::solve_tridiagonal;
use vao::cost::WorkMeter;
use vao::interface::ResultObject;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tridiagonal_solutions_satisfy_their_systems(
        n in 2usize..40,
        seed in 0u64..10_000,
    ) {
        // Deterministic diagonally dominant system from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let sub: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let sup: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| 1.5 + sub[i].abs() + sup[i].abs() + rnd().abs())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 10.0).collect();
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        for i in 0..n {
            let mut lhs = diag[i] * x[i];
            if i > 0 {
                lhs += sub[i] * x[i - 1];
            }
            if i + 1 < n {
                lhs += sup[i] * x[i + 1];
            }
            prop_assert!((lhs - rhs[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", rhs[i]);
        }
    }

    #[test]
    fn trapezoid_and_simpson_integrate_cubics_exactly_enough(
        a3 in -2.0f64..2.0, a2 in -2.0f64..2.0,
        a1 in -2.0f64..2.0, a0 in -2.0f64..2.0,
        span in 0.5f64..3.0,
    ) {
        let f = move |x: f64| a3 * x * x * x + a2 * x * x + a1 * x + a0;
        let integral = |x: f64| a3 * x.powi(4) / 4.0 + a2 * x.powi(3) / 3.0 + a1 * x * x / 2.0 + a0 * x;
        let exact = integral(span) - integral(0.0);
        // Simpson is exact for cubics at any even n.
        let s = composite_simpson(&f, 0.0, span, 4);
        prop_assert!((s - exact).abs() < 1e-9, "simpson {s} vs {exact}");
        // Trapezoid converges at second order: n=256 is plenty here.
        let t = composite_trapezoid(&f, 0.0, span, 256);
        prop_assert!((t - exact).abs() < 1e-3 * (1.0 + exact.abs()), "trap {t} vs {exact}");
    }

    #[test]
    fn ladder_always_matches_direct_composite(
        freq in 0.5f64..5.0,
        span in 0.5f64..3.0,
        levels in 1u32..8,
    ) {
        let f = move |x: f64| (freq * x).sin() + 0.3 * x;
        let mut ladder = TrapezoidLadder::new(f, 0.0, span);
        for _ in 0..levels {
            ladder.advance();
        }
        let direct = composite_trapezoid(&f, 0.0, span, 1 << levels);
        prop_assert!((ladder.estimate() - direct).abs() < 1e-10);
    }

    #[test]
    fn quadrature_object_bounds_contain_smooth_integrals(
        freq in 0.5f64..4.0,
        scale in 0.5f64..3.0,
    ) {
        // ∫₀^1 scale·cos(freq·x) dx = scale·sin(freq)/freq.
        let exact = scale * freq.sin() / freq;
        let mut meter = WorkMeter::new();
        let mut obj = QuadratureResultObject::new(
            move |x: f64| scale * (freq * x).cos(),
            0.0,
            1.0,
            QuadratureVaoConfig {
                rule: QuadratureRule::Trapezoid,
                min_width: 1e-9,
                ..QuadratureVaoConfig::default()
            },
            &mut meter,
        );
        let mut guard = 0;
        while !obj.converged() && guard < 40 {
            let b = obj.iterate(&mut meter);
            prop_assert!(b.contains(exact), "bounds {b} vs exact {exact}");
            guard += 1;
        }
        prop_assert!((obj.estimate() - exact).abs() < 1e-8);
    }

    #[test]
    fn bisection_bracket_always_contains_a_sign_change(
        root in -5.0f64..5.0,
        slope in 0.2f64..4.0,
        cubic in 0.0f64..0.5,
    ) {
        // Strictly increasing cubic with a known root.
        let f = move |x: f64| slope * (x - root) + cubic * (x - root).powi(3);
        let ((lo, hi), _) = bisect(&f, root - 7.0, root + 9.0, 1e-9, 200).unwrap();
        prop_assert!(lo <= root + 1e-9 && root - 1e-9 <= hi, "[{lo}, {hi}] vs {root}");
        prop_assert!(hi - lo <= 1e-9 + 1e-12);
    }

    #[test]
    fn root_object_soundness_under_any_iteration_count(
        root in -3.0f64..3.0,
        iterations in 0usize..30,
    ) {
        let f = move |x: f64| (x - root).tanh();
        let mut meter = WorkMeter::new();
        let mut obj = RootResultObject::new(
            f,
            root - 4.0,
            root + 5.0,
            RootVaoConfig {
                min_width: 1e-12,
                ..RootVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        for _ in 0..iterations {
            obj.iterate(&mut meter);
        }
        prop_assert!(obj.bounds().contains(root));
    }

    #[test]
    fn pde_decay_solver_is_monotone_in_resolution(
        rate in 0.01f64..0.15,
        coupon in 1.0f64..10.0,
        horizon in 2.0f64..25.0,
    ) {
        let p = DecayProblem {
            rate,
            coupon,
            terminal_value: 0.0,
            horizon,
        };
        let exact = p.exact();
        let cfg = SolverConfig::default();
        let coarse = solve_on_mesh(&p, 4, 8, &cfg).unwrap().value;
        let fine = solve_on_mesh(&p, 4, 512, &cfg).unwrap().value;
        prop_assert!(
            (fine - exact).abs() <= (coarse - exact).abs() + 1e-12,
            "fine {fine} coarse {coarse} exact {exact}"
        );
        prop_assert!((fine - exact).abs() < 0.05 * (1.0 + exact.abs()));
    }
}
