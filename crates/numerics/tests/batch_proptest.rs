//! Property tests for the lane-parallel batched Thomas solver.
//!
//! The batched kernel's whole contract is *bit-identity per lane*: for any
//! shape, any coefficients, and any scattering of singular lanes, solving K
//! systems as lanes of one [`BatchThomasSolver`] sweep must be
//! indistinguishable from K independent [`solve_tridiagonal`] calls —
//! same solution bits, same `ZeroPivot` rows, and no cross-lane leakage
//! from a failed lane into its siblings.

use proptest::prelude::*;

use va_numerics::tridiag::{solve_tridiagonal, BatchThomasSolver, TridiagBatch};

/// One lane's `(sub, diag, sup, rhs)` coefficients, kept for the scalar
/// reference solve.
type System = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

/// Deterministic xorshift stream in roughly [-0.5, 0.5).
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

/// Rewrites `diag[r]` so forward elimination cancels to exactly 0.0 at row
/// `r`, using the solver's own recurrence (same operations, same order) so
/// the cancellation is bitwise exact.
fn plant_zero_pivot(sub: &[f64], diag: &mut [f64], sup: &[f64], r: usize) {
    if r == 0 {
        diag[0] = 0.0;
        return;
    }
    let mut c = sup[0] / diag[0];
    for i in 1..r {
        let denom = diag[i] - sub[i] * c;
        c = sup[i] / denom;
    }
    diag[r] = sub[r] * c;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_solve_is_bitwise_the_scalar_solve_per_lane(
        rows in 1usize..24,
        lanes in 1usize..9,
        seed in 0u64..100_000,
        // Bit l (mod 5) decides whether lane l gets a planted zero pivot,
        // so cases range from all-healthy to all-singular batches.
        zero_mask in 0u32..32,
    ) {
        let mut rnd = rng(seed);
        let mut batch = TridiagBatch::new(rows, lanes);
        let mut systems: Vec<System> = Vec::new();
        for l in 0..lanes {
            let sub: Vec<f64> = (0..rows).map(|_| rnd()).collect();
            let sup: Vec<f64> = (0..rows).map(|_| rnd()).collect();
            let mut diag: Vec<f64> = (0..rows)
                .map(|i| 1.5 + sub[i].abs() + sup[i].abs() + rnd().abs())
                .collect();
            let rhs: Vec<f64> = (0..rows).map(|_| rnd() * 10.0).collect();
            if (zero_mask >> (l % 5)) & 1 == 1 {
                plant_zero_pivot(&sub, &mut diag, &sup, (seed as usize + l) % rows);
            }
            batch.set_lane(l, &sub, &diag, &sup, &rhs);
            systems.push((sub, diag, sup, rhs));
        }

        let mut x = vec![0.0; rows * lanes];
        let mut status = vec![Ok(()); lanes];
        let mut solver = BatchThomasSolver::new();
        solver.solve(&batch, &mut x, &mut status).expect("well-shaped outputs");

        for (l, (sub, diag, sup, rhs)) in systems.iter().enumerate() {
            match solve_tridiagonal(sub, diag, sup, rhs) {
                Ok(xs) => {
                    prop_assert_eq!(status[l], Ok(()), "lane {} healthy", l);
                    for i in 0..rows {
                        prop_assert_eq!(
                            xs[i].to_bits(),
                            x[i * lanes + l].to_bits(),
                            "lane {} row {}", l, i
                        );
                    }
                }
                // A singular lane reports the scalar solver's exact error —
                // and, per the Ok arm above, never perturbs its siblings.
                Err(e) => prop_assert_eq!(status[l], Err(e), "lane {} singular", l),
            }
        }
    }
}
