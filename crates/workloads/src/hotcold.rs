//! The hot–cold weighting scheme for SUM queries (§6.3).
//!
//! "With this scheme, we set a constant total amount of weight, and
//! partition the bonds into a hot and a cold set. ... the hot set includes
//! 10% of the total bonds chosen randomly ... we vary the amount of total
//! weight that is allocated to the bonds in the hot set." The paper's
//! total weight is 500 (the bond-set cardinality), giving the precision
//! constraint ε = 500 · \$0.01 = \$5.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A hot–cold weight assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct HotColdWeights {
    weights: Vec<f64>,
    hot: Vec<usize>,
}

impl HotColdWeights {
    /// Generates weights for `n` bonds: a random `hot_fraction` of bonds
    /// shares `hot_share` of `total_weight` equally; the rest share the
    /// remainder equally.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions or a non-positive total.
    #[must_use]
    pub fn generate(
        n: usize,
        hot_fraction: f64,
        hot_share: f64,
        total_weight: f64,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one bond");
        assert!(
            (0.0..=1.0).contains(&hot_fraction) && (0.0..=1.0).contains(&hot_share),
            "fractions must lie in [0, 1]"
        );
        assert!(
            total_weight.is_finite() && total_weight > 0.0,
            "total weight must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let hot_count = ((n as f64 * hot_fraction).round() as usize).min(n);
        let mut hot: Vec<usize> = indices[..hot_count].to_vec();
        hot.sort_unstable();

        let mut weights = vec![0.0; n];
        let cold_count = n - hot_count;
        let hot_each = if hot_count > 0 {
            total_weight * hot_share / hot_count as f64
        } else {
            0.0
        };
        let cold_each = if cold_count > 0 {
            total_weight * (1.0 - hot_share) / cold_count as f64
        } else {
            0.0
        };
        let mut is_hot = vec![false; n];
        for &i in &hot {
            is_hot[i] = true;
        }
        for (i, w) in weights.iter_mut().enumerate() {
            *w = if is_hot[i] { hot_each } else { cold_each };
        }
        Self { weights, hot }
    }

    /// The paper's configuration: 10 % hot set, total weight = n.
    #[must_use]
    pub fn paper_scheme(n: usize, hot_share: f64, seed: u64) -> Self {
        Self::generate(n, 0.10, hot_share, n as f64, seed)
    }

    /// The per-bond weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Indices of hot bonds (sorted).
    #[must_use]
    pub fn hot_indices(&self) -> &[usize] {
        &self.hot
    }

    /// Total weight (should equal the configured total up to rounding).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_preserves_total_and_hot_count() {
        let w = HotColdWeights::paper_scheme(500, 0.9, 3);
        assert_eq!(w.weights().len(), 500);
        assert_eq!(w.hot_indices().len(), 50);
        assert!((w.total() - 500.0).abs() < 1e-9);
        // 90% of the weight on 50 bonds: each hot bond carries 9.0.
        for &i in w.hot_indices() {
            assert!((w.weights()[i] - 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cold_bonds_share_the_remainder() {
        let w = HotColdWeights::paper_scheme(500, 0.9, 3);
        let hot: std::collections::BTreeSet<usize> = w.hot_indices().iter().copied().collect();
        let cold_each = 500.0 * 0.1 / 450.0;
        for i in 0..500 {
            if !hot.contains(&i) {
                assert!((w.weights()[i] - cold_each).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn uniform_when_hot_share_matches_fraction() {
        // 10% of bonds with 10% of the weight: everyone gets 1.0.
        let w = HotColdWeights::paper_scheme(100, 0.10, 5);
        for &x in w.weights() {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn extreme_hot_share_starves_cold_bonds() {
        let w = HotColdWeights::paper_scheme(100, 1.0, 5);
        let hot: std::collections::BTreeSet<usize> = w.hot_indices().iter().copied().collect();
        for i in 0..100 {
            if hot.contains(&i) {
                assert!((w.weights()[i] - 10.0).abs() < 1e-12);
            } else {
                assert_eq!(w.weights()[i], 0.0);
            }
        }
    }

    #[test]
    fn hot_selection_is_random_but_deterministic() {
        let a = HotColdWeights::paper_scheme(500, 0.5, 1);
        let b = HotColdWeights::paper_scheme(500, 0.5, 1);
        let c = HotColdWeights::paper_scheme(500, 0.5, 2);
        assert_eq!(a, b);
        assert_ne!(a.hot_indices(), c.hot_indices());
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn rejects_bad_fraction() {
        let _ = HotColdWeights::generate(10, 1.5, 0.5, 10.0, 0);
    }
}
