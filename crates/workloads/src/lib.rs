//! # va-workloads — workload generators for the VAO experiments (§6)
//!
//! The paper evaluates VAOs on real market data and on synthetic data sets
//! "explicitly designed to stress VAOs". This crate builds both:
//!
//! * [`distributions`] — the target result distributions: Gaussians
//!   centered on a selection constant (Figure 10), lower-half Gaussians
//!   clustering bonds below a maximum (Figure 11), and the σ = 0
//!   pathological cases.
//! * [`synthetic`] — the paper's *shift* technique: converge each real
//!   bond once, generate target values, randomly map targets to bonds, and
//!   run every experiment on shift-wrapped result objects that cost exactly
//!   what the real bonds cost while converging to the synthetic values.
//! * [`hotcold`] — the §6.3 hot–cold weighting scheme for SUM queries:
//!   a random 10 % hot set carrying a configurable share of a fixed total
//!   weight.
//! * [`selectivity`] — selection constants hitting target selectivities
//!   against a set of converged prices (Figures 8–9 sweep selectivity from
//!   low to high).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod distributions;
pub mod hotcold;
pub mod selectivity;
pub mod synthetic;

pub use distributions::TargetDistribution;
pub use hotcold::HotColdWeights;
pub use selectivity::constant_for_selectivity;
pub use synthetic::SyntheticMapping;
