//! Target result distributions for the synthetic stress experiments.

use rand::Rng;

/// A distribution of synthetic bond-model results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TargetDistribution {
    /// Gaussian — §6.1's selection stress: "The mean of these distributions
    /// was set to the VAO constant, while we varied the standard deviation
    /// to control the distance of the results to the constant."
    Gaussian {
        /// Distribution mean (set to the selection constant).
        mean: f64,
        /// Standard deviation in dollars; 0 is the pathological case.
        std_dev: f64,
    },
    /// Lower-half Gaussian — §6.2's MAX stress: "we again generated bond
    /// model results from a Gaussian distribution, but we only took prices
    /// from the lower half", clustering results under the maximum.
    LowerHalfGaussian {
        /// The distribution's center, which is also the supremum of
        /// generated values.
        max: f64,
        /// Standard deviation of the underlying Gaussian.
        std_dev: f64,
    },
}

impl TargetDistribution {
    /// Draws one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            TargetDistribution::Gaussian { mean, std_dev } => mean + std_dev * standard_normal(rng),
            TargetDistribution::LowerHalfGaussian { max, std_dev } => {
                max - std_dev * standard_normal(rng).abs()
            }
        }
    }

    /// Draws `n` values.
    pub fn sample_n<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A standard-normal draw via Box–Muller (keeps us on the approved `rand`
/// crate without the `rand_distr` add-on).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_and_std(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, v.sqrt())
    }

    #[test]
    fn gaussian_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = TargetDistribution::Gaussian {
            mean: 100.0,
            std_dev: 2.0,
        };
        let xs = d.sample_n(20_000, &mut rng);
        let (m, s) = mean_and_std(&xs);
        assert!((m - 100.0).abs() < 0.05, "mean {m}");
        assert!((s - 2.0).abs() < 0.05, "std {s}");
    }

    #[test]
    fn zero_std_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = TargetDistribution::Gaussian {
            mean: 100.0,
            std_dev: 0.0,
        };
        for x in d.sample_n(100, &mut rng) {
            assert_eq!(x, 100.0);
        }
        let d = TargetDistribution::LowerHalfGaussian {
            max: 100.0,
            std_dev: 0.0,
        };
        for x in d.sample_n(100, &mut rng) {
            assert_eq!(x, 100.0);
        }
    }

    #[test]
    fn lower_half_never_exceeds_max() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = TargetDistribution::LowerHalfGaussian {
            max: 105.0,
            std_dev: 1.5,
        };
        let xs = d.sample_n(20_000, &mut rng);
        for &x in &xs {
            assert!(x <= 105.0);
        }
        // Half-normal mean is max - σ·sqrt(2/π).
        let (m, _) = mean_and_std(&xs);
        let expected = 105.0 - 1.5 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((m - expected).abs() < 0.05, "mean {m} vs {expected}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = TargetDistribution::Gaussian {
            mean: 0.0,
            std_dev: 1.0,
        };
        let a = d.sample_n(10, &mut StdRng::seed_from_u64(9));
        let b = d.sample_n(10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
