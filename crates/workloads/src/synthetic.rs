//! The shift technique for synthetic result distributions (§6).
//!
//! "First, we iterated over each bond in our real data set until we knew
//! the result for each bond within \$.01. We then used a random number
//! generator to generate a distribution of bond model results ... We then
//! create a random one-to-one mapping between the generated bond results
//! and the real bonds, and compute the difference between each generated
//! result and corresponding result from the model. When executing an
//! iteration over a synthetic bond, we run the iteration over the
//! corresponding real bond, and then shift the resulting bounds by the
//! computed difference."
//!
//! [`SyntheticMapping`] computes those per-bond deltas; wrapping a real
//! bond's result object in [`vao::adapters::Shifted`] with its delta gives
//! a synthetic bond whose refinements cost exactly what the real bond's
//! do while converging to the target distribution.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use vao::adapters::Shifted;
use vao::interface::ResultObject;

use crate::distributions::TargetDistribution;

/// Per-bond shift deltas mapping real converged values onto a target
/// distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticMapping {
    deltas: Vec<f64>,
}

impl SyntheticMapping {
    /// Builds the mapping: samples one target per real value, randomly
    /// assigns targets to bonds (the paper's one-to-one mapping), and
    /// stores `delta[i] = target − real[i]`.
    #[must_use]
    pub fn generate(real_values: &[f64], distribution: TargetDistribution, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut targets = distribution.sample_n(real_values.len(), &mut rng);
        targets.shuffle(&mut rng);
        let deltas = real_values
            .iter()
            .zip(&targets)
            .map(|(&real, &target)| target - real)
            .collect();
        Self { deltas }
    }

    /// A mapping with explicit deltas (for tests).
    #[must_use]
    pub fn from_deltas(deltas: Vec<f64>) -> Self {
        Self { deltas }
    }

    /// The per-bond deltas.
    #[must_use]
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Number of bonds covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the mapping is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Wraps bond `i`'s result object so it converges to the synthetic
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn wrap<R: ResultObject>(&self, i: usize, obj: R) -> Shifted<R> {
        Shifted::new(obj, self.deltas[i])
    }

    /// The synthetic converged value bond `i` will reach, given its real
    /// converged value.
    #[must_use]
    pub fn synthetic_value(&self, i: usize, real_value: f64) -> f64 {
        real_value + self.deltas[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::cost::WorkMeter;
    use vao::testkit::ScriptedObject;

    #[test]
    fn deltas_map_real_onto_targets() {
        let real = vec![95.0, 105.0, 100.0];
        let m = SyntheticMapping::generate(
            &real,
            TargetDistribution::Gaussian {
                mean: 100.0,
                std_dev: 0.0,
            },
            7,
        );
        // Degenerate target: every synthetic value is exactly 100.
        for (i, &r) in real.iter().enumerate() {
            assert!((m.synthetic_value(i, r) - 100.0).abs() < 1e-12);
        }
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let real = vec![1.0, 2.0, 3.0, 4.0];
        let d = TargetDistribution::Gaussian {
            mean: 0.0,
            std_dev: 5.0,
        };
        assert_eq!(
            SyntheticMapping::generate(&real, d, 42),
            SyntheticMapping::generate(&real, d, 42)
        );
        assert_ne!(
            SyntheticMapping::generate(&real, d, 42),
            SyntheticMapping::generate(&real, d, 43)
        );
    }

    #[test]
    fn wrapped_objects_cost_like_the_real_ones() {
        let m = SyntheticMapping::from_deltas(vec![-3.0]);
        let real = ScriptedObject::converging(&[(99.0, 109.0), (102.0, 102.005)], 77, 0.01);
        let mut synth = m.wrap(0, real);
        let mut meter = WorkMeter::new();
        let b = synth.iterate(&mut meter);
        // Converges to the shifted value at the real cost.
        assert!((b.lo() - 99.0).abs() < 1e-12);
        assert_eq!(meter.breakdown().exec_iter, 77);
    }

    #[test]
    fn target_distribution_is_preserved_in_aggregate() {
        // Real values spread widely; synthetic values must follow the
        // requested Gaussian regardless.
        let real: Vec<f64> = (0..5000).map(|i| 80.0 + (i % 40) as f64).collect();
        let m = SyntheticMapping::generate(
            &real,
            TargetDistribution::Gaussian {
                mean: 100.0,
                std_dev: 0.5,
            },
            11,
        );
        let synth: Vec<f64> = real
            .iter()
            .enumerate()
            .map(|(i, &r)| m.synthetic_value(i, r))
            .collect();
        let n = synth.len() as f64;
        let mean = synth.iter().sum::<f64>() / n;
        let std = (synth.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt();
        assert!((mean - 100.0).abs() < 0.05, "mean {mean}");
        assert!((std - 0.5).abs() < 0.05, "std {std}");
    }
}
