//! Selection constants hitting target selectivities (§6.1).
//!
//! Figures 8 and 9 sweep the selection constant so the predicate passes a
//! chosen fraction of the bonds. Given the converged model values, the
//! constant for selectivity `s` under `value > c` is placed *between* the
//! order statistics straddling the cut, so no bond sits exactly on the
//! constant (the real-data experiments measure selectivity effects, not
//! boundary effects — those are Figure 10's job).

use vao::ops::selection::CmpOp;

/// Returns a constant `c` such that approximately `selectivity · n` of
/// `values` satisfy `value ⟨op⟩ c`.
///
/// # Panics
///
/// Panics if `values` is empty or `selectivity` is outside `[0, 1]`.
#[must_use]
pub fn constant_for_selectivity(values: &[f64], op: CmpOp, selectivity: f64) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!(
        (0.0..=1.0).contains(&selectivity),
        "selectivity {selectivity} outside [0, 1]"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let n = sorted.len();
    // Number of values that should satisfy the predicate.
    let k = (selectivity * n as f64).round() as usize;

    let below = |i: usize| -> f64 {
        // A constant strictly between sorted[i-1] and sorted[i]; clamps at
        // the extremes by stepping beyond the data range.
        if i == 0 {
            sorted[0] - 1.0
        } else if i == n {
            sorted[n - 1] + 1.0
        } else {
            0.5 * (sorted[i - 1] + sorted[i])
        }
    };

    match op {
        // value > c or >= c: the k largest pass — place c below sorted[n-k].
        CmpOp::Gt | CmpOp::Ge => below(n - k),
        // value < c or <= c: the k smallest pass — place c above sorted[k-1].
        CmpOp::Lt | CmpOp::Le => below(k),
    }
}

/// Measures the selectivity a constant actually achieves on `values`.
#[must_use]
pub fn measured_selectivity(values: &[f64], op: CmpOp, constant: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let hits = values.iter().filter(|&&v| op.eval(v, constant)).count();
    hits as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values() -> Vec<f64> {
        // 10 distinct prices.
        vec![
            90.0, 92.0, 94.0, 96.0, 98.0, 100.0, 102.0, 104.0, 106.0, 108.0,
        ]
    }

    #[test]
    fn gt_selectivities_hit_exact_fractions() {
        let v = values();
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let c = constant_for_selectivity(&v, CmpOp::Gt, s);
            let got = measured_selectivity(&v, CmpOp::Gt, c);
            assert!((got - s).abs() < 1e-12, "target {s}, got {got}, c={c}");
        }
    }

    #[test]
    fn lt_selectivities_hit_exact_fractions() {
        let v = values();
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let c = constant_for_selectivity(&v, CmpOp::Lt, s);
            let got = measured_selectivity(&v, CmpOp::Lt, c);
            assert!((got - s).abs() < 1e-12, "target {s}, got {got}, c={c}");
        }
    }

    #[test]
    fn gt_and_lt_mirror_at_the_same_constant() {
        // §6.1: "an experiment with any selectivity s in Figure 8 has the
        // same constant as the selectivity 1−s in Figure 9".
        let v = values();
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let c_gt = constant_for_selectivity(&v, CmpOp::Gt, s);
            let c_lt = constant_for_selectivity(&v, CmpOp::Lt, 1.0 - s);
            assert!((c_gt - c_lt).abs() < 1e-12, "s={s}: {c_gt} vs {c_lt}");
        }
    }

    #[test]
    fn constants_avoid_data_points() {
        let v = values();
        for k in 1..10 {
            let c = constant_for_selectivity(&v, CmpOp::Gt, k as f64 / 10.0);
            assert!(!v.contains(&c), "constant {c} collides with a value");
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let v = vec![
            108.0, 90.0, 100.0, 94.0, 104.0, 92.0, 98.0, 106.0, 96.0, 102.0,
        ];
        let c = constant_for_selectivity(&v, CmpOp::Gt, 0.3);
        assert!((measured_selectivity(&v, CmpOp::Gt, c) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn measured_selectivity_empty_is_zero() {
        assert_eq!(measured_selectivity(&[], CmpOp::Gt, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn rejects_out_of_range_selectivity() {
        let _ = constant_for_selectivity(&[1.0], CmpOp::Gt, 1.5);
    }
}
