//! Property tests for the PR-10 calibration fields in persisted records:
//! random calibration state round-trips bit-exactly through the tick and
//! snapshot codecs, and legacy (PR 4–9) records — which never carried the
//! fields — always parse as cold/uncalibrated state instead of erroring.

use proptest::prelude::*;
use va_persist::json::Json;
use va_persist::record::{
    CalibrationState, JournalEvent, PredicateCounterRecord, SnapshotRecord, StatsRecord, TickRecord,
};
use va_stream::stats::ITER_BUCKETS;
use vao::cost::{CalCell, WorkBreakdown, CAL_CLASSES};
use vao::ops::selection::CmpOp;
use vao::trace::CpuEstimation;

fn stats(iterations: u64, pct_iterations: u64) -> StatsRecord {
    StatsRecord {
        rate: 0.05,
        work: WorkBreakdown::default(),
        wall_nanos: 1,
        iterations,
        operator: "shared_pool".to_string(),
        objects: 1,
        hist: [0; ITER_BUCKETS],
        cpu: CpuEstimation {
            iterations,
            pct_iterations,
            mean_abs_error: 1.5,
            mean_abs_pct_error: 0.25,
        },
    }
}

fn tick(calibration: Option<CalibrationState>) -> TickRecord {
    TickRecord {
        relation: 1,
        tick: 9,
        rate: 0.05,
        shed: 0,
        budget_exhausted: false,
        stats: stats(4, 4),
        sessions: Vec::new(),
        answers: Vec::new(),
        warm: Vec::new(),
        calibration,
    }
}

fn op_of(tag: u8) -> CmpOp {
    match tag % 4 {
        0 => CmpOp::Gt,
        1 => CmpOp::Ge,
        2 => CmpOp::Lt,
        _ => CmpOp::Le,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calibration_state_round_trips_through_tick_records(
        seeds in prop::collection::vec(any::<u64>(), CAL_CLASSES),
        pred_seeds in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let cells: Vec<CalCell> = seeds
            .iter()
            .map(|&s| CalCell {
                observations: s % 1_000,
                est_sum: (s >> 10) % 1_000_000,
                actual_sum: (s >> 30) % 1_000_000,
            })
            .collect();
        let predicates: Vec<PredicateCounterRecord> = pred_seeds
            .iter()
            .map(|&s| PredicateCounterRecord {
                op: op_of(s as u8),
                // Exercise awkward decimals: the codec must round-trip the
                // exact bits through shortest-display formatting.
                constant: (s % 100_000) as f64 / 7.0,
                pass: s % 977,
                fail: (s >> 16) % 977,
            })
            .collect();
        let state = CalibrationState { cells, predicates };

        // Journal tick record round-trip.
        let ev = JournalEvent::Tick(Box::new(tick(Some(state.clone()))));
        let back = JournalEvent::parse(&ev.to_line()).expect("parse tick");
        prop_assert_eq!(&back, &ev);
        match back {
            JournalEvent::Tick(t) => {
                let restored = t.calibration.expect("calibration present");
                for (a, b) in restored.predicates.iter().zip(&state.predicates) {
                    prop_assert_eq!(a.constant.to_bits(), b.constant.to_bits());
                }
            }
            other => prop_assert!(false, "unexpected event {:?}", other),
        }

        // Snapshot relation-section round-trip rides the same codec.
        let mut section_json = String::from(
            r#"{"relation":1,"next_session_id":1,"ticks":0,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[]"#,
        );
        let ev_line = ev.to_line();
        let cal_start = ev_line.find("\"calibration\":").expect("calibration field");
        section_json.push(',');
        // Drop only the tick object's final closing brace, keeping the
        // calibration object intact.
        section_json.push_str(&ev_line[cal_start..ev_line.len() - 1]);
        section_json.push('}');
        let doc = format!(
            r#"{{"seq":1,"journal_events":0,"next_relation_id":2,"relations":[{section_json}]}}"#
        );
        let snap = SnapshotRecord::parse(&doc).expect("parse snapshot");
        prop_assert_eq!(snap.relations[0].calibration.as_ref(), Some(&state));
    }

    #[test]
    fn legacy_records_without_calibration_fields_parse_as_cold(
        iterations in 0u64..10_000,
        ticks in 0u64..50,
    ) {
        // A tick line as a PR 4–9 server wrote it: no "calibration", and a
        // "cpu" object without "pct_iterations".
        let line = format!(
            r#"{{"ev":"tick","relation":1,"tick":{ticks},"rate":0.05,"shed":0,"budget_exhausted":false,"stats":{{"rate":0.05,"work":{{"exec":0,"get":0,"store":0,"choose":0}},"wall_nanos":1,"iterations":{iterations},"operator":"shared_pool","objects":1,"hist":[0,0,0,0,0,0,0,0,0],"cpu":{{"iterations":{iterations},"mae":1.5,"mape":0.25}}}},"sessions":[],"answers":[],"warm":[]}}"#
        );
        let parsed = JournalEvent::parse(&line).expect("legacy tick must stay parseable");
        match parsed {
            JournalEvent::Tick(t) => {
                prop_assert_eq!(t.calibration, None);
                prop_assert_eq!(t.stats.cpu.pct_iterations, iterations);
            }
            other => prop_assert!(false, "unexpected event {:?}", other),
        }

        // And a legacy snapshot section parses cold too.
        let doc = format!(
            r#"{{"seq":1,"journal_events":{ticks},"next_relation_id":2,"relations":[{{"relation":1,"next_session_id":1,"ticks":{ticks},"shed":0,"sessions":[],"history":[],"warm":[],"answers":[]}}]}}"#
        );
        let snap = SnapshotRecord::parse(&doc).expect("legacy snapshot must stay parseable");
        prop_assert_eq!(snap.relations[0].calibration.as_ref(), None);
    }

    #[test]
    fn modern_records_without_calibration_still_round_trip(
        pct in 0u64..100,
    ) {
        // Calibration disabled: the field is simply absent, and the new
        // pct_iterations field round-trips on its own.
        let mut t = tick(None);
        t.stats = stats(100, pct);
        let ev = JournalEvent::Tick(Box::new(t));
        let line = ev.to_line();
        prop_assert!(!line.contains("calibration"));
        prop_assert!(Json::parse(&line).is_ok());
        let back = JournalEvent::parse(&line).expect("parse");
        prop_assert_eq!(back, ev);
    }
}
