//! Property test for the segmented journal: across any random
//! `(snapshot_every, event-count)` schedule of appends, snapshots and the
//! compactions they trigger, a crash (plain drop) followed by a reopen
//! never loses a journaled event — snapshot coverage plus the replayed
//! tail always reconstructs the full appended history, byte-exact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use va_persist::record::{JournalEvent, SnapshotRecord};
use va_persist::Store;

/// A fresh scratch directory, unique per proptest case.
fn scratch() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("va-persist-proptest-{}-{n}", std::process::id()))
}

/// A minimal valid snapshot covering the store's current journal state —
/// the same seq/coverage bookkeeping the server performs.
fn snapshot_now(store: &Store) -> SnapshotRecord {
    SnapshotRecord {
        seq: store.next_snapshot_seq(),
        journal_events: store.journal_events(),
        coverage: Some(store.journal_position()),
        next_relation_id: 2,
        relations: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn no_schedule_of_snapshots_and_compactions_loses_a_journaled_event(
        snapshot_every in 1u64..10,
        events in 0u64..60,
    ) {
        let dir = scratch();
        let _ = std::fs::remove_dir_all(&dir);

        let mut appended = Vec::new();
        {
            let (mut store, recovery, _) = Store::open(&dir).expect("fresh open");
            prop_assert!(recovery.is_fresh());
            let mut since_snapshot = 0u64;
            for session in 1..=events {
                let ev = JournalEvent::Unsubscribe { relation: 1, session };
                store.append(&ev).expect("append");
                appended.push(ev);
                since_snapshot += 1;
                if since_snapshot >= snapshot_every {
                    let marker = JournalEvent::SnapshotMarker {
                        seq: store.next_snapshot_seq(),
                    };
                    store.append(&marker).expect("append marker");
                    appended.push(marker);
                    store
                        .write_snapshot(&snapshot_now(&store))
                        .expect("snapshot");
                    since_snapshot = 0;
                }
            }
        } // crash: plain drop, no shutdown snapshot

        let (_store, recovery, _) = Store::open(&dir).expect("reopen");
        prop_assert_eq!(recovery.truncated_bytes, 0);
        let covered = recovery.snapshot.as_ref().map_or(0, |s| s.journal_events);
        prop_assert_eq!(
            covered + recovery.replayed_events(),
            appended.len() as u64,
            "coverage {} + tail {} must account for all {} appended events",
            covered,
            recovery.replayed_events(),
            appended.len()
        );
        // The tail is exactly the post-coverage suffix of the appended
        // history: nothing lost, nothing duplicated, order preserved.
        prop_assert_eq!(&recovery.tail[..], &appended[covered as usize..]);

        std::fs::remove_dir_all(&dir).ok();
    }
}
