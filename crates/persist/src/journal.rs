//! The append-only write-ahead journal.
//!
//! One [`JournalEvent`] per line, appended,
//! flushed and `fdatasync`'d before the corresponding in-memory state
//! change is considered committed. On open, the journal is read back in
//! full; a **torn final record** — a trailing chunk with no newline, or an
//! unparseable *last* line (the classic power-cut shapes) — is truncated
//! away and reported, while corruption anywhere earlier is a hard
//! [`PersistError::Corrupt`]: the storage lied about previously fsync'd
//! data, and silently skipping records would change replayed history.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

use crate::record::JournalEvent;
use crate::PersistError;

/// Name of the journal file inside a data dir.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// An open journal, positioned for appending.
pub struct Journal {
    file: File,
    path: PathBuf,
    events: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("events", &self.events)
            .finish()
    }
}

/// What [`Journal::open`] read back from disk.
#[derive(Debug)]
pub struct JournalLoad {
    /// Every intact event, in append order.
    pub events: Vec<JournalEvent>,
    /// Bytes of torn final record that were truncated away (0 on a clean
    /// file).
    pub truncated_bytes: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir`, reading back every
    /// intact event and truncating a torn final record.
    pub fn open(dir: &Path) -> Result<(Journal, JournalLoad), PersistError> {
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| PersistError::io(&path, &e))?;
        let (events, good_len) = scan(&bytes, &path)?;
        let truncated_bytes = bytes.len() as u64 - good_len;
        if truncated_bytes > 0 {
            file.set_len(good_len)
                .map_err(|e| PersistError::io(&path, &e))?;
            file.seek(std::io::SeekFrom::End(0))
                .map_err(|e| PersistError::io(&path, &e))?;
            file.sync_data().map_err(|e| PersistError::io(&path, &e))?;
        }
        let journal = Journal {
            file,
            path,
            events: events.len() as u64,
        };
        Ok((
            journal,
            JournalLoad {
                events,
                truncated_bytes,
            },
        ))
    }

    /// Appends one event and makes it durable (`write` + `fdatasync`)
    /// before returning.
    pub fn append(&mut self, event: &JournalEvent) -> Result<(), PersistError> {
        let mut line = event.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| PersistError::io(&self.path, &e))?;
        self.events += 1;
        Ok(())
    }

    /// Total intact events in the journal (loaded + appended since open).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scans journal bytes into events, returning the byte length of the
/// intact prefix. Only the *final* record may be torn; anything earlier
/// that fails to parse is corruption.
fn scan(bytes: &[u8], path: &Path) -> Result<(Vec<JournalEvent>, u64), PersistError> {
    let mut events = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // Trailing bytes with no newline: the append was cut mid-line.
            return Ok((events, offset as u64));
        };
        let line_bytes = &rest[..nl];
        let end = offset + nl + 1;
        let parsed = std::str::from_utf8(line_bytes)
            .map_err(|e| e.to_string())
            .and_then(JournalEvent::parse);
        match parsed {
            Ok(ev) => events.push(ev),
            Err(detail) if end == bytes.len() => {
                // Unparseable final line (e.g. the tail of the file was
                // zero-filled by the filesystem after a crash): torn.
                let _ = detail;
                return Ok((events, offset as u64));
            }
            Err(detail) => {
                return Err(PersistError::corrupt(
                    path,
                    format!("journal event {} at byte {offset}: {detail}", events.len()),
                ));
            }
        }
        offset = end;
    }
    Ok((events, offset as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JournalEvent;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("va-persist-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(session: u64) -> JournalEvent {
        JournalEvent::Unsubscribe { session }
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tmp_dir("replay");
        {
            let (mut j, load) = Journal::open(&dir).unwrap();
            assert!(load.events.is_empty());
            assert_eq!(load.truncated_bytes, 0);
            for s in 1..=5 {
                j.append(&ev(s)).unwrap();
            }
            assert_eq!(j.events(), 5);
        }
        let (j, load) = Journal::open(&dir).unwrap();
        assert_eq!(load.events, (1..=5).map(ev).collect::<Vec<_>>());
        assert_eq!(load.truncated_bytes, 0);
        assert_eq!(j.events(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(&ev(1)).unwrap();
            j.append(&ev(2)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"ev\":\"unsub"); // no newline
        fs::write(&path, &bytes).unwrap();

        let (mut j, load) = Journal::open(&dir).unwrap();
        assert_eq!(load.events.len(), 2);
        assert_eq!(load.truncated_bytes, 12);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len, "truncated");
        // The journal is appendable again after truncation.
        j.append(&ev(3)).unwrap();
        drop(j);
        let (_, load) = Journal::open(&dir).unwrap();
        assert_eq!(load.events.len(), 3);
        assert_eq!(load.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparseable_final_complete_line_counts_as_torn() {
        let dir = tmp_dir("torn-complete");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(&ev(1)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"\0\0\0\0\n"); // zero-filled tail + newline
        fs::write(&path, &bytes).unwrap();
        let (_, load) = Journal::open(&dir).unwrap();
        assert_eq!(load.events.len(), 1);
        assert_eq!(load.truncated_bytes, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmp_dir("corrupt");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(&ev(1)).unwrap();
            j.append(&ev(2)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let broken = text.replacen("unsubscribe", "uNsUbScRiBe", 1);
        fs::write(&path, broken).unwrap();
        match Journal::open(&dir) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("event 0"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
