//! The append-only, **segmented** write-ahead journal.
//!
//! One [`JournalEvent`] per line, appended, flushed and `fdatasync`'d
//! before the corresponding in-memory state change is considered
//! committed. The journal is split into numbered segments
//! (`journal-<n>.jsonl`, `n ≥ 1`): appends always go to the
//! highest-numbered (*active*) segment, and the segment is rotated every
//! time a snapshot becomes durable, so each snapshot's coverage ends at a
//! segment boundary in the common case. Segments a retained snapshot no
//! longer needs are deleted by [`Journal::compact`], which is what keeps
//! recovery I/O and disk bounded by O(events-since-snapshot) instead of
//! O(all-history).
//!
//! On open, only the *uncovered* part of the journal is read: the newest
//! snapshot's [`SegmentPosition`] says where replay starts, and every
//! segment strictly below it is never even opened. A **torn final
//! record** in the active segment — a trailing chunk with no newline, or
//! an unparseable *last* line (the classic power-cut shapes) — is
//! truncated away and reported, while corruption anywhere earlier is a
//! hard [`PersistError::Corrupt`]: the storage lied about previously
//! fsync'd data, and silently skipping records would change replayed
//! history.
//!
//! Dirs written before segmentation hold a single `journal.jsonl`; it is
//! migrated in place (an atomic rename to `journal-1.jsonl`) on first
//! open.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::record::{JournalEvent, SegmentPosition};
use crate::PersistError;

/// Name of the single-file journal used before segmentation. Present only
/// in legacy data dirs; migrated to `journal-1.jsonl` on open.
pub const LEGACY_JOURNAL_FILE: &str = "journal.jsonl";

/// File name of journal segment `n`.
#[must_use]
pub fn segment_file(n: u64) -> String {
    format!("journal-{n}.jsonl")
}

/// Parses a segment number out of a `journal-<n>.jsonl` file name.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("journal-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

/// Lists `segment -> path` for every journal segment in `dir`.
fn list_segments(dir: &Path) -> Result<BTreeMap<u64, PathBuf>, PersistError> {
    let mut found = BTreeMap::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, &e))?;
        let name = entry.file_name();
        let Some(n) = name.to_str().and_then(parse_segment_name) else {
            continue;
        };
        found.insert(n, entry.path());
    }
    Ok(found)
}

/// Best-effort directory fsync, making renames/creates durable where the
/// platform allows opening directories.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Migrates a legacy single-file `journal.jsonl` into segment 1. A dir
/// holding *both* layouts was not produced by any version of this code
/// and is refused as corrupt.
fn migrate_legacy(dir: &Path) -> Result<(), PersistError> {
    let legacy = dir.join(LEGACY_JOURNAL_FILE);
    if !legacy.exists() {
        return Ok(());
    }
    if !list_segments(dir)?.is_empty() {
        return Err(PersistError::corrupt(
            &legacy,
            "both a legacy journal.jsonl and journal-<n>.jsonl segments exist".to_string(),
        ));
    }
    let target = dir.join(segment_file(1));
    fs::rename(&legacy, &target).map_err(|e| PersistError::io(&target, &e))?;
    sync_dir(dir);
    Ok(())
}

/// Where recovery starts reading the journal, derived from the newest
/// usable snapshot.
#[derive(Clone, Copy, Debug)]
pub enum Coverage {
    /// Modern snapshot: replay starts `position.bytes` into
    /// `position.segment`; `events` is the total event count covered since
    /// genesis. Segments below the position are never opened.
    Position {
        /// End of the covered prefix.
        position: SegmentPosition,
        /// Total events covered since genesis.
        events: u64,
    },
    /// Legacy snapshot (no segment coordinates): the whole journal is read
    /// and the first `0..n` events are skipped.
    Events(u64),
}

impl Coverage {
    fn events(&self) -> u64 {
        match self {
            Coverage::Position { events, .. } => *events,
            Coverage::Events(n) => *n,
        }
    }
}

/// An open journal, positioned for appending to the active segment.
pub struct Journal {
    dir: PathBuf,
    file: File,
    path: PathBuf,
    segment: u64,
    segment_bytes: u64,
    events: u64,
    /// Set when a failed append could not be rolled back: the durable file
    /// may hold bytes past `segment_bytes`, so further appends would land
    /// mid-garbage and turn a transient I/O error into permanent
    /// corruption. A poisoned journal refuses all appends; reopening
    /// re-derives clean accounting from disk.
    poisoned: bool,
    #[cfg(test)]
    fail_sync_after_write: u32,
    #[cfg(test)]
    fail_rollback: bool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("segment", &self.segment)
            .field("segment_bytes", &self.segment_bytes)
            .field("events", &self.events)
            .finish()
    }
}

/// What [`Journal::open`] read back from disk.
#[derive(Debug)]
pub struct JournalLoad {
    /// Every intact event **after the coverage point**, in append order.
    pub events: Vec<JournalEvent>,
    /// Bytes of torn final record that were truncated away (0 on a clean
    /// file).
    pub truncated_bytes: u64,
}

/// What [`Journal::compact`] reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Fully-covered segments deleted.
    pub segments_deleted: u64,
    /// Bytes those segments held.
    pub bytes_reclaimed: u64,
    /// Segments remaining on disk afterwards.
    pub live_segments: u64,
}

impl Journal {
    /// Opens (creating if absent) the segmented journal in `dir`, reading
    /// back every intact event past `coverage` and truncating a torn final
    /// record in the active segment.
    ///
    /// Validation: the covered segment must exist and be at least
    /// `coverage.bytes` long, segments from the coverage point to the
    /// newest must be contiguous, and — when no positional coverage
    /// exists — the journal must still start at segment 1 (anything else
    /// means compacted history is gone with no snapshot to stand in for
    /// it). A torn record anywhere but the active segment is a hard error:
    /// rotation only happens after the previous segment ended on a clean
    /// fsync'd line.
    pub fn open(
        dir: &Path,
        coverage: Option<&Coverage>,
    ) -> Result<(Journal, JournalLoad), PersistError> {
        migrate_legacy(dir)?;
        let segments = list_segments(dir)?;

        if segments.is_empty() {
            if coverage.is_some_and(|c| c.events() > 0) {
                return Err(PersistError::corrupt(
                    &dir.join(segment_file(1)),
                    format!(
                        "snapshot covers {} journal events but no journal segments exist",
                        coverage.map_or(0, Coverage::events)
                    ),
                ));
            }
            let path = dir.join(segment_file(1));
            let file = OpenOptions::new()
                .read(true)
                .append(true)
                .create(true)
                .open(&path)
                .map_err(|e| PersistError::io(&path, &e))?;
            sync_dir(dir);
            let journal = Journal {
                dir: dir.to_path_buf(),
                file,
                path,
                segment: 1,
                segment_bytes: 0,
                events: 0,
                poisoned: false,
                #[cfg(test)]
                fail_sync_after_write: 0,
                #[cfg(test)]
                fail_rollback: false,
            };
            return Ok((
                journal,
                JournalLoad {
                    events: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }

        let first = *segments.keys().next().expect("non-empty");
        let last = *segments.keys().next_back().expect("non-empty");

        let (read_from, skip_bytes, base_events) = match coverage {
            Some(Coverage::Position { position, events }) => {
                if !segments.contains_key(&position.segment) {
                    return Err(PersistError::corrupt(
                        &dir.join(segment_file(position.segment)),
                        format!(
                            "snapshot coverage ends in segment {} but that segment is missing",
                            position.segment
                        ),
                    ));
                }
                (position.segment, position.bytes, *events)
            }
            Some(Coverage::Events(_)) | None => {
                if first > 1 {
                    return Err(PersistError::corrupt(
                        &dir.join(segment_file(first)),
                        format!(
                            "journal history before segment {first} was compacted away \
                             but no snapshot with segment coverage exists to replace it"
                        ),
                    ));
                }
                (first, 0, 0)
            }
        };

        for n in read_from..=last {
            if !segments.contains_key(&n) {
                return Err(PersistError::corrupt(
                    &dir.join(segment_file(n)),
                    format!("journal segment {n} is missing (segments {read_from}..={last} must be contiguous)"),
                ));
            }
        }

        let mut events = Vec::new();
        let mut truncated_bytes = 0u64;
        for n in read_from..=last {
            let path = &segments[&n];
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
                .map_err(|e| PersistError::io(path, &e))?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)
                .map_err(|e| PersistError::io(path, &e))?;
            let skip = if n == read_from { skip_bytes } else { 0 };
            if skip > bytes.len() as u64 {
                return Err(PersistError::corrupt(
                    path,
                    format!(
                        "snapshot covers {skip} bytes of segment {n} but only {} exist",
                        bytes.len()
                    ),
                ));
            }
            let (parsed, good_len) = scan(&bytes[skip as usize..], path, skip)?;
            let torn = bytes.len() as u64 - skip - good_len;
            if torn > 0 {
                if n != last {
                    return Err(PersistError::corrupt(
                        path,
                        format!(
                            "torn record in non-final segment {n}: rotation only follows \
                             a clean fsync'd line"
                        ),
                    ));
                }
                file.set_len(skip + good_len)
                    .and_then(|()| file.sync_data())
                    .map_err(|e| PersistError::io(path, &e))?;
                truncated_bytes = torn;
            }
            events.extend(parsed);
        }

        // Translate event-count coverage (legacy snapshots) into a tail.
        let tail = match coverage {
            Some(Coverage::Events(n)) => {
                if *n > events.len() as u64 {
                    return Err(PersistError::corrupt(
                        &dir.join(segment_file(first)),
                        format!(
                            "snapshot covers {n} journal events but only {} exist",
                            events.len()
                        ),
                    ));
                }
                events.split_off(*n as usize)
            }
            _ => events,
        };
        let total_events = match coverage {
            Some(Coverage::Events(n)) => n + tail.len() as u64,
            _ => base_events + tail.len() as u64,
        };

        let path = segments[&last].clone();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, &e))?;
        let segment_bytes = fs::metadata(&path)
            .map_err(|e| PersistError::io(&path, &e))?
            .len();
        let journal = Journal {
            dir: dir.to_path_buf(),
            file,
            path,
            segment: last,
            segment_bytes,
            events: total_events,
            poisoned: false,
            #[cfg(test)]
            fail_sync_after_write: 0,
            #[cfg(test)]
            fail_rollback: false,
        };
        Ok((
            journal,
            JournalLoad {
                events: tail,
                truncated_bytes,
            },
        ))
    }

    /// Appends one event and makes it durable (`write` + `fdatasync`)
    /// before returning.
    ///
    /// On failure the append is rolled back: the file is truncated to the
    /// last committed byte and the in-memory event/byte accounting is left
    /// untouched, so [`Journal::position`] keeps matching the durable
    /// bytes and a later snapshot cannot record coverage that ends inside
    /// a half-written record. If the rollback itself fails, the journal is
    /// **poisoned** — every further append fails fast — because appending
    /// after an unremoved partial write would interleave a new record into
    /// the middle of garbage and upgrade a transient I/O error into hard
    /// corruption on the next recovery. Reopening the journal recovers:
    /// `open` truncates the torn tail and rebuilds accounting from disk.
    pub fn append(&mut self, event: &JournalEvent) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::io(
                &self.path,
                &std::io::Error::other(
                    "journal is poisoned by an earlier failed append whose rollback \
                     also failed; reopen the journal to recover",
                ),
            ));
        }
        let mut line = event.to_line();
        line.push('\n');
        match self.write_durable(line.as_bytes()) {
            Ok(()) => {
                self.segment_bytes += line.len() as u64;
                self.events += 1;
                Ok(())
            }
            Err(e) => {
                #[allow(unused_mut)]
                let mut rolled = self
                    .file
                    .set_len(self.segment_bytes)
                    .and_then(|()| self.file.sync_data());
                #[cfg(test)]
                if self.fail_rollback {
                    rolled = Err(std::io::Error::other("injected rollback failure"));
                }
                if rolled.is_err() {
                    self.poisoned = true;
                }
                Err(PersistError::io(&self.path, &e))
            }
        }
    }

    /// Whether a failed append rollback has poisoned the journal (see
    /// [`Journal::append`]).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// One durable write: all bytes, then `fdatasync`. The `#[cfg(test)]`
    /// hook fails *after* the bytes hit the file but before the sync —
    /// the exact shape of a mid-append I/O error the rollback must undo.
    fn write_durable(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)?;
        #[cfg(test)]
        if self.fail_sync_after_write > 0 {
            self.fail_sync_after_write -= 1;
            return Err(std::io::Error::other("injected sync failure"));
        }
        self.file.sync_data()
    }

    /// Starts a fresh segment; subsequent appends go there. Called after a
    /// snapshot becomes durable so that coverage ends exactly at the old
    /// segment's end and the old segment becomes eligible for compaction.
    pub fn rotate(&mut self) -> Result<(), PersistError> {
        let next = self.segment + 1;
        let path = self.dir.join(segment_file(next));
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, &e))?;
        sync_dir(&self.dir);
        self.file = file;
        self.path = path;
        self.segment = next;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Deletes every segment fully covered by `oldest_needed` — the
    /// coverage position of the **oldest retained** snapshot, so the
    /// fallback snapshot's replay window always survives on disk. The
    /// active segment is never deleted. Deletion is best-effort and
    /// proceeds in ascending segment order, so a crash mid-compaction
    /// leaves a contiguous suffix (an already-valid journal, just with
    /// some garbage still awaiting the next pass).
    pub fn compact(&mut self, oldest_needed: SegmentPosition) -> CompactionReport {
        let mut report = CompactionReport::default();
        if let Ok(segments) = list_segments(&self.dir) {
            for (n, path) in &segments {
                if *n == self.segment {
                    continue;
                }
                let len = fs::metadata(path).map_or(0, |m| m.len());
                let fully_covered = *n < oldest_needed.segment
                    || (*n == oldest_needed.segment && len <= oldest_needed.bytes);
                if fully_covered && fs::remove_file(path).is_ok() {
                    report.segments_deleted += 1;
                    report.bytes_reclaimed += len;
                }
            }
        }
        sync_dir(&self.dir);
        report.live_segments = list_segments(&self.dir).map_or(1, |s| s.len() as u64);
        report
    }

    /// Total intact events since genesis (covered + loaded + appended).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Where the journal currently ends: the active segment and its byte
    /// length. A snapshot taken now covers exactly this position.
    #[must_use]
    pub fn position(&self) -> SegmentPosition {
        SegmentPosition {
            segment: self.segment,
            bytes: self.segment_bytes,
        }
    }

    /// Number of journal segments currently on disk.
    #[must_use]
    pub fn live_segments(&self) -> u64 {
        list_segments(&self.dir).map_or(1, |s| s.len() as u64)
    }

    /// The active segment's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scans journal bytes into events, returning the byte length of the
/// intact prefix. Only the *final* record may be torn; anything earlier
/// that fails to parse is corruption. `base` is the byte offset the slice
/// starts at within its file, used only for error messages.
fn scan(bytes: &[u8], path: &Path, base: u64) -> Result<(Vec<JournalEvent>, u64), PersistError> {
    let mut events = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // Trailing bytes with no newline: the append was cut mid-line.
            return Ok((events, offset as u64));
        };
        let line_bytes = &rest[..nl];
        let end = offset + nl + 1;
        let parsed = std::str::from_utf8(line_bytes)
            .map_err(|e| e.to_string())
            .and_then(JournalEvent::parse);
        match parsed {
            Ok(ev) => events.push(ev),
            Err(detail) if end == bytes.len() => {
                // Unparseable final line (e.g. the tail of the file was
                // zero-filled by the filesystem after a crash): torn.
                let _ = detail;
                return Ok((events, offset as u64));
            }
            Err(detail) => {
                return Err(PersistError::corrupt(
                    path,
                    format!(
                        "journal event {} at byte {}: {detail}",
                        events.len(),
                        base + offset as u64
                    ),
                ));
            }
        }
        offset = end;
    }
    Ok((events, offset as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JournalEvent;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("va-persist-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(session: u64) -> JournalEvent {
        JournalEvent::Unsubscribe {
            relation: 1,
            session,
        }
    }

    fn open_fresh(dir: &Path) -> (Journal, JournalLoad) {
        Journal::open(dir, None).unwrap()
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tmp_dir("replay");
        {
            let (mut j, load) = open_fresh(&dir);
            assert!(load.events.is_empty());
            assert_eq!(load.truncated_bytes, 0);
            for s in 1..=5 {
                j.append(&ev(s)).unwrap();
            }
            assert_eq!(j.events(), 5);
        }
        let (j, load) = open_fresh(&dir);
        assert_eq!(load.events, (1..=5).map(ev).collect::<Vec<_>>());
        assert_eq!(load.truncated_bytes, 0);
        assert_eq!(j.events(), 5);
        assert_eq!(j.position().segment, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.append(&ev(2)).unwrap();
        }
        let path = dir.join(segment_file(1));
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"ev\":\"unsub"); // no newline
        fs::write(&path, &bytes).unwrap();

        let (mut j, load) = open_fresh(&dir);
        assert_eq!(load.events.len(), 2);
        assert_eq!(load.truncated_bytes, 12);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len, "truncated");
        // The journal is appendable again after truncation.
        j.append(&ev(3)).unwrap();
        drop(j);
        let (_, load) = open_fresh(&dir);
        assert_eq!(load.events.len(), 3);
        assert_eq!(load.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparseable_final_complete_line_counts_as_torn() {
        let dir = tmp_dir("torn-complete");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
        }
        let path = dir.join(segment_file(1));
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"\0\0\0\0\n"); // zero-filled tail + newline
        fs::write(&path, &bytes).unwrap();
        let (_, load) = open_fresh(&dir);
        assert_eq!(load.events.len(), 1);
        assert_eq!(load.truncated_bytes, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmp_dir("corrupt");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.append(&ev(2)).unwrap();
        }
        let path = dir.join(segment_file(1));
        let text = fs::read_to_string(&path).unwrap();
        let broken = text.replacen("unsubscribe", "uNsUbScRiBe", 1);
        fs::write(&path, broken).unwrap();
        match Journal::open(&dir, None) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("event 0"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_moves_appends_to_the_next_segment() {
        let dir = tmp_dir("rotate");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            let end_of_seg1 = j.position();
            j.rotate().unwrap();
            assert_eq!(
                j.position(),
                SegmentPosition {
                    segment: 2,
                    bytes: 0
                }
            );
            j.append(&ev(2)).unwrap();
            assert_eq!(j.events(), 2);
            // The old segment is untouched by the rotation.
            assert_eq!(
                fs::metadata(dir.join(segment_file(1))).unwrap().len(),
                end_of_seg1.bytes
            );
        }
        // Reopen with no coverage: both segments are read in order.
        let (j, load) = open_fresh(&dir);
        assert_eq!(load.events, vec![ev(1), ev(2)]);
        assert_eq!(j.position().segment, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn positional_coverage_skips_covered_segments_entirely() {
        let dir = tmp_dir("coverage");
        let cover;
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.rotate().unwrap();
            j.append(&ev(2)).unwrap();
            cover = j.position();
            j.rotate().unwrap();
            j.append(&ev(3)).unwrap();
        }
        // Corrupt a segment strictly below the coverage point: recovery
        // must never even open it.
        fs::write(dir.join(segment_file(1)), b"\0garbage\0").unwrap();
        let coverage = Coverage::Position {
            position: cover,
            events: 2,
        };
        let (j, load) = Journal::open(&dir, Some(&coverage)).unwrap();
        assert_eq!(load.events, vec![ev(3)]);
        assert_eq!(j.events(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_coverage_of_a_segment_reads_only_the_tail_bytes() {
        let dir = tmp_dir("partial");
        let cover;
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            cover = j.position();
            // No rotation: the snapshot's segment keeps growing (the
            // crash-before-rotation shape).
            j.append(&ev(2)).unwrap();
        }
        let coverage = Coverage::Position {
            position: cover,
            events: 1,
        };
        let (j, load) = Journal::open(&dir, Some(&coverage)).unwrap();
        assert_eq!(load.events, vec![ev(2)]);
        assert_eq!(j.events(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_deletes_fully_covered_segments_only() {
        let dir = tmp_dir("compact");
        let (mut j, _) = open_fresh(&dir);
        j.append(&ev(1)).unwrap();
        j.rotate().unwrap();
        j.append(&ev(2)).unwrap();
        let cover = j.position(); // end of segment 2
        j.rotate().unwrap();
        j.append(&ev(3)).unwrap();
        let report = j.compact(cover);
        assert_eq!(report.segments_deleted, 2);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(report.live_segments, 1);
        assert!(!dir.join(segment_file(1)).exists());
        assert!(!dir.join(segment_file(2)).exists());
        assert!(dir.join(segment_file(3)).exists());
        // A second pass has nothing left to do.
        assert_eq!(j.compact(cover).segments_deleted, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_never_deletes_the_active_segment() {
        let dir = tmp_dir("compact-active");
        let (mut j, _) = open_fresh(&dir);
        j.append(&ev(1)).unwrap();
        let cover = j.position(); // covers all of segment 1 = active
        let report = j.compact(cover);
        assert_eq!(report.segments_deleted, 0);
        assert!(dir.join(segment_file(1)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_journal_is_migrated_to_segment_1() {
        let dir = tmp_dir("legacy");
        // Fabricate a pre-segmentation dir: the line format is unchanged,
        // only the file name moved.
        let mut lines = String::new();
        for s in 1..=3 {
            lines.push_str(&ev(s).to_line());
            lines.push('\n');
        }
        fs::write(dir.join(LEGACY_JOURNAL_FILE), lines).unwrap();
        let (j, load) = open_fresh(&dir);
        assert_eq!(load.events, (1..=3).map(ev).collect::<Vec<_>>());
        assert_eq!(j.events(), 3);
        assert!(!dir.join(LEGACY_JOURNAL_FILE).exists());
        assert!(dir.join(segment_file(1)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_legacy_and_segmented_layouts_are_corrupt() {
        let dir = tmp_dir("mixed");
        fs::write(dir.join(LEGACY_JOURNAL_FILE), b"").unwrap();
        fs::write(dir.join(segment_file(1)), b"").unwrap();
        assert!(matches!(
            Journal::open(&dir, None),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_middle_segment_is_corrupt() {
        let dir = tmp_dir("gap");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.rotate().unwrap();
            j.append(&ev(2)).unwrap();
            j.rotate().unwrap();
            j.append(&ev(3)).unwrap();
        }
        fs::remove_file(dir.join(segment_file(2))).unwrap();
        match Journal::open(&dir, None) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("contiguous"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_history_without_positional_coverage_is_corrupt() {
        let dir = tmp_dir("orphan");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.rotate().unwrap();
            j.append(&ev(2)).unwrap();
        }
        fs::remove_file(dir.join(segment_file(1))).unwrap();
        // Without a snapshot that says where segment 2 starts, the
        // missing prefix is unexplained history.
        assert!(matches!(
            Journal::open(&dir, None),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_bytes_and_accounting() {
        let dir = tmp_dir("append-fail");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            let committed = j.position();
            let committed_events = j.events();

            // Inject: the next append writes its bytes, then the sync fails.
            j.fail_sync_after_write = 1;
            assert!(j.append(&ev(2)).is_err());

            // Accounting did not advance, and the durable file was rolled
            // back to exactly the committed length — no half-record remains
            // for a later append to land behind.
            assert_eq!(j.position(), committed);
            assert_eq!(j.events(), committed_events);
            assert_eq!(
                fs::metadata(dir.join(segment_file(1))).unwrap().len(),
                committed.bytes
            );
            assert!(!j.is_poisoned());

            // The journal keeps working; the retried append lands cleanly.
            j.append(&ev(3)).unwrap();
            assert_eq!(j.events(), 2);
            assert_eq!(
                fs::metadata(dir.join(segment_file(1))).unwrap().len(),
                j.position().bytes
            );
        }
        // Reopen: only the committed events exist, nothing torn.
        let (_, load) = open_fresh(&dir);
        assert_eq!(load.events, vec![ev(1), ev(3)]);
        assert_eq!(load.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rollback_poisons_the_journal() {
        let dir = tmp_dir("append-poison");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.fail_sync_after_write = 1;
            j.fail_rollback = true;
            assert!(j.append(&ev(2)).is_err());
            assert!(j.is_poisoned());
            // Accounting still did not advance past the committed state...
            assert_eq!(j.events(), 1);
            // ...and every further append fails fast, even with injections
            // cleared: the file may hold bytes past the accounting.
            j.fail_rollback = false;
            let err = j.append(&ev(3)).unwrap_err();
            assert!(format!("{err}").contains("poisoned"), "{err}");
            assert_eq!(j.events(), 1);
        }
        // Reopen recovers: accounting is re-derived from disk (truncating
        // any torn tail), and the journal is appendable again.
        let (mut j, _) = open_fresh(&dir);
        assert!(!j.is_poisoned());
        j.append(&ev(4)).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_record_in_a_non_final_segment_is_corrupt() {
        let dir = tmp_dir("torn-mid");
        {
            let (mut j, _) = open_fresh(&dir);
            j.append(&ev(1)).unwrap();
            j.rotate().unwrap();
            j.append(&ev(2)).unwrap();
        }
        let seg1 = dir.join(segment_file(1));
        let mut bytes = fs::read(&seg1).unwrap();
        bytes.extend_from_slice(b"{\"ev\":"); // no newline, but not the last segment
        fs::write(&seg1, &bytes).unwrap();
        assert!(matches!(
            Journal::open(&dir, None),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
