//! Atomic snapshot files.
//!
//! Each snapshot is one JSON document in `snapshot-<seq>.json`, written
//! via temp-file + `fsync` + `rename` so a crash mid-write can never leave
//! a half-written snapshot under the real name. [`load`] picks the newest
//! parseable snapshot and **reports** every newer file it had to skip —
//! a skipped snapshot is evidence of corruption the operator should see,
//! and its on-disk seq must keep counting toward the next seq or a later
//! snapshot would collide with the corpse. [`prune`] keeps the two most
//! recent usable snapshots (the previous survives until its successor is
//! durable) and removes unparseable files outright instead of letting
//! them count toward the two kept.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record::SnapshotRecord;
use crate::PersistError;

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.json"))
}

/// Lists `(seq, path)` for every snapshot file in `dir`, ascending by seq.
fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(found)
}

/// Writes `snap` atomically into `dir`. Returns the final path. Pruning is
/// a separate step ([`prune`]) so the caller controls the ordering of
/// durability, pruning, and journal compaction.
pub fn write(dir: &Path, snap: &SnapshotRecord) -> Result<PathBuf, PersistError> {
    let final_path = snapshot_path(dir, snap.seq);
    let tmp_path = dir.join(format!("snapshot-{}.json.tmp", snap.seq));
    {
        let mut tmp = File::create(&tmp_path).map_err(|e| PersistError::io(&tmp_path, &e))?;
        tmp.write_all(snap.to_json().as_bytes())
            .and_then(|()| tmp.write_all(b"\n"))
            .and_then(|()| tmp.sync_all())
            .map_err(|e| PersistError::io(&tmp_path, &e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| PersistError::io(&final_path, &e))?;
    // Make the rename itself durable where the platform allows opening
    // directories; failure to fsync the directory only risks losing the
    // *newest* snapshot to a crash, which recovery already tolerates.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// What [`load`] found in a data dir.
#[derive(Debug)]
pub struct SnapshotLoad {
    /// The newest parseable snapshot, if any.
    pub newest: Option<SnapshotRecord>,
    /// Files newer than `newest` that could not be read or parsed; they
    /// are surfaced in the recovery report and removed by the next
    /// [`prune`].
    pub skipped: Vec<PathBuf>,
    /// The highest seq present **on disk** (parseable or not). The next
    /// snapshot seq must clear this, or a fresh write could collide with a
    /// corrupt corpse of the same name.
    pub max_seq: Option<u64>,
}

/// Loads the newest parseable snapshot in `dir`, recording every newer
/// file it had to skip. An unparseable newer file is skipped in favor of
/// an older one (the journal still holds that span of history, so an
/// older snapshot only means a longer replay).
pub fn load(dir: &Path) -> Result<SnapshotLoad, PersistError> {
    let mut found = list(dir)?;
    let max_seq = found.last().map(|&(seq, _)| seq);
    found.reverse();
    let mut skipped = Vec::new();
    let mut newest = None;
    for (_, path) in found {
        let parsed = fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| SnapshotRecord::parse(text.trim_end()));
        match parsed {
            Ok(snap) => {
                newest = Some(snap);
                break;
            }
            Err(_) => skipped.push(path),
        }
    }
    Ok(SnapshotLoad {
        newest,
        skipped,
        max_seq,
    })
}

/// Removes `known_bad` files (unparseable snapshots recorded at open) and
/// then keeps only the two newest remaining snapshots. Best-effort: a
/// deletion failure leaves a stale file behind, which the next prune will
/// retry.
pub fn prune(dir: &Path, known_bad: &[PathBuf]) {
    for path in known_bad {
        let _ = fs::remove_file(path);
    }
    if let Ok(existing) = list(dir) {
        if existing.len() > 2 {
            for (_, path) in &existing[..existing.len() - 2] {
                let _ = fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("va-persist-snapshot-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snap(seq: u64) -> SnapshotRecord {
        SnapshotRecord {
            seq,
            journal_events: seq * 10,
            coverage: Some(crate::record::SegmentPosition {
                segment: seq,
                bytes: seq * 100,
            }),
            next_relation_id: 2,
            relations: vec![crate::record::RelationSnapshot {
                relation: 1,
                def: None,
                next_session_id: 3,
                ticks: seq,
                shed: 0,
                sessions: Vec::new(),
                history: Vec::new(),
                warm: Vec::new(),
                answers: Vec::new(),
                calibration: None,
            }],
        }
    }

    #[test]
    fn write_then_load_newest() {
        let dir = tmp_dir("roundtrip");
        let load0 = load(&dir).unwrap();
        assert_eq!(load0.newest, None);
        assert_eq!(load0.max_seq, None);
        write(&dir, &snap(1)).unwrap();
        write(&dir, &snap(2)).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.newest, Some(snap(2)));
        assert!(loaded.skipped.is_empty());
        assert_eq!(loaded.max_seq, Some(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_only_two_newest_snapshots() {
        let dir = tmp_dir("prune");
        for seq in 1..=5 {
            write(&dir, &snap(seq)).unwrap();
            prune(&dir, &[]);
        }
        let names = list(&dir).unwrap();
        assert_eq!(
            names.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![4, 5]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparseable_newest_is_skipped_and_reported() {
        let dir = tmp_dir("fallback");
        write(&dir, &snap(1)).unwrap();
        write(&dir, &snap(2)).unwrap();
        let corpse = snapshot_path(&dir, 3);
        fs::write(&corpse, b"{garbage").unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.newest, Some(snap(2)));
        assert_eq!(loaded.skipped, vec![corpse.clone()]);
        // The corpse's seq still counts: a new snapshot must not collide
        // with the file still on disk.
        assert_eq!(loaded.max_seq, Some(3));
        // Pruning removes the corpse instead of counting it toward the
        // two kept.
        prune(&dir, &loaded.skipped);
        let names = list(&dir).unwrap();
        assert_eq!(
            names.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_ignored() {
        let dir = tmp_dir("tmpfiles");
        write(&dir, &snap(7)).unwrap();
        fs::write(dir.join("snapshot-8.json.tmp"), b"half").unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.newest, Some(snap(7)));
        assert!(loaded.skipped.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
