//! Atomic snapshot files.
//!
//! Each snapshot is one JSON document in `snapshot-<seq>.json`, written
//! via temp-file + `fsync` + `rename` so a crash mid-write can never leave
//! a half-written snapshot under the real name. The two most recent
//! snapshots are kept (the previous one survives until its successor is
//! durable); older files are pruned best-effort.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record::SnapshotRecord;
use crate::PersistError;

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.json"))
}

/// Lists `(seq, path)` for every snapshot file in `dir`, ascending by seq.
fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(found)
}

/// Writes `snap` atomically into `dir` and prunes all but the two newest
/// snapshots. Returns the final path.
pub fn write(dir: &Path, snap: &SnapshotRecord) -> Result<PathBuf, PersistError> {
    let final_path = snapshot_path(dir, snap.seq);
    let tmp_path = dir.join(format!("snapshot-{}.json.tmp", snap.seq));
    {
        let mut tmp = File::create(&tmp_path).map_err(|e| PersistError::io(&tmp_path, &e))?;
        tmp.write_all(snap.to_json().as_bytes())
            .and_then(|()| tmp.write_all(b"\n"))
            .and_then(|()| tmp.sync_all())
            .map_err(|e| PersistError::io(&tmp_path, &e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| PersistError::io(&final_path, &e))?;
    // Make the rename itself durable where the platform allows opening
    // directories; failure to fsync the directory only risks losing the
    // *newest* snapshot to a crash, which recovery already tolerates.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    if let Ok(existing) = list(dir) {
        for (seq, path) in &existing {
            if existing.len() >= 2 && *seq < existing[existing.len() - 2].0 {
                let _ = fs::remove_file(path);
            }
        }
    }
    Ok(final_path)
}

/// Loads the newest parseable snapshot in `dir`, or `None` when no
/// snapshot exists yet. An unparseable newer file is skipped in favor of
/// an older one (the journal holds the full history, so an older snapshot
/// only means a longer replay).
pub fn load_latest(dir: &Path) -> Result<Option<SnapshotRecord>, PersistError> {
    let mut found = list(dir)?;
    found.reverse();
    for (_, path) in found {
        let text = fs::read_to_string(&path).map_err(|e| PersistError::io(&path, &e))?;
        if let Ok(snap) = SnapshotRecord::parse(text.trim_end()) {
            return Ok(Some(snap));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("va-persist-snapshot-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snap(seq: u64) -> SnapshotRecord {
        SnapshotRecord {
            seq,
            journal_events: seq * 10,
            next_session_id: 3,
            ticks: seq,
            shed: 0,
            sessions: Vec::new(),
            history: Vec::new(),
            warm: Vec::new(),
            answers: Vec::new(),
        }
    }

    #[test]
    fn write_then_load_latest() {
        let dir = tmp_dir("roundtrip");
        assert_eq!(load_latest(&dir).unwrap(), None);
        write(&dir, &snap(1)).unwrap();
        write(&dir, &snap(2)).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), Some(snap(2)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keeps_only_two_newest_snapshots() {
        let dir = tmp_dir("prune");
        for seq in 1..=5 {
            write(&dir, &snap(seq)).unwrap();
        }
        let names = list(&dir).unwrap();
        assert_eq!(
            names.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![4, 5]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparseable_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        write(&dir, &snap(1)).unwrap();
        write(&dir, &snap(2)).unwrap();
        fs::write(snapshot_path(&dir, 3), b"{garbage").unwrap();
        assert_eq!(load_latest(&dir).unwrap(), Some(snap(2)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_ignored() {
        let dir = tmp_dir("tmpfiles");
        write(&dir, &snap(7)).unwrap();
        fs::write(dir.join("snapshot-8.json.tmp"), b"half").unwrap();
        assert_eq!(load_latest(&dir).unwrap(), Some(snap(7)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
