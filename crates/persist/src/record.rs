//! On-disk record types and their JSON codecs.
//!
//! Every record serializes to a single-line JSON object and parses back
//! bit-identically: `f64` values are written with Rust's shortest
//! round-tripping `Display` and read with `str::parse::<f64>`, so a
//! recovered server sees exactly the floats the crashed server saw.
//! `docs/PERSISTENCE.md` documents every field.
//!
//! The journal is a **redo log of outcomes**, not intents: a
//! [`TickRecord`] carries the executed tick's statistics, per-session
//! outcomes, answers, and the end-of-tick warm-start state of every pool
//! object. Replay is therefore pure bookkeeping — no model is re-invoked
//! and no iteration re-run — which is what makes recovered accounting
//! bit-identical to the uninterrupted run.

use va_stream::stats::{IterHistogram, TickStats, ITER_BUCKETS};
use va_stream::{Query, QueryOutput};
use vao::cost::{CalCell, WorkBreakdown, CAL_CLASSES};
use vao::ops::heavy::HeavyCell;
use vao::ops::selection::CmpOp;
use vao::trace::CpuEstimation;
use vao::Bounds;

use crate::json::{escape, Json};

/// One control-plane event in the write-ahead journal.
///
/// Every data-plane event is namespaced by a relation id. Events written
/// before the catalog existed carry no `relation` field and parse as
/// relation `1` (the id legacy single-relation dirs migrate onto).
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// A relation was created in the catalog: its full definition rides in
    /// the journal so a data dir is self-describing on recovery. Boxed —
    /// the definition carries every bond.
    CreateRelation(Box<RelationRecord>),
    /// A relation was dropped from the catalog (its id is never reused).
    DropRelation {
        /// The dropped relation's id.
        relation: u64,
    },
    /// A bond was appended to a relation's definition.
    AddBond {
        /// The relation the bond was appended to.
        relation: u64,
        /// The appended bond.
        bond: BondRecord,
    },
    /// A session was admitted (validated) with this id.
    Subscribe {
        /// The relation the session subscribes against.
        relation: u64,
        /// The id the registry assigned (per-relation id space).
        session: u64,
        /// Scheduling priority (already clamped ≥ 1).
        priority: u32,
        /// The resolved query (SUM weights concrete).
        query: Query,
    },
    /// A session was removed.
    Unsubscribe {
        /// The relation the session belonged to.
        relation: u64,
        /// The id that was deregistered.
        session: u64,
    },
    /// One tick executed to completion; carries its full outcome. Boxed:
    /// a tick record dwarfs the other variants (stats + per-object warm
    /// state), and events travel through `Vec<JournalEvent>` on recovery.
    Tick(Box<TickRecord>),
    /// A snapshot with this sequence number covers every event up to and
    /// including this marker.
    SnapshotMarker {
        /// Snapshot sequence number.
        seq: u64,
    },
}

/// A journaled relation definition plus its catalog id.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationRecord {
    /// The catalog id assigned (monotone, never reused).
    pub relation: u64,
    /// The full definition.
    pub def: RelationDefRecord,
}

/// A relation's complete self-describing definition: recovery rebuilds
/// the in-memory relation from this record alone, with zero flag-based
/// reconstruction.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationDefRecord {
    /// Catalog name (unique among live relations).
    pub name: String,
    /// The universe-generator seed the bonds came from, if any (kept for
    /// provenance / operator display; the `bonds` list is authoritative).
    pub seed: Option<u64>,
    /// Every bond, in relation order.
    pub bonds: Vec<BondRecord>,
}

/// One persisted bond.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BondRecord {
    /// Bond id within its relation.
    pub id: u32,
    /// Annual coupon rate (fraction of face).
    pub coupon: f64,
    /// Years to maturity.
    pub maturity: f64,
    /// Face value.
    pub face: f64,
}

/// The outcome of one executed tick.
#[derive(Clone, Debug, PartialEq)]
pub struct TickRecord {
    /// The relation the tick executed against.
    pub relation: u64,
    /// The relation's tick counter after this tick (1-based).
    pub tick: u64,
    /// The rate that was priced.
    pub rate: f64,
    /// Cumulative shed-tick counter after this tick.
    pub shed: u64,
    /// Whether the work budget ran out mid-tick.
    pub budget_exhausted: bool,
    /// The tick's execution statistics.
    pub stats: StatsRecord,
    /// Per-session outcome deltas, in registration order.
    pub sessions: Vec<SessionTickRecord>,
    /// Per-session answers, in registration order.
    pub answers: Vec<AnswerEntry>,
    /// End-of-tick state of every pool object, aligned with the relation.
    pub warm: Vec<WarmObjectRecord>,
    /// End-of-tick cost-calibration state, when the relation runs with
    /// calibration enabled. `None` on legacy (PR 4–9) records and on
    /// uncalibrated relations — both parse as a cold model.
    pub calibration: Option<CalibrationState>,
}

/// Persisted online cost-calibration state: the scheduler's learned
/// estimated-vs-actual cost model plus the per-predicate pass/fail
/// frequencies Selection demand ordering learns from. Versioned — the
/// field is simply absent on records written before calibration existed,
/// and absent parses as cold/uncalibrated.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationState {
    /// Per-magnitude-class `(observations, est_sum, actual_sum)` cells,
    /// exactly [`CAL_CLASSES`] of them, aligned with
    /// [`vao::cost::Calibrator::cells`].
    pub cells: Vec<CalCell>,
    /// Learned per-predicate pass/fail counters, ascending by `(op,
    /// constant)` key order.
    pub predicates: Vec<PredicateCounterRecord>,
}

/// One predicate's accumulated pass/fail counts across ticks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredicateCounterRecord {
    /// The predicate's comparison operator.
    pub op: CmpOp,
    /// The predicate's constant (bit-exact through the decimal codec).
    pub constant: f64,
    /// Objects observed satisfying the predicate.
    pub pass: u64,
    /// Objects observed failing the predicate.
    pub fail: u64,
}

/// One session's outcome delta for one tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionTickRecord {
    /// Session id.
    pub session: u64,
    /// Whether the session converged to its ε (else the answer was
    /// partial).
    pub is_final: bool,
    /// Pool iterations this session's demand drove during the tick.
    pub driven: u64,
}

/// A `(session, answer)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct AnswerEntry {
    /// Session id.
    pub session: u64,
    /// The answer delivered.
    pub answer: AnswerRecord,
}

/// A persisted answer — mirrors `va_server::Answer` without depending on
/// the server crate (the dependency points the other way).
#[derive(Clone, Debug, PartialEq)]
pub enum AnswerRecord {
    /// The query converged within budget.
    Final(QueryOutput),
    /// The budget ran out; sound anytime bounds.
    Partial {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

/// End-of-tick state of one pool object: everything a recovered server
/// needs to re-admit the object at its achieved accuracy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmObjectRecord {
    /// Last lower bound.
    pub lo: f64,
    /// Last upper bound.
    pub hi: f64,
    /// Whether the object had reached its stopping condition.
    pub converged: bool,
    /// Cumulative `iterate()` calls across the object's lifetime at this
    /// rate (accumulated across warm re-admissions).
    pub iters: u64,
    /// Cumulative work units the object charged (accumulated across warm
    /// re-admissions).
    pub cost: u64,
}

/// A persisted [`TickStats`] (the `operator` tag rides as a string and is
/// mapped back to the known static names on load).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsRecord {
    /// The rate processed.
    pub rate: f64,
    /// Logical work, by component.
    pub work: WorkBreakdown,
    /// Wall-clock nanoseconds (restored for bookkeeping; never compared —
    /// wall time is not deterministic).
    pub wall_nanos: u64,
    /// Total `iterate()` calls.
    pub iterations: u64,
    /// Operator tag.
    pub operator: String,
    /// Traced result objects.
    pub objects: u64,
    /// Iterations-per-object histogram buckets.
    pub hist: [u64; ITER_BUCKETS],
    /// Estimated-vs-actual CPU error summary.
    pub cpu: CpuEstimation,
}

/// Where in the segmented journal a snapshot's coverage ends: the last
/// covered byte lives `bytes` into `journal-<segment>.jsonl`. Segments
/// strictly below `segment` are fully covered and eligible for compaction
/// once no retained snapshot needs them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentPosition {
    /// Journal segment number the coverage ends in.
    pub segment: u64,
    /// Byte length of that segment's covered prefix.
    pub bytes: u64,
}

/// A point-in-time capture of the whole server control plane.
///
/// Written as a version-2 document: one section per catalog relation,
/// each carrying its definition (snapshots must be self-contained —
/// compaction may delete the `create_relation` journal events that
/// originally defined a relation). A version-1 document (written before
/// the catalog existed, no `"relations"` key) parses as one relation-`1`
/// section with no definition; the recovery fold attaches the migrated
/// definition separately.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotRecord {
    /// Snapshot sequence number (monotone per data dir).
    pub seq: u64,
    /// How many journal events this snapshot covers; recovery replays only
    /// the events after this count.
    pub journal_events: u64,
    /// Where the coverage ends in the segmented journal. `None` on
    /// snapshots written before journal segmentation existed (a legacy dir);
    /// recovery then falls back to skipping `journal_events` events from
    /// the front of the whole journal.
    pub coverage: Option<SegmentPosition>,
    /// The catalog's next relation id (high-water mark + 1). Never
    /// decreases, even when relations are dropped.
    pub next_relation_id: u64,
    /// Per-relation control-plane state, ascending by relation id.
    pub relations: Vec<RelationSnapshot>,
}

/// One relation's control-plane state as captured by a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationSnapshot {
    /// Catalog relation id.
    pub relation: u64,
    /// The relation's definition. `None` only for the synthetic section a
    /// legacy (version-1) snapshot parses into, where the definition lives
    /// outside the snapshot.
    pub def: Option<RelationDefRecord>,
    /// The registry's next session id (high-water mark + 1). Never
    /// decreases, even when sessions unsubscribe.
    pub next_session_id: u64,
    /// Ticks processed so far.
    pub ticks: u64,
    /// Ticks shed by load coalescing so far.
    pub shed: u64,
    /// Live sessions, in registration order.
    pub sessions: Vec<SessionSnapshot>,
    /// Per-tick statistics history.
    pub history: Vec<StatsRecord>,
    /// Warm-start state per rate (rates in ascending bit order).
    pub warm: Vec<WarmRateRecord>,
    /// Last delivered answer per session, in registration order.
    pub answers: Vec<AnswerEntry>,
    /// Cost-calibration state at snapshot time (`None` on legacy snapshots
    /// and uncalibrated relations; parses as a cold model).
    pub calibration: Option<CalibrationState>,
}

/// One registered session as captured by a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSnapshot {
    /// Session id.
    pub session: u64,
    /// Scheduling priority.
    pub priority: u32,
    /// Ticks answered exactly.
    pub finals: u64,
    /// Ticks degraded to partial answers.
    pub partials: u64,
    /// Pool iterations this session drove.
    pub driven: u64,
    /// The registered query.
    pub query: Query,
}

/// The warm-start objects for one rate.
#[derive(Clone, Debug, PartialEq)]
pub struct WarmRateRecord {
    /// The rate (exact bits round-trip through the decimal encoding).
    pub rate: f64,
    /// Per-object state, aligned with the relation.
    pub objects: Vec<WarmObjectRecord>,
}

// ----------------------------------------------------------------- encode

fn num(x: f64) -> String {
    debug_assert!(x.is_finite(), "persisted floats must be finite");
    format!("{x}")
}

fn cmp_op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
    }
}

/// Serializes a [`Query`] to the same `{"kind":...}` object shape the wire
/// protocol uses (SUM weights always concrete here).
#[must_use]
pub fn query_json(q: &Query) -> String {
    match q {
        Query::Selection { op, constant } => format!(
            "{{\"kind\":\"selection\",\"op\":\"{}\",\"constant\":{}}}",
            cmp_op_str(*op),
            num(*constant)
        ),
        Query::Count {
            op,
            constant,
            slack,
        } => format!(
            "{{\"kind\":\"count\",\"op\":\"{}\",\"constant\":{},\"slack\":{slack}}}",
            cmp_op_str(*op),
            num(*constant)
        ),
        Query::Sum { weights, epsilon } => {
            let ws: Vec<String> = weights.iter().map(|w| num(*w)).collect();
            format!(
                "{{\"kind\":\"sum\",\"epsilon\":{},\"weights\":[{}]}}",
                num(*epsilon),
                ws.join(",")
            )
        }
        Query::Ave { epsilon } => format!("{{\"kind\":\"ave\",\"epsilon\":{}}}", num(*epsilon)),
        Query::Max { epsilon } => format!("{{\"kind\":\"max\",\"epsilon\":{}}}", num(*epsilon)),
        Query::Min { epsilon } => format!("{{\"kind\":\"min\",\"epsilon\":{}}}", num(*epsilon)),
        Query::TopK { k, epsilon } => format!(
            "{{\"kind\":\"topk\",\"k\":{k},\"epsilon\":{}}}",
            num(*epsilon)
        ),
        Query::Median { epsilon } => {
            format!("{{\"kind\":\"median\",\"epsilon\":{}}}", num(*epsilon))
        }
        Query::Percentile { phi, epsilon } => format!(
            "{{\"kind\":\"percentile\",\"phi\":{},\"epsilon\":{}}}",
            num(*phi),
            num(*epsilon)
        ),
        Query::HeavyHitters { k, epsilon } => format!(
            "{{\"kind\":\"heavyhitters\",\"k\":{k},\"epsilon\":{}}}",
            num(*epsilon)
        ),
    }
}

fn ids_json(ids: &[u32]) -> String {
    let items: Vec<String> = ids.iter().map(u32::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Serializes a [`QueryOutput`] using the wire protocol's `{"shape":...}`
/// object shapes.
#[must_use]
pub fn output_json(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Selected(ids) => {
            format!("{{\"shape\":\"selected\",\"ids\":{}}}", ids_json(ids))
        }
        QueryOutput::Extreme {
            bond_id,
            bounds,
            ties,
        } => format!(
            "{{\"shape\":\"extreme\",\"bond\":{bond_id},\"lo\":{},\"hi\":{},\"ties\":{}}}",
            num(bounds.lo()),
            num(bounds.hi()),
            ids_json(ties)
        ),
        QueryOutput::Aggregate { bounds } => format!(
            "{{\"shape\":\"aggregate\",\"lo\":{},\"hi\":{}}}",
            num(bounds.lo()),
            num(bounds.hi())
        ),
        QueryOutput::Ranked { members, ties } => {
            let rows: Vec<String> = members
                .iter()
                .map(|(id, b)| {
                    format!(
                        "{{\"bond\":{id},\"lo\":{},\"hi\":{}}}",
                        num(b.lo()),
                        num(b.hi())
                    )
                })
                .collect();
            format!(
                "{{\"shape\":\"ranked\",\"members\":[{}],\"ties\":{}}}",
                rows.join(","),
                ids_json(ties)
            )
        }
        QueryOutput::Count { lo, hi } => {
            format!("{{\"shape\":\"count\",\"lo\":{lo},\"hi\":{hi}}}")
        }
        QueryOutput::Heavy { cells, ties } => {
            let rows: Vec<String> = cells
                .iter()
                .map(|c| format!("{{\"cell\":{},\"count\":{}}}", c.cell, c.count))
                .collect();
            let tie_items: Vec<String> = ties.iter().map(i64::to_string).collect();
            format!(
                "{{\"shape\":\"heavy\",\"cells\":[{}],\"ties\":[{}]}}",
                rows.join(","),
                tie_items.join(",")
            )
        }
    }
}

fn answer_json(a: &AnswerRecord) -> String {
    match a {
        AnswerRecord::Final(out) => {
            format!("{{\"status\":\"final\",\"output\":{}}}", output_json(out))
        }
        AnswerRecord::Partial { lo, hi } => format!(
            "{{\"status\":\"partial\",\"lo\":{},\"hi\":{}}}",
            num(*lo),
            num(*hi)
        ),
    }
}

fn answer_entries_json(entries: &[AnswerEntry]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"session\":{},\"answer\":{}}}",
                e.session,
                answer_json(&e.answer)
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn warm_object_json(w: &WarmObjectRecord) -> String {
    format!(
        "{{\"lo\":{},\"hi\":{},\"converged\":{},\"iters\":{},\"cost\":{}}}",
        num(w.lo),
        num(w.hi),
        w.converged,
        w.iters,
        w.cost
    )
}

fn warm_objects_json(objs: &[WarmObjectRecord]) -> String {
    let rows: Vec<String> = objs.iter().map(warm_object_json).collect();
    format!("[{}]", rows.join(","))
}

fn bond_json(b: &BondRecord) -> String {
    format!(
        "{{\"id\":{},\"coupon\":{},\"maturity\":{},\"face\":{}}}",
        b.id,
        num(b.coupon),
        num(b.maturity),
        num(b.face)
    )
}

fn bonds_json(bonds: &[BondRecord]) -> String {
    let rows: Vec<String> = bonds.iter().map(bond_json).collect();
    format!("[{}]", rows.join(","))
}

/// Serializes a relation definition (without its catalog id).
#[must_use]
pub fn relation_def_json(def: &RelationDefRecord) -> String {
    let seed = def.seed.map_or(String::new(), |s| format!("\"seed\":{s},"));
    format!(
        "{{\"name\":\"{}\",{}\"bonds\":{}}}",
        escape(&def.name),
        seed,
        bonds_json(&def.bonds)
    )
}

fn stats_json(s: &StatsRecord) -> String {
    let hist: Vec<String> = s.hist.iter().map(u64::to_string).collect();
    format!(
        "{{\"rate\":{},\"work\":{{\"exec\":{},\"get\":{},\"store\":{},\"choose\":{}}},\"wall_nanos\":{},\"iterations\":{},\"operator\":\"{}\",\"objects\":{},\"hist\":[{}],\"cpu\":{{\"iterations\":{},\"pct_iterations\":{},\"mae\":{},\"mape\":{}}}}}",
        num(s.rate),
        s.work.exec_iter,
        s.work.get_state,
        s.work.store_state,
        s.work.choose_iter,
        s.wall_nanos,
        s.iterations,
        escape(&s.operator),
        s.objects,
        hist.join(","),
        s.cpu.iterations,
        s.cpu.pct_iterations,
        num(s.cpu.mean_abs_error),
        num(s.cpu.mean_abs_pct_error),
    )
}

/// Serializes calibration state. Cells ride as compact
/// `[observations, est_sum, actual_sum]` triples; the `"v"` field
/// versions the object so future layouts can be told apart from this one.
fn calibration_json(c: &CalibrationState) -> String {
    let cells: Vec<String> = c
        .cells
        .iter()
        .map(|cell| {
            format!(
                "[{},{},{}]",
                cell.observations, cell.est_sum, cell.actual_sum
            )
        })
        .collect();
    let preds: Vec<String> = c
        .predicates
        .iter()
        .map(|p| {
            format!(
                "{{\"op\":\"{}\",\"constant\":{},\"pass\":{},\"fail\":{}}}",
                cmp_op_str(p.op),
                num(p.constant),
                p.pass,
                p.fail
            )
        })
        .collect();
    format!(
        "{{\"v\":1,\"cells\":[{}],\"predicates\":[{}]}}",
        cells.join(","),
        preds.join(",")
    )
}

impl JournalEvent {
    /// Serializes the event to its single journal line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            JournalEvent::CreateRelation(r) => format!(
                "{{\"ev\":\"create_relation\",\"relation\":{},\"def\":{}}}",
                r.relation,
                relation_def_json(&r.def)
            ),
            JournalEvent::DropRelation { relation } => {
                format!("{{\"ev\":\"drop_relation\",\"relation\":{relation}}}")
            }
            JournalEvent::AddBond { relation, bond } => format!(
                "{{\"ev\":\"add_bond\",\"relation\":{relation},\"bond\":{}}}",
                bond_json(bond)
            ),
            JournalEvent::Subscribe {
                relation,
                session,
                priority,
                query,
            } => format!(
                "{{\"ev\":\"subscribe\",\"relation\":{relation},\"session\":{session},\"priority\":{priority},\"query\":{}}}",
                query_json(query)
            ),
            JournalEvent::Unsubscribe { relation, session } => {
                format!("{{\"ev\":\"unsubscribe\",\"relation\":{relation},\"session\":{session}}}")
            }
            JournalEvent::Tick(t) => {
                let sessions: Vec<String> = t
                    .sessions
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"session\":{},\"final\":{},\"driven\":{}}}",
                            s.session, s.is_final, s.driven
                        )
                    })
                    .collect();
                let calibration = t.calibration.as_ref().map_or(String::new(), |c| {
                    format!(",\"calibration\":{}", calibration_json(c))
                });
                format!(
                    "{{\"ev\":\"tick\",\"relation\":{},\"tick\":{},\"rate\":{},\"shed\":{},\"budget_exhausted\":{},\"stats\":{},\"sessions\":[{}],\"answers\":{},\"warm\":{}{}}}",
                    t.relation,
                    t.tick,
                    num(t.rate),
                    t.shed,
                    t.budget_exhausted,
                    stats_json(&t.stats),
                    sessions.join(","),
                    answer_entries_json(&t.answers),
                    warm_objects_json(&t.warm),
                    calibration,
                )
            }
            JournalEvent::SnapshotMarker { seq } => {
                format!("{{\"ev\":\"snapshot\",\"seq\":{seq}}}")
            }
        }
    }
}

fn relation_snapshot_json(r: &RelationSnapshot) -> String {
    let sessions: Vec<String> = r
        .sessions
        .iter()
        .map(|s| {
            format!(
                "{{\"session\":{},\"priority\":{},\"finals\":{},\"partials\":{},\"driven\":{},\"query\":{}}}",
                s.session, s.priority, s.finals, s.partials, s.driven,
                query_json(&s.query)
            )
        })
        .collect();
    let history: Vec<String> = r.history.iter().map(stats_json).collect();
    let warm: Vec<String> = r
        .warm
        .iter()
        .map(|w| {
            format!(
                "{{\"rate\":{},\"objects\":{}}}",
                num(w.rate),
                warm_objects_json(&w.objects)
            )
        })
        .collect();
    let def = r.def.as_ref().map_or(String::new(), |d| {
        format!("\"def\":{},", relation_def_json(d))
    });
    let calibration = r.calibration.as_ref().map_or(String::new(), |c| {
        format!(",\"calibration\":{}", calibration_json(c))
    });
    format!(
        "{{\"relation\":{},{}\"next_session_id\":{},\"ticks\":{},\"shed\":{},\"sessions\":[{}],\"history\":[{}],\"warm\":[{}],\"answers\":{}{}}}",
        r.relation,
        def,
        r.next_session_id,
        r.ticks,
        r.shed,
        sessions.join(","),
        history.join(","),
        warm.join(","),
        answer_entries_json(&r.answers),
        calibration,
    )
}

impl SnapshotRecord {
    /// Serializes the snapshot to one JSON document (always version 2).
    #[must_use]
    pub fn to_json(&self) -> String {
        // Coverage rides as two extra fields so legacy parsers (and legacy
        // files, which simply omit them) stay compatible.
        let coverage = self.coverage.map_or(String::new(), |p| {
            format!("\"segment\":{},\"segment_bytes\":{},", p.segment, p.bytes)
        });
        let relations: Vec<String> = self.relations.iter().map(relation_snapshot_json).collect();
        format!(
            "{{\"seq\":{},\"journal_events\":{},{}\"next_relation_id\":{},\"relations\":[{}]}}",
            self.seq,
            self.journal_events,
            coverage,
            self.next_relation_id,
            relations.join(","),
        )
    }
}

// ----------------------------------------------------------------- decode

fn f64_field(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric \"{key}\""))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer \"{key}\""))
}

/// An integer field that legacy (pre-catalog) records simply omit.
/// Present-but-malformed is still an error; absent yields `default`.
fn u64_field_or(doc: &Json, key: &str, default: u64) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("non-integer \"{key}\"")),
    }
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean \"{key}\""))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string \"{key}\""))
}

fn arr_field<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array \"{key}\""))
}

fn bounds_fields(doc: &Json) -> Result<Bounds, String> {
    Bounds::try_new(f64_field(doc, "lo")?, f64_field(doc, "hi")?).map_err(|e| e.to_string())
}

fn parse_cmp_op(doc: &Json) -> Result<CmpOp, String> {
    match str_field(doc, "op")? {
        ">" => Ok(CmpOp::Gt),
        ">=" => Ok(CmpOp::Ge),
        "<" => Ok(CmpOp::Lt),
        "<=" => Ok(CmpOp::Le),
        other => Err(format!("unknown op \"{other}\"")),
    }
}

/// Parses a [`Query`] from its `{"kind":...}` object shape (SUM weights
/// required — persisted queries are always resolved).
pub fn parse_query(doc: &Json) -> Result<Query, String> {
    match str_field(doc, "kind")? {
        "selection" => Ok(Query::Selection {
            op: parse_cmp_op(doc)?,
            constant: f64_field(doc, "constant")?,
        }),
        "count" => Ok(Query::Count {
            op: parse_cmp_op(doc)?,
            constant: f64_field(doc, "constant")?,
            slack: u64_field(doc, "slack")? as usize,
        }),
        "sum" => Ok(Query::Sum {
            weights: arr_field(doc, "weights")?
                .iter()
                .map(|w| w.as_f64().ok_or_else(|| "non-numeric weight".to_string()))
                .collect::<Result<Vec<f64>, String>>()?,
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "ave" => Ok(Query::Ave {
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "max" => Ok(Query::Max {
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "min" => Ok(Query::Min {
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "topk" => Ok(Query::TopK {
            k: u64_field(doc, "k")? as usize,
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "median" => Ok(Query::Median {
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "percentile" => Ok(Query::Percentile {
            phi: f64_field(doc, "phi")?,
            epsilon: f64_field(doc, "epsilon")?,
        }),
        "heavyhitters" => Ok(Query::HeavyHitters {
            k: u64_field(doc, "k")? as usize,
            epsilon: f64_field(doc, "epsilon")?,
        }),
        other => Err(format!("unknown query kind \"{other}\"")),
    }
}

/// A signed integer token. `Int` is exact; negative integers arrive as
/// `Num` and are accepted while `f64` still represents them exactly
/// (|n| < 2^53 — far beyond any realistic price cell).
fn i64_of(v: &Json) -> Option<i64> {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    match v {
        Json::Int(n) => i64::try_from(*n).ok(),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < EXACT => Some(*n as i64),
        _ => None,
    }
}

/// Parses a [`QueryOutput`] from its `{"shape":...}` object shape.
pub fn parse_output(doc: &Json) -> Result<QueryOutput, String> {
    let ids = |key: &str| -> Result<Vec<u32>, String> {
        arr_field(doc, key)?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("non-u32 entry in \"{key}\""))
            })
            .collect()
    };
    match str_field(doc, "shape")? {
        "selected" => Ok(QueryOutput::Selected(ids("ids")?)),
        "extreme" => Ok(QueryOutput::Extreme {
            bond_id: u32::try_from(u64_field(doc, "bond")?).map_err(|e| e.to_string())?,
            bounds: bounds_fields(doc)?,
            ties: ids("ties")?,
        }),
        "aggregate" => Ok(QueryOutput::Aggregate {
            bounds: bounds_fields(doc)?,
        }),
        "ranked" => Ok(QueryOutput::Ranked {
            members: arr_field(doc, "members")?
                .iter()
                .map(|m| {
                    Ok((
                        u32::try_from(u64_field(m, "bond")?).map_err(|e| e.to_string())?,
                        bounds_fields(m)?,
                    ))
                })
                .collect::<Result<Vec<(u32, Bounds)>, String>>()?,
            ties: ids("ties")?,
        }),
        "count" => Ok(QueryOutput::Count {
            lo: u64_field(doc, "lo")? as usize,
            hi: u64_field(doc, "hi")? as usize,
        }),
        "heavy" => Ok(QueryOutput::Heavy {
            cells: arr_field(doc, "cells")?
                .iter()
                .map(|c| {
                    Ok(HeavyCell {
                        cell: c
                            .get("cell")
                            .and_then(i64_of)
                            .ok_or_else(|| "non-i64 \"cell\"".to_string())?,
                        count: u64_field(c, "count")?,
                    })
                })
                .collect::<Result<Vec<HeavyCell>, String>>()?,
            ties: arr_field(doc, "ties")?
                .iter()
                .map(|t| i64_of(t).ok_or_else(|| "non-i64 entry in \"ties\"".to_string()))
                .collect::<Result<Vec<i64>, String>>()?,
        }),
        other => Err(format!("unknown output shape \"{other}\"")),
    }
}

fn parse_answer(doc: &Json) -> Result<AnswerRecord, String> {
    match str_field(doc, "status")? {
        "final" => Ok(AnswerRecord::Final(parse_output(
            doc.get("output").ok_or("missing \"output\"")?,
        )?)),
        "partial" => Ok(AnswerRecord::Partial {
            lo: f64_field(doc, "lo")?,
            hi: f64_field(doc, "hi")?,
        }),
        other => Err(format!("unknown answer status \"{other}\"")),
    }
}

fn parse_answer_entries(items: &[Json]) -> Result<Vec<AnswerEntry>, String> {
    items
        .iter()
        .map(|e| {
            Ok(AnswerEntry {
                session: u64_field(e, "session")?,
                answer: parse_answer(e.get("answer").ok_or("missing \"answer\"")?)?,
            })
        })
        .collect()
}

fn parse_warm_object(doc: &Json) -> Result<WarmObjectRecord, String> {
    let rec = WarmObjectRecord {
        lo: f64_field(doc, "lo")?,
        hi: f64_field(doc, "hi")?,
        converged: bool_field(doc, "converged")?,
        iters: u64_field(doc, "iters")?,
        cost: u64_field(doc, "cost")?,
    };
    // Validate the interval once here so every consumer can trust it.
    Bounds::try_new(rec.lo, rec.hi).map_err(|e| e.to_string())?;
    Ok(rec)
}

fn parse_warm_objects(items: &[Json]) -> Result<Vec<WarmObjectRecord>, String> {
    items.iter().map(parse_warm_object).collect()
}

fn parse_bond(doc: &Json) -> Result<BondRecord, String> {
    Ok(BondRecord {
        id: u32::try_from(u64_field(doc, "id")?).map_err(|e| e.to_string())?,
        coupon: f64_field(doc, "coupon")?,
        maturity: f64_field(doc, "maturity")?,
        face: f64_field(doc, "face")?,
    })
}

/// Parses a relation definition from its `{"name":...}` object shape.
pub fn parse_relation_def(doc: &Json) -> Result<RelationDefRecord, String> {
    let seed = match doc.get("seed") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("non-integer \"seed\"")?),
    };
    Ok(RelationDefRecord {
        name: str_field(doc, "name")?.to_string(),
        seed,
        bonds: arr_field(doc, "bonds")?
            .iter()
            .map(parse_bond)
            .collect::<Result<Vec<BondRecord>, String>>()?,
    })
}

fn parse_stats(doc: &Json) -> Result<StatsRecord, String> {
    let work = doc.get("work").ok_or("missing \"work\"")?;
    let cpu = doc.get("cpu").ok_or("missing \"cpu\"")?;
    let hist_items = arr_field(doc, "hist")?;
    if hist_items.len() != ITER_BUCKETS {
        return Err(format!(
            "\"hist\" must have {ITER_BUCKETS} buckets, got {}",
            hist_items.len()
        ));
    }
    let mut hist = [0u64; ITER_BUCKETS];
    for (slot, item) in hist.iter_mut().zip(hist_items) {
        *slot = item.as_u64().ok_or("non-integer histogram bucket")?;
    }
    Ok(StatsRecord {
        rate: f64_field(doc, "rate")?,
        work: WorkBreakdown {
            exec_iter: u64_field(work, "exec")?,
            get_state: u64_field(work, "get")?,
            store_state: u64_field(work, "store")?,
            choose_iter: u64_field(work, "choose")?,
        },
        wall_nanos: u64_field(doc, "wall_nanos")?,
        iterations: u64_field(doc, "iterations")?,
        operator: str_field(doc, "operator")?.to_string(),
        objects: u64_field(doc, "objects")?,
        hist,
        cpu: {
            let iterations = u64_field(cpu, "iterations")?;
            CpuEstimation {
                iterations,
                // Legacy records predate the eligible-iteration count; they
                // were written when every iteration was weighted equally,
                // so defaulting to the total preserves their combining math.
                pct_iterations: u64_field_or(cpu, "pct_iterations", iterations)?,
                mean_abs_error: f64_field(cpu, "mae")?,
                mean_abs_pct_error: f64_field(cpu, "mape")?,
            }
        },
    })
}

/// Parses persisted calibration state. Only version 1 exists; a record
/// with an unknown version is from a newer build and refused rather than
/// silently misread.
fn parse_calibration(doc: &Json) -> Result<CalibrationState, String> {
    let version = u64_field_or(doc, "v", 1)?;
    if version != 1 {
        return Err(format!("unknown calibration version {version}"));
    }
    let cells = arr_field(doc, "cells")?
        .iter()
        .map(|c| {
            let triple = c.as_array().ok_or("non-array calibration cell")?;
            if triple.len() != 3 {
                return Err(format!(
                    "calibration cell needs 3 entries, got {}",
                    triple.len()
                ));
            }
            let int = |i: usize| -> Result<u64, String> {
                triple[i]
                    .as_u64()
                    .ok_or_else(|| "non-integer calibration cell entry".to_string())
            };
            Ok(CalCell {
                observations: int(0)?,
                est_sum: int(1)?,
                actual_sum: int(2)?,
            })
        })
        .collect::<Result<Vec<CalCell>, String>>()?;
    if cells.len() != CAL_CLASSES {
        return Err(format!(
            "calibration needs {CAL_CLASSES} cells, got {}",
            cells.len()
        ));
    }
    let predicates = arr_field(doc, "predicates")?
        .iter()
        .map(|p| {
            Ok(PredicateCounterRecord {
                op: parse_cmp_op(p)?,
                constant: f64_field(p, "constant")?,
                pass: u64_field(p, "pass")?,
                fail: u64_field(p, "fail")?,
            })
        })
        .collect::<Result<Vec<PredicateCounterRecord>, String>>()?;
    Ok(CalibrationState { cells, predicates })
}

/// The optional `"calibration"` field shared by tick records and snapshot
/// relation sections: absent (legacy or uncalibrated) parses as `None`.
fn parse_calibration_opt(doc: &Json) -> Result<Option<CalibrationState>, String> {
    doc.get("calibration").map(parse_calibration).transpose()
}

impl JournalEvent {
    /// Parses one journal line.
    pub fn parse(line: &str) -> Result<JournalEvent, String> {
        let doc = Json::parse(line)?;
        match str_field(&doc, "ev")? {
            "create_relation" => Ok(JournalEvent::CreateRelation(Box::new(RelationRecord {
                relation: u64_field(&doc, "relation")?,
                def: parse_relation_def(doc.get("def").ok_or("missing \"def\"")?)?,
            }))),
            "drop_relation" => Ok(JournalEvent::DropRelation {
                relation: u64_field(&doc, "relation")?,
            }),
            "add_bond" => Ok(JournalEvent::AddBond {
                relation: u64_field(&doc, "relation")?,
                bond: parse_bond(doc.get("bond").ok_or("missing \"bond\"")?)?,
            }),
            "subscribe" => Ok(JournalEvent::Subscribe {
                relation: u64_field_or(&doc, "relation", 1)?,
                session: u64_field(&doc, "session")?,
                priority: u32::try_from(u64_field(&doc, "priority")?).map_err(|e| e.to_string())?,
                query: parse_query(doc.get("query").ok_or("missing \"query\"")?)?,
            }),
            "unsubscribe" => Ok(JournalEvent::Unsubscribe {
                relation: u64_field_or(&doc, "relation", 1)?,
                session: u64_field(&doc, "session")?,
            }),
            "tick" => Ok(JournalEvent::Tick(Box::new(TickRecord {
                relation: u64_field_or(&doc, "relation", 1)?,
                tick: u64_field(&doc, "tick")?,
                rate: f64_field(&doc, "rate")?,
                shed: u64_field(&doc, "shed")?,
                budget_exhausted: bool_field(&doc, "budget_exhausted")?,
                stats: parse_stats(doc.get("stats").ok_or("missing \"stats\"")?)?,
                sessions: arr_field(&doc, "sessions")?
                    .iter()
                    .map(|s| {
                        Ok(SessionTickRecord {
                            session: u64_field(s, "session")?,
                            is_final: bool_field(s, "final")?,
                            driven: u64_field(s, "driven")?,
                        })
                    })
                    .collect::<Result<Vec<SessionTickRecord>, String>>()?,
                answers: parse_answer_entries(arr_field(&doc, "answers")?)?,
                warm: parse_warm_objects(arr_field(&doc, "warm")?)?,
                calibration: parse_calibration_opt(&doc)?,
            }))),
            "snapshot" => Ok(JournalEvent::SnapshotMarker {
                seq: u64_field(&doc, "seq")?,
            }),
            other => Err(format!("unknown journal event \"{other}\"")),
        }
    }
}

/// Parses the per-relation body fields shared by a v2 relation section
/// and (at the document's top level) a legacy v1 snapshot.
fn parse_relation_body(doc: &Json, relation: u64) -> Result<RelationSnapshot, String> {
    let def = match doc.get("def") {
        None => None,
        Some(d) => Some(parse_relation_def(d)?),
    };
    Ok(RelationSnapshot {
        relation,
        def,
        next_session_id: u64_field(doc, "next_session_id")?,
        ticks: u64_field(doc, "ticks")?,
        shed: u64_field(doc, "shed")?,
        sessions: arr_field(doc, "sessions")?
            .iter()
            .map(|s| {
                Ok(SessionSnapshot {
                    session: u64_field(s, "session")?,
                    priority: u32::try_from(u64_field(s, "priority")?)
                        .map_err(|e| e.to_string())?,
                    finals: u64_field(s, "finals")?,
                    partials: u64_field(s, "partials")?,
                    driven: u64_field(s, "driven")?,
                    query: parse_query(s.get("query").ok_or("missing \"query\"")?)?,
                })
            })
            .collect::<Result<Vec<SessionSnapshot>, String>>()?,
        history: arr_field(doc, "history")?
            .iter()
            .map(parse_stats)
            .collect::<Result<Vec<StatsRecord>, String>>()?,
        warm: arr_field(doc, "warm")?
            .iter()
            .map(|w| {
                Ok(WarmRateRecord {
                    rate: f64_field(w, "rate")?,
                    objects: parse_warm_objects(arr_field(w, "objects")?)?,
                })
            })
            .collect::<Result<Vec<WarmRateRecord>, String>>()?,
        answers: parse_answer_entries(arr_field(doc, "answers")?)?,
        calibration: parse_calibration_opt(doc)?,
    })
}

impl SnapshotRecord {
    /// Parses a snapshot document — version 2 (`"relations"` present) or
    /// legacy version 1, which becomes a single relation-`1` section with
    /// no inline definition.
    pub fn parse(text: &str) -> Result<SnapshotRecord, String> {
        let doc = Json::parse(text)?;
        let coverage = match (doc.get("segment"), doc.get("segment_bytes")) {
            (Some(seg), Some(bytes)) => Some(SegmentPosition {
                segment: seg.as_u64().ok_or("non-integer \"segment\"")?,
                bytes: bytes.as_u64().ok_or("non-integer \"segment_bytes\"")?,
            }),
            // Legacy snapshot: written before journal segmentation.
            (None, None) => None,
            _ => {
                return Err(
                    "coverage needs both \"segment\" and \"segment_bytes\" or neither".to_string(),
                )
            }
        };
        let seq = u64_field(&doc, "seq")?;
        let journal_events = u64_field(&doc, "journal_events")?;
        let (next_relation_id, relations) = match doc.get("relations") {
            Some(items) => (
                u64_field(&doc, "next_relation_id")?,
                items
                    .as_array()
                    .ok_or("non-array \"relations\"")?
                    .iter()
                    .map(|r| parse_relation_body(r, u64_field(r, "relation")?))
                    .collect::<Result<Vec<RelationSnapshot>, String>>()?,
            ),
            // Legacy (v1) snapshot: one implicit relation with id 1.
            None => (2, vec![parse_relation_body(&doc, 1)?]),
        };
        Ok(SnapshotRecord {
            seq,
            journal_events,
            coverage,
            next_relation_id,
            relations,
        })
    }
}

// ------------------------------------------------- TickStats conversions

/// Maps a persisted operator tag back to the known static names (the
/// in-memory [`TickStats`] carries `&'static str`). Unrecognized tags fall
/// back to `"shared_pool"`, the only operator the server's shared scheduler
/// reports today.
#[must_use]
pub fn static_operator(name: &str) -> &'static str {
    match name {
        "selection" => "selection",
        "sum" => "sum",
        "ave" => "ave",
        "max" => "max",
        "min" => "min",
        "topk" => "topk",
        "count" => "count",
        "hybrid_sum" => "hybrid_sum",
        "median" => "median",
        "percentile" => "percentile",
        "heavyhitters" => "heavyhitters",
        _ => "shared_pool",
    }
}

impl StatsRecord {
    /// Captures in-memory tick statistics for persistence.
    #[must_use]
    pub fn from_stats(stats: &TickStats) -> Self {
        Self {
            rate: stats.rate,
            work: stats.work,
            wall_nanos: u64::try_from(stats.wall.as_nanos()).unwrap_or(u64::MAX),
            iterations: stats.iterations,
            operator: stats.operator.to_string(),
            objects: stats.objects,
            hist: *stats.iter_histogram.buckets(),
            cpu: stats.cpu_est,
        }
    }

    /// Restores the in-memory tick statistics.
    #[must_use]
    pub fn to_stats(&self) -> TickStats {
        TickStats {
            rate: self.rate,
            work: self.work,
            wall: std::time::Duration::from_nanos(self.wall_nanos),
            iterations: self.iterations,
            operator: static_operator(&self.operator),
            objects: self.objects,
            iter_histogram: IterHistogram::from_buckets(self.hist),
            cpu_est: self.cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_stats() -> StatsRecord {
        StatsRecord {
            rate: 0.0583,
            work: WorkBreakdown {
                exec_iter: 921_088,
                get_state: 48,
                store_state: 415,
                choose_iter: 13_937,
            },
            wall_nanos: 123_456_789,
            iterations: 319,
            operator: "shared_pool".to_string(),
            objects: 48,
            hist: [1, 2, 3, 4, 5, 6, 7, 8, 9],
            cpu: CpuEstimation {
                iterations: 319,
                pct_iterations: 301,
                mean_abs_error: 12.5,
                mean_abs_pct_error: 0.03,
            },
        }
    }

    fn sample_calibration() -> CalibrationState {
        let mut cells = vec![CalCell::default(); CAL_CLASSES];
        cells[7] = CalCell {
            observations: 41,
            est_sum: 5_120,
            actual_sum: 7_730,
        };
        cells[9] = CalCell {
            observations: 3,
            est_sum: 900,
            actual_sum: 450,
        };
        CalibrationState {
            cells,
            predicates: vec![
                PredicateCounterRecord {
                    op: CmpOp::Gt,
                    constant: 100.25,
                    pass: 18,
                    fail: 30,
                },
                PredicateCounterRecord {
                    op: CmpOp::Le,
                    constant: 99.058_300_000_000_01,
                    pass: 0,
                    fail: 7,
                },
            ],
        }
    }

    fn sample_tick() -> TickRecord {
        TickRecord {
            relation: 1,
            tick: 7,
            rate: 0.0583,
            shed: 2,
            budget_exhausted: true,
            stats: sample_stats(),
            sessions: vec![
                SessionTickRecord {
                    session: 1,
                    is_final: true,
                    driven: 100,
                },
                SessionTickRecord {
                    session: 3,
                    is_final: false,
                    driven: 0,
                },
            ],
            answers: vec![
                AnswerEntry {
                    session: 1,
                    answer: AnswerRecord::Final(QueryOutput::Extreme {
                        bond_id: 45,
                        bounds: Bounds::new(123.318_127_050_003_1, 123.566_607_748_983_66),
                        ties: vec![2, 9],
                    }),
                },
                AnswerEntry {
                    session: 3,
                    answer: AnswerRecord::Partial {
                        lo: 5132.5,
                        hi: 5174.8,
                    },
                },
            ],
            warm: vec![
                WarmObjectRecord {
                    lo: 88.80101456519986,
                    hi: 88.85679684433053,
                    converged: true,
                    iters: 17,
                    cost: 40_231,
                },
                WarmObjectRecord {
                    lo: 90.0,
                    hi: 110.0,
                    converged: false,
                    iters: 0,
                    cost: 512,
                },
            ],
            calibration: Some(sample_calibration()),
        }
    }

    fn sample_def() -> RelationDefRecord {
        RelationDefRecord {
            name: "energy".to_string(),
            seed: Some(1994),
            bonds: vec![
                BondRecord {
                    id: 0,
                    coupon: 0.05,
                    maturity: 7.5,
                    face: 100.0,
                },
                BondRecord {
                    id: 1,
                    coupon: 0.0325,
                    maturity: 30.0,
                    face: 1_000.0,
                },
            ],
        }
    }

    #[test]
    fn every_journal_event_round_trips() {
        let events = [
            JournalEvent::CreateRelation(Box::new(RelationRecord {
                relation: 2,
                def: sample_def(),
            })),
            JournalEvent::CreateRelation(Box::new(RelationRecord {
                relation: 3,
                def: RelationDefRecord {
                    name: "weird \"name\"\n".to_string(),
                    seed: None,
                    bonds: Vec::new(),
                },
            })),
            JournalEvent::DropRelation { relation: 2 },
            JournalEvent::AddBond {
                relation: 3,
                bond: BondRecord {
                    id: 7,
                    coupon: 0.041,
                    maturity: 12.0,
                    face: 250.0,
                },
            },
            JournalEvent::Subscribe {
                relation: 1,
                session: 4,
                priority: 2,
                query: Query::Sum {
                    weights: vec![1.0, 0.25, -3.5],
                    epsilon: 50.0,
                },
            },
            JournalEvent::Subscribe {
                relation: 2,
                session: 5,
                priority: 1,
                query: Query::Selection {
                    op: CmpOp::Ge,
                    constant: 100.0,
                },
            },
            JournalEvent::Subscribe {
                relation: 1,
                session: 6,
                priority: 3,
                query: Query::Count {
                    op: CmpOp::Lt,
                    constant: 99.5,
                    slack: 4,
                },
            },
            JournalEvent::Subscribe {
                relation: 1,
                session: 7,
                priority: 1,
                query: Query::TopK { k: 5, epsilon: 1.0 },
            },
            JournalEvent::Subscribe {
                relation: 1,
                session: 8,
                priority: 1,
                query: Query::Ave { epsilon: 0.5 },
            },
            JournalEvent::Subscribe {
                relation: 1,
                session: 9,
                priority: 1,
                query: Query::Min { epsilon: 0.25 },
            },
            JournalEvent::Unsubscribe {
                relation: 1,
                session: 4,
            },
            JournalEvent::Tick(Box::new(sample_tick())),
            JournalEvent::SnapshotMarker { seq: 12 },
        ];
        for ev in &events {
            let line = ev.to_line();
            assert!(!line.contains('\n'), "{line}");
            let back = JournalEvent::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(&back, ev, "{line}");
        }
    }

    #[test]
    fn legacy_events_without_relation_default_to_relation_one() {
        let sub = JournalEvent::parse(
            r#"{"ev":"subscribe","session":4,"priority":2,"query":{"kind":"max","epsilon":0.5}}"#,
        )
        .unwrap();
        match sub {
            JournalEvent::Subscribe { relation, .. } => assert_eq!(relation, 1),
            other => panic!("{other:?}"),
        }
        let unsub = JournalEvent::parse(r#"{"ev":"unsubscribe","session":4}"#).unwrap();
        assert_eq!(
            unsub,
            JournalEvent::Unsubscribe {
                relation: 1,
                session: 4
            }
        );
        // Catalog events are new-format only: relation is required there.
        assert!(JournalEvent::parse(r#"{"ev":"drop_relation"}"#).is_err());
    }

    #[test]
    fn every_output_shape_round_trips() {
        let outputs = [
            QueryOutput::Selected(vec![1, 2, 37]),
            QueryOutput::Extreme {
                bond_id: 45,
                bounds: Bounds::new(123.318_127_050_003_1, 123.566_607_748_983_66),
                ties: vec![],
            },
            QueryOutput::Aggregate {
                bounds: Bounds::new(5_132.538_654_318_307, 5_174.847_830_908_930_5),
            },
            QueryOutput::Ranked {
                members: vec![
                    (45, Bounds::new(123.3, 123.6)),
                    (9, Bounds::new(88.8, 88.9)),
                ],
                ties: vec![3],
            },
            QueryOutput::Count { lo: 37, hi: 41 },
        ];
        for out in &outputs {
            let text = output_json(out);
            let back = parse_output(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, out, "{text}");
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = SnapshotRecord {
            seq: 3,
            journal_events: 41,
            coverage: Some(SegmentPosition {
                segment: 4,
                bytes: 1_234,
            }),
            next_relation_id: 3,
            relations: vec![
                RelationSnapshot {
                    relation: 1,
                    def: Some(RelationDefRecord {
                        name: "default".to_string(),
                        seed: Some(42),
                        bonds: sample_def().bonds,
                    }),
                    next_session_id: 9,
                    ticks: 12,
                    shed: 1,
                    sessions: vec![SessionSnapshot {
                        session: 2,
                        priority: 4,
                        finals: 10,
                        partials: 2,
                        driven: 4_021,
                        query: Query::Max { epsilon: 0.0101 },
                    }],
                    history: vec![sample_stats(), sample_stats()],
                    warm: vec![WarmRateRecord {
                        rate: 0.0583,
                        objects: sample_tick().warm,
                    }],
                    answers: vec![AnswerEntry {
                        session: 2,
                        answer: AnswerRecord::Partial { lo: 1.0, hi: 2.0 },
                    }],
                    calibration: Some(sample_calibration()),
                },
                RelationSnapshot {
                    relation: 2,
                    def: Some(sample_def()),
                    next_session_id: 1,
                    ticks: 0,
                    shed: 0,
                    sessions: Vec::new(),
                    history: Vec::new(),
                    warm: Vec::new(),
                    answers: Vec::new(),
                    calibration: None,
                },
            ],
        };
        let text = snap.to_json();
        let back = SnapshotRecord::parse(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn legacy_v1_snapshot_parses_as_a_single_default_relation_shell() {
        // A snapshot exactly as PR-4/5 servers wrote it: flat fields, no
        // "relations" array, no coverage.
        let text = r#"{"seq":1,"journal_events":7,"next_session_id":3,"ticks":2,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[]}"#;
        let snap = SnapshotRecord::parse(text).unwrap();
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.journal_events, 7);
        assert_eq!(snap.coverage, None);
        assert_eq!(snap.next_relation_id, 2);
        assert_eq!(snap.relations.len(), 1);
        let rel = &snap.relations[0];
        assert_eq!(rel.relation, 1);
        assert_eq!(rel.def, None, "v1 snapshots carry no inline definition");
        assert_eq!(rel.next_session_id, 3);
        assert_eq!(rel.ticks, 2);
    }

    #[test]
    fn half_specified_coverage_is_rejected() {
        let err = SnapshotRecord::parse(
            r#"{"seq":1,"journal_events":0,"segment":2,"next_session_id":1,"ticks":0,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[]}"#,
        )
        .unwrap_err();
        assert!(err.contains("segment_bytes"), "{err}");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let rate = 0.058_300_000_000_000_01_f64;
        let ev = JournalEvent::Tick(Box::new(TickRecord {
            rate,
            ..sample_tick()
        }));
        match JournalEvent::parse(&ev.to_line()).unwrap() {
            JournalEvent::Tick(t) => assert_eq!(t.rate.to_bits(), rate.to_bits()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_record_restores_tick_stats() {
        let rec = sample_stats();
        let stats = rec.to_stats();
        assert_eq!(stats.operator, "shared_pool");
        assert_eq!(stats.wall, Duration::from_nanos(123_456_789));
        assert_eq!(stats.iter_histogram.buckets(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let back = StatsRecord::from_stats(&stats);
        assert_eq!(back, rec);
    }

    #[test]
    fn legacy_tick_without_calibration_or_pct_iterations_parses_cold() {
        // A tick record exactly as PR 4–9 servers wrote it: no
        // "calibration" field and a "cpu" object without "pct_iterations".
        let line = r#"{"ev":"tick","relation":1,"tick":3,"rate":0.05,"shed":0,"budget_exhausted":false,"stats":{"rate":0.05,"work":{"exec":10,"get":1,"store":1,"choose":2},"wall_nanos":5,"iterations":4,"operator":"shared_pool","objects":2,"hist":[1,1,0,0,0,0,0,0,0],"cpu":{"iterations":4,"mae":1.5,"mape":0.2}},"sessions":[],"answers":[],"warm":[]}"#;
        match JournalEvent::parse(line).unwrap() {
            JournalEvent::Tick(t) => {
                assert_eq!(t.calibration, None, "legacy ticks are uncalibrated");
                assert_eq!(
                    t.stats.cpu.pct_iterations, 4,
                    "legacy pct weighting defaults to the total iteration count"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn legacy_snapshot_relation_without_calibration_parses_cold() {
        let text = r#"{"seq":1,"journal_events":0,"next_relation_id":2,"relations":[{"relation":1,"next_session_id":1,"ticks":0,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[]}]}"#;
        let snap = SnapshotRecord::parse(text).unwrap();
        assert_eq!(snap.relations[0].calibration, None);
    }

    #[test]
    fn malformed_calibration_is_rejected_not_defaulted() {
        let bad_version = r#"{"seq":1,"journal_events":0,"next_relation_id":2,"relations":[{"relation":1,"next_session_id":1,"ticks":0,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[],"calibration":{"v":9,"cells":[],"predicates":[]}}]}"#;
        let err = SnapshotRecord::parse(bad_version).unwrap_err();
        assert!(err.contains("calibration version"), "{err}");
        let wrong_cells = r#"{"seq":1,"journal_events":0,"next_relation_id":2,"relations":[{"relation":1,"next_session_id":1,"ticks":0,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[],"calibration":{"v":1,"cells":[[1,2,3]],"predicates":[]}}]}"#;
        let err = SnapshotRecord::parse(wrong_cells).unwrap_err();
        assert!(err.contains("cells"), "{err}");
    }

    #[test]
    fn calibration_state_round_trips_bit_exactly() {
        let cal = sample_calibration();
        let text = calibration_json(&cal);
        let back = parse_calibration(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cal);
        // The predicate constant is float: assert bit identity explicitly.
        assert_eq!(
            back.predicates[1].constant.to_bits(),
            cal.predicates[1].constant.to_bits()
        );
    }

    #[test]
    fn unknown_operator_tags_degrade_to_shared_pool() {
        assert_eq!(static_operator("mystery"), "shared_pool");
        assert_eq!(static_operator("max"), "max");
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(JournalEvent::parse("not json").is_err());
        assert!(JournalEvent::parse(r#"{"ev":"warp"}"#).is_err());
        assert!(JournalEvent::parse(r#"{"ev":"subscribe","session":1}"#).is_err());
        assert!(SnapshotRecord::parse(r#"{"seq":1}"#).is_err());
        // Inverted bounds are corrupt, not a panic.
        assert!(parse_warm_object(
            &Json::parse(r#"{"lo":2,"hi":1,"converged":false,"iters":0,"cost":0}"#).unwrap()
        )
        .is_err());
    }
}
