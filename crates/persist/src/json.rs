//! A minimal JSON value, parser and escaper — just enough for the
//! newline-delimited line protocol and the on-disk journal/snapshot
//! records, with no dependency outside `std`.
//!
//! The parser is a plain recursive-descent scanner over bytes. It accepts
//! the full JSON grammar the protocol uses (objects, arrays, strings with
//! escapes, numbers, booleans, null) and reports errors with a byte
//! offset. Serialization lives with the callers (the server's protocol
//! builders and this crate's [`crate::record`] codecs); this module only
//! *reads*.
//!
//! This module originally lived in `va-server`; it moved here so the
//! journal and snapshot codecs can share it without a dependency cycle.
//! `va_server::json` re-exports it unchanged.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A nonnegative integer token (plain digits, no fraction, exponent or
    /// sign) that fits in `u64`, kept exact. Routing these through `f64`
    /// would silently round counters above 2^53 — the journal's cumulative
    /// cost and work meters can legitimately grow that large.
    Int(u64),
    /// Any other JSON number (carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` off objects too).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number. Integer tokens above
    /// 2^53 are rounded to the nearest representable `f64` — exact access
    /// goes through [`Json::as_u64`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a nonnegative integer. Integer tokens are exact over
    /// the full `u64` range; a value that only exists as an `f64`
    /// approximation (fractional, negative, exponent form, or at/above
    /// 2^53 where `f64` can no longer represent every integer) is refused
    /// rather than rounded.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Plain digit strings lex as exact integers (a digit string beyond
    // u64::MAX falls through to the f64 path).
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if !fields.iter().any(|(k, _)| *k == key) {
            fields.push((key, value));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_documents() {
        let doc = r#"{"type":"SUBSCRIBE","query":{"kind":"sum","epsilon":0.5,"weights":[1,2.5,-0e1]},"priority":2}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("SUBSCRIBE"));
        assert_eq!(v.get("priority").unwrap().as_u64(), Some(2));
        let q = v.get("query").unwrap();
        assert_eq!(q.get("epsilon").unwrap().as_f64(), Some(0.5));
        let w = q.get("weights").unwrap().as_array().unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[1].as_f64(), Some(2.5));
        assert_eq!(w[2].as_f64(), Some(-0.0));
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = Json::parse(r#"{"msg":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("msg").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("01abc").is_err());
    }

    #[test]
    fn accessors_are_shape_checked() {
        let v = Json::parse(r#"{"n":1.5,"b":true,"s":"x","a":[null]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "fractional");
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn integer_tokens_keep_exact_u64_precision() {
        let doc = format!(
            "{{\"max\":{},\"past53\":{},\"small\":7}}",
            u64::MAX,
            (1u64 << 53) + 1
        );
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("max").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("past53").unwrap().as_u64(), Some((1 << 53) + 1));
        assert_eq!(v.get("small").unwrap().as_u64(), Some(7));
        // Values that only exist as f64 approximations are refused by
        // as_u64, not rounded.
        assert_eq!(Json::parse("9007199254740993e0").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
        // Small exponent-form integers are still exact through f64.
        assert_eq!(Json::parse("1e10").unwrap().as_u64(), Some(10_000_000_000));
        // A digit string beyond u64::MAX degrades to f64, never to a
        // wrapped or saturated integer.
        let over = Json::parse("18446744073709551616").unwrap(); // 2^64
        assert_eq!(over.as_u64(), None);
        assert_eq!(over.as_f64(), Some(18_446_744_073_709_551_616.0));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let doc = format!("{{\"v\":\"{}\"}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("v").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn f64_display_round_trips_exactly() {
        // The record codecs rely on Rust's shortest-round-trip f64 Display:
        // format -> parse must reproduce the exact bits.
        for x in [
            0.0583,
            123.318_127_050_003_1,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            -0.0,
            1e308,
        ] {
            let text = format!("{x}");
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }
}
