//! `va-persist`: the durability layer for `va-server`.
//!
//! A va-server restart used to drop every subscription and rebuild every
//! result object from iteration zero — the single most wasteful failure
//! mode a system built on "iterations are expensive, bounds are reusable"
//! can have. This crate makes the server's control plane durable with two
//! std-only pieces:
//!
//! * an append-only newline-JSON **write-ahead journal**
//!   ([`journal::Journal`]) of control-plane events — `subscribe`,
//!   `unsubscribe`, `tick`, `snapshot` markers — fsync'd before the
//!   corresponding state change commits, and
//! * periodic atomic **snapshots** ([`snapshot`]) capturing the session
//!   registry (queries, priorities, the monotone `SessionId` high-water
//!   mark), per-tick statistics history, last answers, and per-rate
//!   **warm-start state**: each pool object's last bounds, iteration depth
//!   and accumulated work, so a recovered server re-admits objects at
//!   their achieved accuracy instead of re-iterating from scratch.
//!
//! The journal is a *redo log of outcomes*: tick events record what
//! execution already produced, so replay is pure bookkeeping — no model
//! invocation, no iteration — and recovered accounting is bit-identical
//! to the uninterrupted run. Recovery ([`Store::open`]) loads the newest
//! valid snapshot, replays the journal tail, and tolerates a torn final
//! record by truncating it (reported via
//! [`Recovery::truncated_bytes`] and surfaced as a `vao::trace` recovery
//! event by the server). See `docs/PERSISTENCE.md` for the formats and
//! semantics, field by field.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod journal;
pub mod json;
pub mod record;
pub mod snapshot;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use journal::CompactionReport;
use journal::{Coverage, Journal};
use record::{JournalEvent, SegmentPosition, SnapshotRecord, WarmObjectRecord};

/// Errors raised by the durability layer.
///
/// Payloads are plain strings so the error stays `Clone + PartialEq` and
/// embeds cleanly in `va_server::ServerError`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O operation failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// The OS error.
        detail: String,
    },
    /// Persisted data failed validation somewhere a torn final record
    /// cannot explain.
    Corrupt {
        /// The file involved.
        path: String,
        /// What failed to parse or validate.
        detail: String,
    },
    /// The data dir was written by a server with a different relation or
    /// pricer configuration. Recovering would apply warm bounds journaled
    /// for *other* bonds as if they were this universe's — silent answer
    /// corruption — so the open is refused outright.
    Mismatch {
        /// The metadata file involved.
        path: String,
        /// The fingerprint this server computed.
        expected: u64,
        /// The fingerprint persisted in the data dir.
        found: u64,
    },
    /// The data dir's on-disk layout is ambiguous or mixed-generation —
    /// e.g. a legacy single-relation `meta.json` alongside catalog journal
    /// events, or a catalog-format dir opened through a legacy bootstrap
    /// path. Guessing which generation wins could attach journaled state
    /// to the wrong relation, so the open is refused.
    Layout {
        /// The directory (or file) whose layout is ambiguous.
        path: String,
        /// What made the layout ambiguous.
        detail: String,
    },
}

impl PersistError {
    pub(crate) fn io(path: &Path, e: &std::io::Error) -> Self {
        PersistError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }

    pub(crate) fn corrupt(path: &Path, detail: String) -> Self {
        PersistError::Corrupt {
            path: path.display().to_string(),
            detail,
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
            PersistError::Corrupt { path, detail } => {
                write!(f, "corrupt persistent state in {path}: {detail}")
            }
            PersistError::Mismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "fingerprint mismatch in {path}: data dir was written for \
                 fingerprint {found:#018x} but this server computes \
                 {expected:#018x} (different relation or pricer); refusing \
                 to recover foreign warm state"
            ),
            PersistError::Layout { path, detail } => {
                write!(f, "ambiguous data dir layout in {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Warm-start state per rate, keyed by `f64::to_bits` of the rate so the
/// map is exact and deterministically ordered.
pub type WarmMap = BTreeMap<u64, Vec<WarmObjectRecord>>;

/// What [`Store::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The newest valid snapshot, if any exists.
    pub snapshot: Option<SnapshotRecord>,
    /// Journal events after the snapshot's coverage, in append order.
    pub tail: Vec<JournalEvent>,
    /// Bytes of torn final journal record truncated away (0 on a clean
    /// open).
    pub truncated_bytes: u64,
    /// Paths of snapshot files newer than the one recovery used that
    /// could not be read or parsed. Empty on a healthy dir; non-empty
    /// means the newest snapshot was lost to corruption and recovery fell
    /// back to an older one (a longer replay, not lost data). The files
    /// are removed at the next snapshot prune.
    pub skipped_snapshots: Vec<String>,
    /// Stale `*.tmp` files (crash leftovers from atomic writes) swept
    /// away before recovery started.
    pub swept_tmp_files: u64,
}

impl Recovery {
    /// Whether anything at all was recovered (fresh dirs recover nothing).
    #[must_use]
    pub fn is_fresh(&self) -> bool {
        self.snapshot.is_none() && self.tail.is_empty()
    }

    /// Number of journal events replayed on top of the snapshot.
    #[must_use]
    pub fn replayed_events(&self) -> u64 {
        self.tail.len() as u64
    }

    /// Sequence number of the snapshot recovery started from.
    #[must_use]
    pub fn snapshot_seq(&self) -> Option<u64> {
        self.snapshot.as_ref().map(|s| s.seq)
    }

    /// Number of corrupt newer snapshots recovery had to skip.
    #[must_use]
    pub fn skipped_snapshot_count(&self) -> u64 {
        self.skipped_snapshots.len() as u64
    }

    /// Folds the recovered warm-start state, one map per relation: each
    /// relation's snapshot per-rate entries, then each replayed tick's
    /// end-of-tick state replacing the entry for its relation and rate.
    /// The result is identical to the maps an uninterrupted server would
    /// hold in memory — which is what makes post-recovery ticks
    /// bit-identical to the golden run.
    #[must_use]
    pub fn warm_maps(&self) -> BTreeMap<u64, WarmMap> {
        let mut maps: BTreeMap<u64, WarmMap> = BTreeMap::new();
        if let Some(snap) = &self.snapshot {
            for rel in &snap.relations {
                let map = maps.entry(rel.relation).or_default();
                for entry in &rel.warm {
                    map.insert(entry.rate.to_bits(), entry.objects.clone());
                }
            }
        }
        for ev in &self.tail {
            if let JournalEvent::Tick(t) = ev {
                maps.entry(t.relation)
                    .or_default()
                    .insert(t.rate.to_bits(), t.warm.clone());
            }
        }
        maps
    }
}

/// Name of the fingerprint metadata file inside a data dir.
pub const META_FILE: &str = "meta.json";

/// One cached relation binding inside a catalog-format [`Meta::V2`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaRelation {
    /// The relation's catalog id.
    pub relation: u64,
    /// FNV-1a fingerprint over the pricer *and* this relation's bonds.
    pub fingerprint: u64,
}

/// The identity metadata persisted in [`META_FILE`].
///
/// Version 1 (PR-4/5 single-relation dirs) binds the whole dir to one
/// `(pricer, relation)` fingerprint. Version 2 (catalog dirs) records the
/// pricer fingerprint — strictly validated at open — plus one cached
/// binding per relation. The per-relation entries are *cached* from the
/// authoritative journal: a crash between a catalog journal append and
/// the meta rewrite leaves them stale, and the opener heals them from the
/// replayed journal rather than refusing the dir.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Meta {
    /// Legacy single-relation metadata: `{"fingerprint":F}`.
    V1 {
        /// The combined pricer + relation fingerprint.
        fingerprint: u64,
    },
    /// Catalog metadata:
    /// `{"version":2,"pricer":P,"relations":[{"relation":N,"fingerprint":F},..]}`.
    V2 {
        /// FNV-1a fingerprint over the pricer configuration alone.
        pricer: u64,
        /// Cached per-relation fingerprint bindings, in relation-id order.
        relations: Vec<MetaRelation>,
    },
}

impl Meta {
    /// Serializes to the on-disk JSON form (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Meta::V1 { fingerprint } => format!("{{\"fingerprint\":{fingerprint}}}"),
            Meta::V2 { pricer, relations } => {
                let rels: Vec<String> = relations
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"relation\":{},\"fingerprint\":{}}}",
                            r.relation, r.fingerprint
                        )
                    })
                    .collect();
                format!(
                    "{{\"version\":2,\"pricer\":{pricer},\"relations\":[{}]}}",
                    rels.join(",")
                )
            }
        }
    }

    /// Parses either metadata generation.
    pub fn parse(text: &str) -> Result<Meta, String> {
        let doc = json::Json::parse(text.trim())?;
        if doc.get("version").is_some() || doc.get("relations").is_some() {
            let version = doc
                .get("version")
                .and_then(json::Json::as_u64)
                .ok_or("missing integer \"version\"")?;
            if version != 2 {
                return Err(format!("unsupported metadata version {version}"));
            }
            let pricer = doc
                .get("pricer")
                .and_then(json::Json::as_u64)
                .ok_or("missing integer \"pricer\"")?;
            let relations = doc
                .get("relations")
                .and_then(json::Json::as_array)
                .ok_or("missing array \"relations\"")?
                .iter()
                .map(|r| {
                    Ok(MetaRelation {
                        relation: r
                            .get("relation")
                            .and_then(json::Json::as_u64)
                            .ok_or("missing integer \"relation\"")?,
                        fingerprint: r
                            .get("fingerprint")
                            .and_then(json::Json::as_u64)
                            .ok_or("missing integer \"fingerprint\"")?,
                    })
                })
                .collect::<Result<Vec<MetaRelation>, String>>()?;
            Ok(Meta::V2 { pricer, relations })
        } else {
            Ok(Meta::V1 {
                fingerprint: doc
                    .get("fingerprint")
                    .and_then(json::Json::as_u64)
                    .ok_or("missing integer \"fingerprint\"")?,
            })
        }
    }
}

/// Probes a data dir's identity metadata without opening the store.
///
/// `None` means the metadata file does not exist (a fresh dir, or one
/// never opened durably). Callers use this to route between bootstrap
/// flavours — a [`Meta::V2`] dir is self-describing and must not have a
/// relation reimposed from command-line flags — before committing to a
/// full [`Store::open`] with its journal replay.
pub fn peek_meta(dir: &Path) -> Result<Option<Meta>, PersistError> {
    read_meta(&dir.join(META_FILE))
}

/// Reads the persisted metadata, `None` when the file does not exist.
fn read_meta(path: &Path) -> Result<Option<Meta>, PersistError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(path, &e)),
    };
    Meta::parse(&text)
        .map(Some)
        .map_err(|e| PersistError::corrupt(path, format!("metadata: {e}")))
}

/// Writes the metadata atomically (temp file + fsync + rename).
fn write_meta(dir: &Path, meta: &Meta) -> Result<(), PersistError> {
    use std::io::Write;
    let path = dir.join(META_FILE);
    let tmp = dir.join("meta.json.tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, &e))?;
        file.write_all(format!("{}\n", meta.to_json()).as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(|e| PersistError::io(&tmp, &e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| PersistError::io(&path, &e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Sweeps stale `*.tmp` files left behind by a crash between temp-create
/// and rename. Only the two names this crate itself writes are touched
/// (`meta.json.tmp`, `snapshot-*.json.tmp`); anything else in the dir is
/// not ours to delete.
fn sweep_tmp(dir: &Path) -> Result<u64, PersistError> {
    let mut swept = 0u64;
    let entries = std::fs::read_dir(dir).map_err(|e| PersistError::io(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io(dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = name == "meta.json.tmp"
            || (name.starts_with("snapshot-") && name.ends_with(".json.tmp"));
        if stale && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    Ok(swept)
}

/// An open data dir: the segmented journal plus the snapshot directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: Journal,
    next_seq: u64,
    /// Unparseable snapshot files recorded at open; removed at the next
    /// prune instead of counting toward the two snapshots kept.
    bad_snapshots: Vec<PathBuf>,
    /// Coverage of the newest durable snapshot. After the *next* snapshot
    /// is written this becomes the oldest retained snapshot's coverage —
    /// the compaction floor: every journal segment it fully covers can go.
    newest_coverage: Option<SegmentPosition>,
}

impl Store {
    /// Opens (creating if needed) the data dir at `dir`, recovering
    /// whatever state it holds: newest valid snapshot, journal tail,
    /// torn-record report, and whatever [`Meta`] generation the dir
    /// carries (`None` on a fresh dir).
    ///
    /// Identity *policy* — which fingerprints must match, which metadata
    /// generation is acceptable, when a legacy dir migrates — lives in the
    /// server layer, which knows the pricer and the catalog. This layer
    /// only reports what is on disk; callers that accept the dir should
    /// persist their verdict with [`Store::write_meta`].
    pub fn open(dir: &Path) -> Result<(Store, Recovery, Option<Meta>), PersistError> {
        std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, &e))?;
        let swept_tmp_files = sweep_tmp(dir)?;
        let snapshots = snapshot::load(dir)?;
        let coverage = snapshots.newest.as_ref().map(|s| match s.coverage {
            Some(position) => Coverage::Position {
                position,
                events: s.journal_events,
            },
            // Legacy snapshot (pre-segmentation): coverage is an event
            // count from the front of the whole journal.
            None => Coverage::Events(s.journal_events),
        });
        let (journal, load) = Journal::open(dir, coverage.as_ref())?;
        let meta = read_meta(&dir.join(META_FILE))?;
        // The next snapshot seq must clear every seq still on disk —
        // including an unparseable newest — or the write would collide
        // with the corpse.
        let next_seq = snapshots.max_seq.map_or(1, |seq| seq + 1);
        let newest_coverage = snapshots.newest.as_ref().and_then(|s| s.coverage);
        let skipped_snapshots = snapshots
            .skipped
            .iter()
            .map(|p| p.display().to_string())
            .collect();
        Ok((
            Store {
                dir: dir.to_path_buf(),
                journal,
                next_seq,
                bad_snapshots: snapshots.skipped,
                newest_coverage,
            },
            Recovery {
                snapshot: snapshots.newest,
                tail: load.events,
                truncated_bytes: load.truncated_bytes,
                skipped_snapshots,
                swept_tmp_files,
            },
            meta,
        ))
    }

    /// Persists `meta` atomically (temp file + fsync + rename + dir sync),
    /// replacing any previous metadata generation.
    pub fn write_meta(&self, meta: &Meta) -> Result<(), PersistError> {
        write_meta(&self.dir, meta)
    }

    /// Appends one event durably (fsync'd before return).
    pub fn append(&mut self, event: &JournalEvent) -> Result<(), PersistError> {
        self.journal.append(event)
    }

    /// Total intact events in the journal.
    #[must_use]
    pub fn journal_events(&self) -> u64 {
        self.journal.events()
    }

    /// The sequence number the next snapshot must carry.
    #[must_use]
    pub fn next_snapshot_seq(&self) -> u64 {
        self.next_seq
    }

    /// Where the journal currently ends (active segment + byte length).
    /// A snapshot built right now covers exactly this position; the caller
    /// stores it in [`SnapshotRecord::coverage`].
    #[must_use]
    pub fn journal_position(&self) -> SegmentPosition {
        self.journal.position()
    }

    /// Writes `snap` atomically, advances the snapshot sequence, prunes
    /// superseded/corrupt snapshot files, rotates the journal onto a fresh
    /// segment, and compacts segments no retained snapshot needs.
    ///
    /// The caller appends a [`JournalEvent::SnapshotMarker`] *first* (so
    /// `snap.journal_events` covers the marker); a clean shutdown thereby
    /// recovers with zero journal replay.
    ///
    /// Ordering is the crash-safety argument: the snapshot is durable
    /// (rename + dir fsync) *before* anything is deleted, and the
    /// compaction floor is the **previous** snapshot's coverage — the
    /// oldest of the two snapshots kept — so even if this snapshot later
    /// turns out corrupt, the fallback snapshot plus the surviving
    /// segments still replay the full history. A crash anywhere in the
    /// middle leaves extra files, never missing ones.
    pub fn write_snapshot(
        &mut self,
        snap: &SnapshotRecord,
    ) -> Result<CompactionReport, PersistError> {
        if snap.seq != self.next_seq {
            return Err(PersistError::corrupt(
                &self.dir.join(format!("snapshot-{}.json", snap.seq)),
                format!(
                    "snapshot seq {} but the store expects {} (snapshot seqs are monotone)",
                    snap.seq, self.next_seq
                ),
            ));
        }
        snapshot::write(&self.dir, snap)?;
        self.next_seq = snap.seq + 1;
        snapshot::prune(&self.dir, &self.bad_snapshots);
        self.bad_snapshots.clear();
        self.journal.rotate()?;
        // Compact up to the *previous* snapshot's coverage. When there is
        // no previous positional coverage (first snapshot ever, or the
        // previous one was a legacy record), nothing is deleted — the
        // whole journal stays until two coverage-bearing snapshots exist.
        let report = match self.newest_coverage {
            Some(oldest_retained) => self.journal.compact(oldest_retained),
            None => CompactionReport {
                live_segments: self.journal.live_segments(),
                ..CompactionReport::default()
            },
        };
        self.newest_coverage = snap.coverage;
        Ok(report)
    }

    /// The data dir this store operates in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("va-persist-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// The fingerprint these tests stamp into legacy metadata.
    const FP: u64 = 0xFEED_FACE_CAFE_BEEF;

    fn tick_event(tick: u64, rate: f64, lo: f64) -> JournalEvent {
        JournalEvent::Tick(Box::new(record::TickRecord {
            relation: 1,
            tick,
            rate,
            shed: 0,
            budget_exhausted: false,
            stats: record::StatsRecord {
                rate,
                work: vao::cost::WorkBreakdown::default(),
                wall_nanos: 1,
                iterations: 0,
                operator: "shared_pool".to_string(),
                objects: 0,
                hist: [0; va_stream::stats::ITER_BUCKETS],
                cpu: vao::trace::CpuEstimation::default(),
            },
            sessions: Vec::new(),
            answers: Vec::new(),
            warm: vec![record::WarmObjectRecord {
                lo,
                hi: lo + 1.0,
                converged: false,
                iters: tick,
                cost: 10 * tick,
            }],
            calibration: None,
        }))
    }

    /// A single-relation (id 1) snapshot section with the given counters.
    fn relation_section(ticks: u64, warm: Vec<record::WarmRateRecord>) -> record::RelationSnapshot {
        record::RelationSnapshot {
            relation: 1,
            def: None,
            next_session_id: 1,
            ticks,
            shed: 0,
            sessions: Vec::new(),
            history: Vec::new(),
            warm,
            answers: Vec::new(),
            calibration: None,
        }
    }

    #[test]
    fn fresh_dir_recovers_nothing() {
        let dir = tmp_dir("fresh");
        let (store, rec, meta) = Store::open(&dir).unwrap();
        assert!(rec.is_fresh());
        assert!(meta.is_none(), "fresh dirs carry no metadata yet");
        assert_eq!(rec.replayed_events(), 0);
        assert_eq!(rec.snapshot_seq(), None);
        assert_eq!(store.journal_events(), 0);
        assert_eq!(store.next_snapshot_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_skips_covered_events_on_recovery() {
        let dir = tmp_dir("skip");
        {
            let (mut store, _, _) = Store::open(&dir).unwrap();
            store.append(&tick_event(1, 0.05, 10.0)).unwrap();
            store.append(&tick_event(2, 0.06, 20.0)).unwrap();
            store
                .append(&JournalEvent::SnapshotMarker { seq: 1 })
                .unwrap();
            store
                .write_snapshot(&SnapshotRecord {
                    seq: 1,
                    journal_events: store.journal_events(),
                    coverage: Some(store.journal_position()),
                    next_relation_id: 2,
                    relations: vec![relation_section(
                        2,
                        vec![record::WarmRateRecord {
                            rate: 0.05,
                            objects: vec![record::WarmObjectRecord {
                                lo: 10.0,
                                hi: 11.0,
                                converged: false,
                                iters: 1,
                                cost: 10,
                            }],
                        }],
                    )],
                })
                .unwrap();
            store.append(&tick_event(3, 0.05, 30.0)).unwrap();
        }
        let (store, rec, _) = Store::open(&dir).unwrap();
        assert_eq!(rec.snapshot_seq(), Some(1));
        assert_eq!(rec.replayed_events(), 1, "only the post-snapshot tick");
        assert_eq!(store.next_snapshot_seq(), 2);
        // The replayed tick's warm state replaces the snapshot's for 0.05.
        let warm = &rec.warm_maps()[&1];
        assert_eq!(warm.len(), 1, "only rate 0.05 present");
        assert_eq!(warm[&0.05f64.to_bits()][0].lo, 30.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_maps_fold_snapshot_then_tail_per_relation() {
        let mut second = tick_event(5, 0.05, 7.0);
        if let JournalEvent::Tick(t) = &mut second {
            t.relation = 2;
        }
        let rec = Recovery {
            snapshot: Some(SnapshotRecord {
                seq: 1,
                journal_events: 0,
                coverage: None,
                next_relation_id: 3,
                relations: vec![relation_section(
                    0,
                    vec![
                        record::WarmRateRecord {
                            rate: 0.05,
                            objects: vec![record::WarmObjectRecord {
                                lo: 1.0,
                                hi: 2.0,
                                converged: true,
                                iters: 4,
                                cost: 40,
                            }],
                        },
                        record::WarmRateRecord {
                            rate: 0.07,
                            objects: Vec::new(),
                        },
                    ],
                )],
            }),
            tail: vec![tick_event(5, 0.05, 99.0), second],
            truncated_bytes: 0,
            skipped_snapshots: Vec::new(),
            swept_tmp_files: 0,
        };
        let maps = rec.warm_maps();
        assert_eq!(maps.len(), 2, "relation 2 appears from its tail tick");
        let warm = &maps[&1];
        assert_eq!(warm.len(), 2);
        assert_eq!(warm[&0.05f64.to_bits()][0].lo, 99.0, "tail wins");
        assert!(warm[&0.07f64.to_bits()].is_empty(), "snapshot entry kept");
        assert_eq!(
            maps[&2][&0.05f64.to_bits()][0].lo,
            7.0,
            "relations never share warm state"
        );
    }

    /// A minimal snapshot carrying the store's current coverage.
    fn plain_snapshot(store: &Store, ticks: u64) -> SnapshotRecord {
        SnapshotRecord {
            seq: store.next_snapshot_seq(),
            journal_events: store.journal_events(),
            coverage: Some(store.journal_position()),
            next_relation_id: 2,
            relations: vec![relation_section(ticks, Vec::new())],
        }
    }

    #[test]
    fn snapshot_covering_missing_events_is_corrupt() {
        let dir = tmp_dir("missing");
        {
            let (mut store, _, _) = Store::open(&dir).unwrap();
            store.append(&tick_event(1, 0.05, 1.0)).unwrap();
            store
                .append(&JournalEvent::SnapshotMarker { seq: 1 })
                .unwrap();
            let snap = plain_snapshot(&store, 1);
            store.write_snapshot(&snap).unwrap();
        }
        // Empty out the covered segment: its fsync'd history vanished.
        fs::write(dir.join(journal::segment_file(1)), b"").unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_snapshot_seq_is_corrupt_in_release_builds_too() {
        let dir = tmp_dir("seq");
        let (mut store, _, _) = Store::open(&dir).unwrap();
        let mut snap = plain_snapshot(&store, 0);
        snap.seq = 7; // store expects 1
        match store.write_snapshot(&snap) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("monotone"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Nothing was written.
        assert!(!dir.join("snapshot-7.json").exists());
        assert_eq!(store.next_snapshot_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_swept_at_open() {
        let dir = tmp_dir("sweep");
        {
            let _ = Store::open(&dir).unwrap();
        }
        fs::write(dir.join("meta.json.tmp"), b"{half").unwrap();
        fs::write(dir.join("snapshot-3.json.tmp"), b"{half").unwrap();
        // A foreign file is not ours to delete.
        fs::write(dir.join("notes.tmp"), b"keep me").unwrap();
        let (_, rec, _) = Store::open(&dir).unwrap();
        assert_eq!(rec.swept_tmp_files, 2);
        assert!(!dir.join("meta.json.tmp").exists());
        assert!(!dir.join("snapshot-3.json.tmp").exists());
        assert!(dir.join("notes.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_is_surfaced_and_never_collides() {
        let dir = tmp_dir("skipped");
        {
            let (mut store, _, _) = Store::open(&dir).unwrap();
            store.append(&tick_event(1, 0.05, 1.0)).unwrap();
            store
                .append(&JournalEvent::SnapshotMarker { seq: 1 })
                .unwrap();
            let snap = plain_snapshot(&store, 1);
            store.write_snapshot(&snap).unwrap();
            store.append(&tick_event(2, 0.06, 2.0)).unwrap();
        }
        // A corrupt snapshot newer than the good one.
        fs::write(dir.join("snapshot-2.json"), b"{garbage").unwrap();
        let (mut store, rec, _) = Store::open(&dir).unwrap();
        assert_eq!(rec.snapshot_seq(), Some(1), "fell back to the older one");
        assert_eq!(rec.skipped_snapshot_count(), 1);
        assert!(
            rec.skipped_snapshots[0].contains("snapshot-2.json"),
            "{:?}",
            rec.skipped_snapshots
        );
        // next_seq cleared the corpse's seq: the next write must not
        // collide with the still-on-disk corrupt file.
        assert_eq!(store.next_snapshot_seq(), 3);
        store
            .append(&JournalEvent::SnapshotMarker { seq: 3 })
            .unwrap();
        let snap = plain_snapshot(&store, 2);
        store.write_snapshot(&snap).unwrap();
        // The prune removed the corpse rather than counting it toward the
        // two kept.
        assert!(!dir.join("snapshot-2.json").exists());
        assert!(dir.join("snapshot-1.json").exists());
        assert!(dir.join("snapshot-3.json").exists());
        let (_, rec, _) = Store::open(&dir).unwrap();
        assert_eq!(rec.snapshot_seq(), Some(3));
        assert_eq!(rec.skipped_snapshot_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_bounds_the_journal_to_recent_segments() {
        let dir = tmp_dir("bounded");
        let (mut store, _, _) = Store::open(&dir).unwrap();
        let mut reclaimed = 0u64;
        for round in 1..=6u64 {
            for i in 0..4u64 {
                store
                    .append(&tick_event(round * 10 + i, 0.05, i as f64))
                    .unwrap();
            }
            store
                .append(&JournalEvent::SnapshotMarker { seq: round })
                .unwrap();
            let snap = plain_snapshot(&store, round * 4);
            let report = store.write_snapshot(&snap).unwrap();
            reclaimed += report.bytes_reclaimed;
            // Two retained snapshots -> at most their two replay windows
            // plus the fresh active segment survive on disk.
            assert!(
                report.live_segments <= 3,
                "round {round}: {} live segments",
                report.live_segments
            );
        }
        assert!(reclaimed > 0, "compaction reclaimed nothing");
        // Recovery replays only the tail, not all 30 events.
        let (_, rec, _) = Store::open(&dir).unwrap();
        assert_eq!(rec.snapshot_seq(), Some(6));
        assert_eq!(rec.replayed_events(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_single_file_dir_migrates_and_recovers() {
        let dir = tmp_dir("legacy-store");
        fs::create_dir_all(&dir).unwrap();
        // Fabricate a pre-segmentation dir: journal.jsonl + a snapshot
        // with no coverage fields + meta.json.
        let mut lines = String::new();
        for ev in [
            tick_event(1, 0.05, 1.0),
            JournalEvent::SnapshotMarker { seq: 1 },
            tick_event(2, 0.06, 2.0),
        ] {
            lines.push_str(&ev.to_line());
            lines.push('\n');
        }
        fs::write(dir.join(journal::LEGACY_JOURNAL_FILE), lines).unwrap();
        // A v1 snapshot exactly as a PR-4 server serialized it.
        fs::write(
            dir.join("snapshot-1.json"),
            r#"{"seq":1,"journal_events":2,"next_session_id":1,"ticks":1,"shed":0,"sessions":[],"history":[],"warm":[],"answers":[]}"#,
        )
        .unwrap();
        fs::write(dir.join(META_FILE), format!("{{\"fingerprint\":{FP}}}\n")).unwrap();

        let (mut store, rec, meta) = Store::open(&dir).unwrap();
        assert_eq!(
            meta,
            Some(Meta::V1 { fingerprint: FP }),
            "legacy metadata is surfaced, not silently upgraded"
        );
        assert_eq!(rec.snapshot_seq(), Some(1));
        assert_eq!(rec.replayed_events(), 1, "only the post-snapshot tick");
        assert_eq!(rec.warm_maps()[&1][&0.06f64.to_bits()][0].lo, 2.0);
        assert!(!dir.join(journal::LEGACY_JOURNAL_FILE).exists());
        assert!(dir.join(journal::segment_file(1)).exists());
        // The dir now participates in segmentation: snapshots carry
        // coverage and compaction kicks in once two of them exist.
        store
            .append(&JournalEvent::SnapshotMarker { seq: 2 })
            .unwrap();
        let snap = plain_snapshot(&store, 2);
        let report = store.write_snapshot(&snap).unwrap();
        assert_eq!(
            report.segments_deleted, 0,
            "legacy snapshot has no coverage floor yet"
        );
        store.append(&tick_event(3, 0.05, 3.0)).unwrap();
        store
            .append(&JournalEvent::SnapshotMarker { seq: 3 })
            .unwrap();
        let snap = plain_snapshot(&store, 3);
        let report = store.write_snapshot(&snap).unwrap();
        assert!(report.segments_deleted > 0, "now the old segments can go");
        let (_, rec, _) = Store::open(&dir).unwrap();
        assert_eq!(rec.snapshot_seq(), Some(3));
        assert_eq!(rec.replayed_events(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_meta_generations_round_trip() {
        let v1 = Meta::V1 { fingerprint: FP };
        assert_eq!(v1.to_json(), format!("{{\"fingerprint\":{FP}}}"));
        assert_eq!(Meta::parse(&v1.to_json()).unwrap(), v1);

        let v2 = Meta::V2 {
            pricer: 77,
            relations: vec![
                MetaRelation {
                    relation: 1,
                    fingerprint: FP,
                },
                MetaRelation {
                    relation: 3,
                    fingerprint: FP + 9,
                },
            ],
        };
        assert_eq!(Meta::parse(&v2.to_json()).unwrap(), v2);
        let empty = Meta::V2 {
            pricer: 77,
            relations: Vec::new(),
        };
        assert_eq!(Meta::parse(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn meta_rejects_malformed_or_future_generations() {
        assert!(Meta::parse("not json").is_err());
        assert!(Meta::parse("{}").is_err(), "neither generation's fields");
        assert!(
            Meta::parse(r#"{"version":3,"pricer":1,"relations":[]}"#).is_err(),
            "future versions are refused, not guessed at"
        );
        assert!(
            Meta::parse(r#"{"version":2,"relations":[]}"#).is_err(),
            "v2 requires the pricer fingerprint"
        );
        assert!(Meta::parse(r#"{"version":2,"pricer":1,"relations":[{"relation":1}]}"#).is_err());
    }

    #[test]
    fn write_meta_replaces_the_previous_generation_atomically() {
        let dir = tmp_dir("meta-rewrite");
        let (store, _, meta) = Store::open(&dir).unwrap();
        assert!(meta.is_none());
        store.write_meta(&Meta::V1 { fingerprint: FP }).unwrap();
        let v2 = Meta::V2 {
            pricer: 5,
            relations: vec![MetaRelation {
                relation: 1,
                fingerprint: FP,
            }],
        };
        store.write_meta(&v2).unwrap();
        let (_, _, meta) = Store::open(&dir).unwrap();
        assert_eq!(meta, Some(v2));
        assert!(!dir.join("meta.json.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_displays_name_the_path() {
        let e = PersistError::Io {
            path: "/tmp/x".to_string(),
            detail: "denied".to_string(),
        };
        assert!(e.to_string().contains("/tmp/x"));
        let e = PersistError::Corrupt {
            path: "j".to_string(),
            detail: "bad".to_string(),
        };
        assert!(e.to_string().contains("corrupt"));
        let e = PersistError::Mismatch {
            path: "m".to_string(),
            expected: 1,
            found: 2,
        };
        let text = e.to_string();
        assert!(text.contains("fingerprint mismatch"), "{text}");
        assert!(text.contains("0x0000000000000002"), "{text}");
        let e = PersistError::Layout {
            path: "d".to_string(),
            detail: "mixed generations".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("ambiguous data dir layout"), "{text}");
        assert!(text.contains("mixed generations"), "{text}");
    }
}
