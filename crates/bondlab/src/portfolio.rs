//! Portfolios: weighted bond holdings for SUM/AVE queries.
//!
//! Query Q2 of the paper ("find the value of my bond portfolio, which is a
//! weighted sum of bond prices") weights each price by the number of shares
//! held. The hot–cold weight schemes of §6.3 are generated in
//! `va-workloads`; this type just carries holdings.

use crate::dataset::BondUniverse;

/// Bond holdings aligned with a universe by position.
#[derive(Clone, Debug, PartialEq)]
pub struct Portfolio {
    shares: Vec<f64>,
}

impl Portfolio {
    /// Creates a portfolio from per-bond share counts.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite share counts.
    #[must_use]
    pub fn new(shares: Vec<f64>) -> Self {
        for (i, &s) in shares.iter().enumerate() {
            assert!(
                s.is_finite() && s >= 0.0,
                "share count {s} at position {i} must be finite and nonnegative"
            );
        }
        Self { shares }
    }

    /// Equal-weight portfolio: one share of each bond.
    #[must_use]
    pub fn equal_weight(universe: &BondUniverse) -> Self {
        Self::new(vec![1.0; universe.len()])
    }

    /// Per-bond share counts — the SUM VAO's weight vector.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.shares
    }

    /// Number of positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// Whether the portfolio holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Total shares held.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.shares.iter().sum()
    }

    /// Value of the portfolio given per-bond prices.
    ///
    /// # Panics
    ///
    /// Panics if `prices` is not aligned with the holdings.
    #[must_use]
    pub fn value(&self, prices: &[f64]) -> f64 {
        assert_eq!(prices.len(), self.shares.len(), "misaligned price vector");
        self.shares.iter().zip(prices).map(|(s, p)| s * p).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weight_matches_universe() {
        let u = BondUniverse::generate(10, 1);
        let p = Portfolio::equal_weight(&u);
        assert_eq!(p.len(), 10);
        assert_eq!(p.total_weight(), 10.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn value_is_weighted_sum() {
        let p = Portfolio::new(vec![2.0, 0.0, 3.0]);
        assert_eq!(p.value(&[10.0, 99.0, 1.0]), 23.0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn value_requires_aligned_prices() {
        let p = Portfolio::new(vec![1.0, 2.0]);
        let _ = p.value(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_shares() {
        let _ = Portfolio::new(vec![1.0, -2.0]);
    }
}
