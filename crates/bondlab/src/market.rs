//! Interest-rate market data.
//!
//! The paper drives its continuous queries with the 10-year Constant
//! Maturity U.S. Treasury yield for January 3–31, 1994, with new rates
//! derived from Treasury prices arriving every 1–4 minutes. The exact
//! series is licensed data (Global Financial Data), so this module ships a
//! synthetic stand-in at the correct level (the 10-year CMT opened January
//! 1994 around 5.8 %) with the same tick cadence. The experiments — like
//! the paper's (§6: "the following experiments show processing time for one
//! interest rate, the opening rate for Jan. 3, 1994") — are insensitive to
//! the exact values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One interest-rate observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateTick {
    /// Minutes since the series start.
    pub minutes: f64,
    /// The 10-year yield (continuous fraction, e.g. `0.0585`).
    pub rate: f64,
}

/// A daily interest-rate series with an intra-day tick generator.
#[derive(Clone, Debug)]
pub struct RateSeries {
    opens: Vec<f64>,
}

impl RateSeries {
    /// The synthetic January-1994-like series: 20 business days of 10-year
    /// CMT opening yields near 5.8 %.
    #[must_use]
    pub fn january_1994() -> Self {
        // Level and gentle drift consistent with the published monthly
        // averages for Jan 1994 (~5.75 %); exact daily values synthetic.
        let opens = vec![
            0.0583, 0.0581, 0.0579, 0.0578, 0.0577, 0.0575, 0.0574, 0.0576, 0.0578, 0.0577, 0.0575,
            0.0573, 0.0572, 0.0574, 0.0576, 0.0578, 0.0580, 0.0582, 0.0584, 0.0586,
        ];
        Self { opens }
    }

    /// The opening rate for the first day — the single rate the paper's
    /// timing experiments process.
    #[must_use]
    pub fn opening_rate(&self) -> f64 {
        self.opens[0]
    }

    /// Daily opening rates.
    #[must_use]
    pub fn daily_opens(&self) -> &[f64] {
        &self.opens
    }

    /// Highest and lowest openings (the paper re-ran its experiments at the
    /// high and low rates and saw the same trends).
    #[must_use]
    pub fn extremes(&self) -> (f64, f64) {
        let lo = self.opens.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self.opens.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// Generates `count` intra-day ticks starting from the opening rate:
    /// inter-arrival times uniform in 1–4 minutes (the paper observed a
    /// 2-minute average on real-time feeds), rate following a small
    /// mean-reverting random walk around the open. Deterministic per seed.
    #[must_use]
    pub fn intraday_ticks(&self, count: usize, seed: u64) -> Vec<RateTick> {
        let mut rng = StdRng::seed_from_u64(seed);
        let open = self.opening_rate();
        let mut t = 0.0;
        let mut rate = open;
        (0..count)
            .map(|_| {
                t += rng.gen_range(1.0..4.0);
                // ~0.5bp noise with reversion to the open.
                rate += 0.1 * (open - rate) + rng.gen_range(-0.00005..0.00005);
                RateTick { minutes: t, rate }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_at_the_1994_level() {
        let s = RateSeries::january_1994();
        assert_eq!(s.daily_opens().len(), 20);
        for &r in s.daily_opens() {
            assert!((0.055..0.062).contains(&r), "{r}");
        }
        assert!((s.opening_rate() - 0.0583).abs() < 1e-12);
    }

    #[test]
    fn extremes_bracket_all_days() {
        let s = RateSeries::january_1994();
        let (lo, hi) = s.extremes();
        assert!(lo < hi);
        for &r in s.daily_opens() {
            assert!(r >= lo && r <= hi);
        }
    }

    #[test]
    fn ticks_are_deterministic_per_seed() {
        let s = RateSeries::january_1994();
        let a = s.intraday_ticks(50, 7);
        let b = s.intraday_ticks(50, 7);
        assert_eq!(a, b);
        let c = s.intraday_ticks(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn tick_cadence_is_one_to_four_minutes() {
        let s = RateSeries::january_1994();
        let ticks = s.intraday_ticks(200, 42);
        let mut prev = 0.0;
        for t in &ticks {
            let gap = t.minutes - prev;
            assert!((1.0..4.0).contains(&gap), "gap {gap}");
            prev = t.minutes;
        }
        // Average gap near the observed 2-minute cadence (uniform 1-4 -> 2.5).
        let avg = ticks.last().unwrap().minutes / ticks.len() as f64;
        assert!((2.0..3.0).contains(&avg), "{avg}");
    }

    #[test]
    fn tick_rates_stay_near_the_open() {
        let s = RateSeries::january_1994();
        let open = s.opening_rate();
        for t in s.intraday_ticks(500, 9) {
            assert!((t.rate - open).abs() < 0.005, "{}", t.rate);
        }
    }
}
