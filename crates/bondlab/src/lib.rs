//! # bondlab — the bond-market substrate for the VAO reproduction
//!
//! The paper's running example (§1.2) and entire evaluation (§6) price
//! bonds with a numerical PDE model as market interest rates stream in.
//! This crate provides everything those experiments need:
//!
//! * [`bond`] — an MBS-style fixed-income instrument (the paper's data set
//!   is 500 Freddie Mac Gold PC 30-year mortgage-backed securities).
//! * [`model`] — the paper's Figure-4 pricing PDE
//!   (`½σ²·F_xx + [κμ−(κ+q)x]·F_x + F_t − rF + C = 0`) instantiated per
//!   bond, in the shape the [`va_numerics::pde`] solver consumes.
//! * [`pricing`] — [`pricing::BondPricer`], a [`vao::VariableAccuracyFn`]
//!   producing PDE result objects with `minWidth` = \$0.01 (prices are only
//!   meaningful to the cent, §3.1).
//! * [`market`] — a 10-year-CMT-like interest-rate series (the paper used
//!   Jan 3–31 1994 daily yields with ~2-minute intra-day tick arrivals).
//! * [`dataset`] — a deterministic generator of the 500-bond universe
//!   (documented substitution for the proprietary data set).
//! * [`portfolio`] — holdings with share weights for SUM/AVE queries.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bond;
pub mod dataset;
pub mod market;
pub mod model;
pub mod model2f;
pub mod portfolio;
pub mod pricing;

pub use bond::Bond;
pub use dataset::BondUniverse;
pub use market::{RateSeries, RateTick};
pub use model::{BondPde, ShortRateModel};
pub use portfolio::Portfolio;
pub use pricing::BondPricer;
