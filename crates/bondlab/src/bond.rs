//! The fixed-income instrument being priced.

/// An MBS-style amortizing bond (the paper's data set: Freddie Mac Gold PC
/// 30-year mortgage-backed securities issued during 1993).
///
/// The instrument pays a continuous level cash-flow stream that fully
/// amortizes the \$100 face value by maturity — the continuous-time
/// idealization of a level-pay mortgage pool — so its terminal value is 0,
/// which is the boundary condition §4.1 uses ("the value of a bond is 0 at
/// maturity").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bond {
    /// Stable identifier within its universe.
    pub id: u32,
    /// Net pass-through coupon rate (annual, continuous compounding), e.g.
    /// `0.075` for 7.5 %.
    pub coupon: f64,
    /// Years remaining to maturity at the pricing date.
    pub years_to_maturity: f64,
    /// Face value (the paper's prices are per \$100 face).
    pub face: f64,
}

impl Bond {
    /// Creates a bond, validating its economics.
    ///
    /// # Panics
    ///
    /// Panics on non-positive coupon, maturity, or face value — bonds come
    /// from the deterministic generator and bad values are programmer
    /// errors.
    #[must_use]
    pub fn new(id: u32, coupon: f64, years_to_maturity: f64, face: f64) -> Self {
        assert!(
            coupon.is_finite() && coupon > 0.0 && coupon < 1.0,
            "coupon must be a rate in (0, 1), got {coupon}"
        );
        assert!(
            years_to_maturity.is_finite() && years_to_maturity > 0.0,
            "maturity must be positive, got {years_to_maturity}"
        );
        assert!(
            face.is_finite() && face > 0.0,
            "face must be positive, got {face}"
        );
        Self {
            id,
            coupon,
            years_to_maturity,
            face,
        }
    }

    /// The continuous level payment rate (per year) that fully amortizes
    /// the face value over the remaining term at the coupon rate:
    /// `p = face · c / (1 − e^{−c·T})`.
    ///
    /// This is the constant source term `C` of the pricing PDE.
    #[must_use]
    pub fn payment_rate(&self) -> f64 {
        let c = self.coupon;
        let t = self.years_to_maturity;
        self.face * c / (1.0 - (-c * t).exp())
    }

    /// Present value of the payment stream discounted at a flat continuous
    /// rate `r` — a closed-form sanity reference for the PDE model in the
    /// zero-volatility, zero-mean-reversion limit:
    /// `PV = p · (1 − e^{−rT}) / r`.
    #[must_use]
    pub fn flat_rate_value(&self, r: f64) -> f64 {
        let p = self.payment_rate();
        let t = self.years_to_maturity;
        if r.abs() < 1e-12 {
            return p * t;
        }
        p * (1.0 - (-r * t).exp()) / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payment_amortizes_face_at_coupon_rate() {
        // Discounting the payment stream at the coupon rate must recover
        // the face value exactly (definition of the level payment).
        let b = Bond::new(0, 0.075, 30.0, 100.0);
        let pv = b.flat_rate_value(b.coupon);
        assert!((pv - 100.0).abs() < 1e-9, "{pv}");
    }

    #[test]
    fn prices_move_inversely_with_rates() {
        let b = Bond::new(0, 0.07, 29.5, 100.0);
        let low = b.flat_rate_value(0.05);
        let par = b.flat_rate_value(0.07);
        let high = b.flat_rate_value(0.09);
        assert!(low > par && par > high);
        assert!((par - 100.0).abs() < 1e-9);
        // Realistic magnitudes: a 200bp move is worth roughly 10-25 points
        // on a 30-year amortizing bond.
        assert!(low - par > 5.0 && low - par < 30.0, "{}", low - par);
    }

    #[test]
    fn payment_rate_exceeds_simple_interest() {
        // Amortizing principal means the payment is above pure interest.
        let b = Bond::new(0, 0.06, 30.0, 100.0);
        assert!(b.payment_rate() > 6.0);
        assert!(b.payment_rate() < 10.0);
    }

    #[test]
    fn zero_rate_limit_is_total_payments() {
        let b = Bond::new(0, 0.08, 25.0, 100.0);
        let pv0 = b.flat_rate_value(0.0);
        assert!((pv0 - b.payment_rate() * 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coupon")]
    fn rejects_bad_coupon() {
        let _ = Bond::new(0, 0.0, 30.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "maturity")]
    fn rejects_bad_maturity() {
        let _ = Bond::new(0, 0.07, -1.0, 100.0);
    }
}
