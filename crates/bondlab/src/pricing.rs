//! The bond model as a variable-accuracy UDF.
//!
//! [`BondPricer`] is the paper's `model(IR.rate, BD)` function: given a
//! current interest rate and a bond, it begins a PDE solve and hands back a
//! result object whose bounds tighten on demand. `minWidth` defaults to
//! \$0.01 — "since prices can only be accurate to \$.01 anyway" (§1.2).

use va_numerics::pde::{PdeResultObject, PdeVaoConfig};
use vao::cost::WorkMeter;
use vao::interface::{ResultObject, VariableAccuracyFn};

use crate::bond::Bond;
use crate::model::{BondPde, ShortRateModel};

/// Prices bonds through the VAO interface.
#[derive(Clone, Copy, Debug)]
pub struct BondPricer {
    /// The short-rate process shared by every pricing call.
    pub model: ShortRateModel,
    /// Result-object construction parameters (initial mesh, `minWidth`,
    /// safety factor).
    pub vao: PdeVaoConfig,
}

impl Default for BondPricer {
    fn default() -> Self {
        Self {
            model: ShortRateModel::default(),
            vao: PdeVaoConfig {
                min_width: 0.01, // prices are meaningful to the cent
                ..PdeVaoConfig::default()
            },
        }
    }
}

impl BondPricer {
    /// Creates a pricer with explicit model and VAO configuration.
    #[must_use]
    pub fn new(model: ShortRateModel, vao: PdeVaoConfig) -> Self {
        Self { model, vao }
    }

    /// Begins pricing `bond` at `rate`, returning the concrete result
    /// object type (useful when static dispatch matters).
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside the model grid or the initial coarse
    /// solve fails — both indicate misconfiguration, not data conditions.
    #[must_use]
    pub fn price(&self, bond: Bond, rate: f64, meter: &mut WorkMeter) -> PdeResultObject<BondPde> {
        let problem = BondPde::new(bond, self.model, rate);
        PdeResultObject::new(problem, self.vao, meter)
            .expect("bond PDE initial solve failed: misconfigured model or mesh")
    }
}

/// Arguments to the pricing UDF: the streaming rate and the bond tuple.
pub type PricingArgs = (f64, Bond);

impl VariableAccuracyFn<PricingArgs> for BondPricer {
    fn invoke(&self, args: &PricingArgs, meter: &mut WorkMeter) -> Box<dyn ResultObject + Send> {
        let (rate, bond) = *args;
        Box::new(self.price(bond, rate, meter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vao::ops::selection::{select, CmpOp};
    use vao::ops::traditional::calibrate;

    fn pricer() -> BondPricer {
        BondPricer::default()
    }

    fn bond() -> Bond {
        Bond::new(0, 0.07, 29.5, 100.0)
    }

    #[test]
    fn initial_object_is_coarse_but_cheap() {
        let mut meter = WorkMeter::new();
        let obj = pricer().price(bond(), 0.0585, &mut meter);
        assert!(!obj.converged());
        assert!(obj.bounds().width() > 0.01, "initial bounds are coarse");
        // The initial trio costs three small solves, far below one fine one.
        assert!(
            meter.total() < 1000,
            "initial work {} too high",
            meter.total()
        );
    }

    #[test]
    fn converges_to_cent_accuracy() {
        let mut meter = WorkMeter::new();
        let mut obj = pricer().price(bond(), 0.0585, &mut meter);
        let spec = calibrate(&mut obj, &mut meter).unwrap();
        assert!(spec.final_width < 0.01);
        assert!((80.0..130.0).contains(&spec.value), "price {}", spec.value);
    }

    #[test]
    fn converged_price_is_stable_across_refinement_paths() {
        // Convergence from two different initial meshes must agree to
        // within a cent or two (both bound the same true value).
        let mut m1 = WorkMeter::new();
        let mut coarse = pricer().price(bond(), 0.0585, &mut m1);
        let v1 = calibrate(&mut coarse, &mut m1).unwrap().value;

        let finer_start = BondPricer {
            vao: PdeVaoConfig {
                initial_nx: 16,
                initial_nt: 8,
                ..pricer().vao
            },
            ..pricer()
        };
        let mut m2 = WorkMeter::new();
        let mut fine = finer_start.price(bond(), 0.0585, &mut m2);
        let v2 = calibrate(&mut fine, &mut m2).unwrap().value;
        assert!((v1 - v2).abs() < 0.02, "{v1} vs {v2}");
    }

    #[test]
    fn selection_decides_far_from_full_accuracy() {
        // A bond comfortably above $95: the predicate resolves in a few
        // refinements at a fraction of the convergence work.
        let mut sel_meter = WorkMeter::new();
        let mut obj = pricer().price(bond(), 0.0585, &mut sel_meter);
        let out = select(&mut obj, CmpOp::Gt, 5.0, &mut sel_meter).unwrap();
        assert!(out.satisfied);
        let selection_work = sel_meter.total();

        let mut cal_meter = WorkMeter::new();
        let mut obj2 = pricer().price(bond(), 0.0585, &mut cal_meter);
        calibrate(&mut obj2, &mut cal_meter).unwrap();
        let full_work = cal_meter.total();

        assert!(
            selection_work * 10 < full_work,
            "selection {selection_work} vs full {full_work}"
        );
    }

    #[test]
    fn udf_interface_returns_boxed_objects() {
        let mut meter = WorkMeter::new();
        let p = pricer();
        let obj = p.invoke(&(0.0585, bond()), &mut meter);
        assert!(obj.bounds().lo() < obj.bounds().hi());
        assert_eq!(obj.min_width(), 0.01);
    }

    #[test]
    fn prices_respond_to_rate_moves() {
        let mut meter = WorkMeter::new();
        let p = pricer();
        let mut lo = p.price(bond(), 0.05, &mut meter);
        let mut hi = p.price(bond(), 0.07, &mut meter);
        let v_lo = calibrate(&mut lo, &mut meter).unwrap().value;
        let v_hi = calibrate(&mut hi, &mut meter).unwrap().value;
        assert!(v_lo > v_hi, "price(5%) {v_lo} vs price(7%) {v_hi}");
    }
}
