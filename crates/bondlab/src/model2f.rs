//! A two-factor bond model (extension).
//!
//! The paper's evaluation uses the single-factor Stanton model, but its
//! motivation cites two-factor mortgage valuation (Downing, Stanton &
//! Wallace: interest rates *and* housing prices). This module provides a
//! stylized two-factor variant: factor `x` is the short rate (as in
//! [`crate::model`]) and factor `y` is a mean-reverting log housing-price
//! deviation that scales the pool's effective cash-flow rate — a crude
//! stand-in for turnover/default effects. It exercises the
//! [`va_numerics::pde::two_factor`] ADI machinery end to end.

use va_numerics::pde::two_factor::TwoFactorPde;

use crate::bond::Bond;
use crate::model::ShortRateModel;

/// Parameters of the housing factor: an OU process on the log deviation
/// `y` from trend, `dy = −κ_y·y·dt + σ_y·dW`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HousingFactor {
    /// Mean-reversion speed of the deviation.
    pub kappa: f64,
    /// Volatility of the deviation.
    pub sigma: f64,
    /// Cash-flow sensitivity: effective payment rate is
    /// `payment · (1 + gamma·y)` (clamped nonnegative).
    pub gamma: f64,
    /// Grid for `y`.
    pub y_min: f64,
    /// Upper end of the `y` grid.
    pub y_max: f64,
}

impl Default for HousingFactor {
    fn default() -> Self {
        Self {
            kappa: 0.3,
            sigma: 0.08,
            gamma: 0.25,
            y_min: -0.6,
            y_max: 0.6,
        }
    }
}

/// One bond's two-factor pricing problem.
#[derive(Clone, Copy, Debug)]
pub struct TwoFactorBondPde {
    /// The instrument.
    pub bond: Bond,
    /// The rate process.
    pub rates: ShortRateModel,
    /// The housing factor.
    pub housing: HousingFactor,
    /// Current short rate.
    pub current_rate: f64,
    /// Current housing deviation.
    pub current_housing: f64,
}

impl TwoFactorBondPde {
    /// Creates the problem, validating the query point.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is outside its grid.
    #[must_use]
    pub fn new(
        bond: Bond,
        rates: ShortRateModel,
        housing: HousingFactor,
        current_rate: f64,
        current_housing: f64,
    ) -> Self {
        assert!(
            current_rate >= rates.x_min && current_rate <= rates.x_max,
            "rate {current_rate} outside grid"
        );
        assert!(
            current_housing >= housing.y_min && current_housing <= housing.y_max,
            "housing deviation {current_housing} outside grid"
        );
        Self {
            bond,
            rates,
            housing,
            current_rate,
            current_housing,
        }
    }
}

impl TwoFactorPde for TwoFactorBondPde {
    fn x_domain(&self) -> (f64, f64) {
        (self.rates.x_min, self.rates.x_max)
    }

    fn y_domain(&self) -> (f64, f64) {
        (self.housing.y_min, self.housing.y_max)
    }

    fn horizon(&self) -> f64 {
        self.bond.years_to_maturity
    }

    fn diffusion_x(&self, _x: f64, _y: f64) -> f64 {
        0.5 * self.rates.sigma * self.rates.sigma
    }

    fn diffusion_y(&self, _x: f64, _y: f64) -> f64 {
        0.5 * self.housing.sigma * self.housing.sigma
    }

    fn drift_x(&self, x: f64, _y: f64) -> f64 {
        self.rates.kappa * self.rates.mu - (self.rates.kappa + self.rates.q) * x
    }

    fn drift_y(&self, _x: f64, y: f64) -> f64 {
        -self.housing.kappa * y
    }

    fn discount(&self, x: f64, _y: f64) -> f64 {
        x.max(0.0)
    }

    fn source(&self, _x: f64, y: f64, _t: f64) -> f64 {
        self.bond.payment_rate() * (1.0 + self.housing.gamma * y).max(0.0)
    }

    fn terminal(&self, _x: f64, _y: f64) -> f64 {
        0.0
    }

    fn query(&self) -> (f64, f64) {
        (self.current_rate, self.current_housing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use va_numerics::pde::two_factor::solve_adi;
    use va_numerics::pde::{solve_on_mesh, SolverConfig};

    fn bond() -> Bond {
        Bond::new(0, 0.07, 29.5, 100.0)
    }

    #[test]
    fn two_factor_price_is_plausible() {
        let p = TwoFactorBondPde::new(
            bond(),
            ShortRateModel::default(),
            HousingFactor::default(),
            0.0583,
            0.0,
        );
        let s = solve_adi(&p, 48, 24, 256, 1 << 32).unwrap();
        assert!((80.0..130.0).contains(&s.value), "price {}", s.value);
    }

    #[test]
    fn degenerate_housing_factor_recovers_one_factor_price() {
        // gamma = 0 and sigma_y = 0: the y dimension is inert and the
        // price must match the single-factor solver.
        let inert = HousingFactor {
            gamma: 0.0,
            sigma: 0.0,
            ..HousingFactor::default()
        };
        let p2 = TwoFactorBondPde::new(bond(), ShortRateModel::default(), inert, 0.0583, 0.0);
        let two = solve_adi(&p2, 64, 8, 512, 1 << 32).unwrap().value;

        let p1 = crate::model::BondPde::new(bond(), ShortRateModel::default(), 0.0583);
        let one = solve_on_mesh(&p1, 64, 512, &SolverConfig::default())
            .unwrap()
            .value;
        assert!(
            (two - one).abs() < 0.35,
            "two-factor {two} vs one-factor {one}"
        );
    }

    #[test]
    fn positive_housing_deviation_raises_cash_flows_and_price() {
        let model = ShortRateModel::default();
        let housing = HousingFactor::default();
        let base = solve_adi(
            &TwoFactorBondPde::new(bond(), model, housing, 0.0583, 0.0),
            48,
            24,
            256,
            1 << 32,
        )
        .unwrap()
        .value;
        let hot_market = solve_adi(
            &TwoFactorBondPde::new(bond(), model, housing, 0.0583, 0.3),
            48,
            24,
            256,
            1 << 32,
        )
        .unwrap()
        .value;
        assert!(
            hot_market > base + 0.5,
            "positive deviation must lift the price: {hot_market} vs {base}"
        );
    }

    #[test]
    fn variable_accuracy_object_prices_two_factor_bond() {
        use va_numerics::pde::two_factor::{TwoFactorResultObject, TwoFactorVaoConfig};
        use vao::cost::WorkMeter;
        use vao::interface::ResultObject;

        let p = TwoFactorBondPde::new(
            bond(),
            ShortRateModel::default(),
            HousingFactor::default(),
            0.0583,
            0.0,
        );
        let mut meter = WorkMeter::new();
        let mut obj = TwoFactorResultObject::new(
            p,
            TwoFactorVaoConfig {
                min_width: 0.25, // two-factor meshes are pricey; quarter-dollar test accuracy
                initial_nx: 8,
                initial_ny: 8,
                initial_nt: 4,
                ..TwoFactorVaoConfig::default()
            },
            &mut meter,
        )
        .unwrap();
        let mut guard = 0;
        while !obj.converged() && !obj.capped() {
            obj.iterate(&mut meter);
            guard += 1;
            assert!(guard < 30);
        }
        assert!(obj.converged());
        assert!((80.0..130.0).contains(&obj.bounds().mid()));
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn rejects_out_of_grid_housing() {
        let _ = TwoFactorBondPde::new(
            bond(),
            ShortRateModel::default(),
            HousingFactor::default(),
            0.0583,
            5.0,
        );
    }
}
