//! The Figure-4 pricing PDE, instantiated per bond.
//!
//! The paper's bond model (after Stanton \[28\]) prices a bond as `F(x, t)`
//! where `x` is the short interest rate and `t` runs from now (0) to
//! maturity (`t_mat`), satisfying
//!
//! ```text
//! ½σ²·F_xx + [κμ − (κ+q)x]·F_x + F_t − rF + C = 0,    F(x, t_mat) = 0,
//! ```
//!
//! with σ the rate volatility, κ the mean-reversion speed toward the
//! long-run level μ, q the market price of risk, `r = x` the discount rate,
//! and `C` the bond's continuous payment stream. The query is
//! `F(x_current, 0)`.

use va_numerics::pde::ParabolicPde;

use crate::bond::Bond;

/// Parameters of the single-factor short-rate process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShortRateModel {
    /// Rate volatility σ (absolute, per √year).
    pub sigma: f64,
    /// Mean-reversion speed κ.
    pub kappa: f64,
    /// Long-run rate level μ.
    pub mu: f64,
    /// Market price of risk q.
    pub q: f64,
    /// Lateral domain for the rate grid `[x_min, x_max]`; must comfortably
    /// contain every rate the experiments query.
    pub x_min: f64,
    /// Upper end of the rate grid.
    pub x_max: f64,
}

impl Default for ShortRateModel {
    /// Parameters in the ballpark of 1990s term-structure estimations:
    /// σ = 2 %/√yr, κ = 0.25/yr toward μ = 7 %, risk premium folded into q.
    fn default() -> Self {
        Self {
            sigma: 0.02,
            kappa: 0.25,
            mu: 0.07,
            q: 0.0,
            x_min: 0.0,
            x_max: 0.30,
        }
    }
}

/// One bond's pricing problem under a short-rate model, at a given current
/// rate — the `(IR.rate, BD)` argument pair of the paper's `model()` UDF.
#[derive(Clone, Copy, Debug)]
pub struct BondPde {
    /// The instrument.
    pub bond: Bond,
    /// The rate process.
    pub model: ShortRateModel,
    /// Current short rate (the query point).
    pub current_rate: f64,
}

impl BondPde {
    /// Creates the pricing problem.
    ///
    /// # Panics
    ///
    /// Panics if `current_rate` lies outside the model's rate grid.
    #[must_use]
    pub fn new(bond: Bond, model: ShortRateModel, current_rate: f64) -> Self {
        assert!(
            current_rate >= model.x_min && current_rate <= model.x_max,
            "current rate {current_rate} outside grid [{}, {}]",
            model.x_min,
            model.x_max
        );
        Self {
            bond,
            model,
            current_rate,
        }
    }
}

impl ParabolicPde for BondPde {
    fn domain(&self) -> (f64, f64) {
        (self.model.x_min, self.model.x_max)
    }

    fn horizon(&self) -> f64 {
        self.bond.years_to_maturity
    }

    fn diffusion(&self, _x: f64) -> f64 {
        0.5 * self.model.sigma * self.model.sigma
    }

    fn drift(&self, x: f64) -> f64 {
        self.model.kappa * self.model.mu - (self.model.kappa + self.model.q) * x
    }

    fn discount(&self, x: f64) -> f64 {
        x.max(0.0)
    }

    fn source(&self, _x: f64, _t: f64) -> f64 {
        self.bond.payment_rate()
    }

    fn terminal(&self, _x: f64) -> f64 {
        0.0
    }

    fn x_query(&self) -> f64 {
        self.current_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use va_numerics::pde::{solve_on_mesh, SolverConfig};

    fn bond() -> Bond {
        Bond::new(0, 0.07, 29.5, 100.0)
    }

    #[test]
    fn drift_pulls_toward_long_run_mean() {
        let p = BondPde::new(bond(), ShortRateModel::default(), 0.0585);
        assert!(p.drift(0.02) > 0.0, "below mu: drift up");
        assert!(p.drift(0.12) < 0.0, "above mu: drift down");
        assert!(p.drift(0.07).abs() < 1e-12, "zero at mu when q = 0");
    }

    #[test]
    fn price_is_in_a_realistic_range() {
        let p = BondPde::new(bond(), ShortRateModel::default(), 0.0585);
        let sol = solve_on_mesh(&p, 64, 512, &SolverConfig::default()).unwrap();
        // A 7% 30-year amortizer with rates ~5.85% mean-reverting to 7%
        // should trade in the broad vicinity of par.
        assert!(
            (80.0..130.0).contains(&sol.value),
            "implausible price {}",
            sol.value
        );
    }

    #[test]
    fn price_decreases_with_current_rate() {
        let cfg = SolverConfig::default();
        let lo = solve_on_mesh(
            &BondPde::new(bond(), ShortRateModel::default(), 0.04),
            64,
            512,
            &cfg,
        )
        .unwrap()
        .value;
        let hi = solve_on_mesh(
            &BondPde::new(bond(), ShortRateModel::default(), 0.08),
            64,
            512,
            &cfg,
        )
        .unwrap()
        .value;
        assert!(lo > hi, "price(4%) = {lo} must exceed price(8%) = {hi}");
    }

    #[test]
    fn price_increases_with_coupon() {
        let cfg = SolverConfig::default();
        let model = ShortRateModel::default();
        let low_coupon = solve_on_mesh(
            &BondPde::new(Bond::new(0, 0.055, 29.5, 100.0), model, 0.0585),
            64,
            512,
            &cfg,
        )
        .unwrap()
        .value;
        let high_coupon = solve_on_mesh(
            &BondPde::new(Bond::new(1, 0.085, 29.5, 100.0), model, 0.0585),
            64,
            512,
            &cfg,
        )
        .unwrap()
        .value;
        assert!(high_coupon > low_coupon + 5.0);
    }

    #[test]
    fn zero_volatility_zero_reversion_matches_flat_discounting() {
        // With σ = 0 and κ = 0, rates stay at the current level and the PDE
        // price must converge to the closed-form flat-rate value.
        let model = ShortRateModel {
            sigma: 0.0,
            kappa: 0.0,
            mu: 0.07,
            q: 0.0,
            ..ShortRateModel::default()
        };
        let b = bond();
        let rate = 0.06;
        let p = BondPde::new(b, model, rate);
        let sol = solve_on_mesh(&p, 256, 2048, &SolverConfig::default()).unwrap();
        let exact = b.flat_rate_value(rate);
        assert!(
            (sol.value - exact).abs() < 0.15,
            "PDE {} vs closed form {exact}",
            sol.value
        );
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn rejects_rate_outside_grid() {
        let _ = BondPde::new(bond(), ShortRateModel::default(), 0.50);
    }
}
