//! The bond universe — a deterministic stand-in for the paper's 500-bond
//! real data set.
//!
//! The paper evaluates on "bond data on 500 mortgage backed securities
//! issued between January and December of 1993" (Freddie Mac Gold PC
//! 30-year MBS). That data set is proprietary; this generator produces a
//! universe with the same economically relevant spread: pass-through
//! coupons across the 1993 new-issue range and 30-year terms seasoned by
//! 0–12 months at the January 1994 pricing date. What the VAO experiments
//! are sensitive to is the *distribution of model prices* (§6.1) — this
//! universe yields converged prices spread over tens of dollars around
//! par, matching the paper's reported σ ≈ \$7.78 regime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bond::Bond;

/// A generated set of bonds.
#[derive(Clone, Debug)]
pub struct BondUniverse {
    bonds: Vec<Bond>,
    seed: u64,
}

impl BondUniverse {
    /// The paper's universe size.
    pub const PAPER_SIZE: usize = 500;

    /// Generates `n` bonds deterministically from `seed`.
    #[must_use]
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bonds = (0..n)
            .map(|i| {
                // 1993 Gold PC pass-through coupons: 5.5 % – 8.5 % in
                // half-point ladders plus idiosyncratic spread.
                let ladder = [0.055, 0.06, 0.065, 0.07, 0.075, 0.08, 0.085];
                let base = ladder[rng.gen_range(0..ladder.len())];
                let coupon = base + rng.gen_range(-0.0015..0.0015);
                // Issued Jan–Dec 1993, priced Jan 1994: 29.0–30.0 years left.
                let years = 30.0 - rng.gen_range(0.0..1.0);
                Bond::new(i as u32, coupon, years, 100.0)
            })
            .collect();
        Self { bonds, seed }
    }

    /// The paper-scale universe (500 bonds) at the default seed.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::generate(Self::PAPER_SIZE, 1994)
    }

    /// The bonds.
    #[must_use]
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// Number of bonds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bonds.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bonds.is_empty()
    }

    /// The generation seed (for experiment records).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl std::ops::Index<usize> for BondUniverse {
    type Output = Bond;

    fn index(&self, i: usize) -> &Bond {
        &self.bonds[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = BondUniverse::generate(100, 7);
        let b = BondUniverse::generate(100, 7);
        assert_eq!(a.bonds(), b.bonds());
        let c = BondUniverse::generate(100, 8);
        assert_ne!(a.bonds(), c.bonds());
    }

    #[test]
    fn paper_default_has_500_bonds() {
        let u = BondUniverse::paper_default();
        assert_eq!(u.len(), 500);
        assert!(!u.is_empty());
        assert_eq!(u.seed(), 1994);
    }

    #[test]
    fn coupons_and_maturities_are_in_1993_ranges() {
        let u = BondUniverse::paper_default();
        for b in u.bonds() {
            assert!((0.05..0.09).contains(&b.coupon), "coupon {}", b.coupon);
            assert!(
                (29.0..=30.0).contains(&b.years_to_maturity),
                "maturity {}",
                b.years_to_maturity
            );
            assert_eq!(b.face, 100.0);
        }
    }

    #[test]
    fn ids_are_positional() {
        let u = BondUniverse::generate(10, 3);
        for (i, b) in u.bonds().iter().enumerate() {
            assert_eq!(b.id as usize, i);
        }
        assert_eq!(u[3].id, 3);
    }

    #[test]
    fn coupon_spread_covers_the_ladder() {
        // With 500 draws all seven coupon rungs should appear.
        let u = BondUniverse::paper_default();
        let mut rung_hit = [false; 7];
        for b in u.bonds() {
            let idx = ((b.coupon - 0.055) / 0.005).round() as usize;
            if idx < 7 {
                rung_hit[idx] = true;
            }
        }
        assert!(rung_hit.iter().all(|&h| h), "{rung_hit:?}");
    }
}
