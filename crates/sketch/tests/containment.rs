//! Property tests pinning the sketches' containment guarantees: for random
//! workloads, every reported quantile/frequency bound contains the exact
//! sorted-reference (or counted-reference) answer.

use std::collections::HashMap;

use proptest::prelude::*;
use va_sketch::{CountMin, IntervalQuantileSketch, QuantileSketch, SpaceSaving};

/// Exact k-th largest (1-based) of a finite slice.
fn exact_kth_from_top(vals: &[f64], k: usize) -> f64 {
    let mut v = vals.to_vec();
    v.sort_by(|a, b| b.total_cmp(a));
    v[k - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn point_sketch_rank_bounds_contain_the_sorted_reference(
        vals in prop::collection::vec(-1000.0..1000.0f64, 1..200),
        rank_seed in any::<u64>(),
        budget in 4usize..64,
    ) {
        let mut s = QuantileSketch::new(0.01, budget);
        for &v in &vals {
            s.insert(v);
        }
        let k = (rank_seed as usize % vals.len()) + 1;
        let (lo, hi) = s.rank_from_top(k as u64).expect("in-range rank");
        let exact = exact_kth_from_top(&vals, k);
        prop_assert!(
            lo <= exact && exact <= hi,
            "k={k}: exact {exact} outside [{lo}, {hi}] (collapses={})",
            s.collapses()
        );
    }

    #[test]
    fn interval_band_contains_every_point_selection(
        obs in prop::collection::vec((-500.0..500.0f64, 0.0..40.0f64, 0.0..1.0f64), 1..150),
        rank_seed in any::<u64>(),
    ) {
        let mut s = IntervalQuantileSketch::new(0.01, 48);
        let mut los = Vec::new();
        let mut his = Vec::new();
        let mut picks = Vec::new();
        for &(lo, width, t) in &obs {
            let hi = lo + width;
            s.insert(lo, hi);
            los.push(lo);
            his.push(hi);
            // An arbitrary point selection inside each interval.
            picks.push(lo + t * width);
        }
        let k = (rank_seed as usize % obs.len()) + 1;
        let (b_lo, b_hi) = s.rank_band_from_top(k as u64).expect("in-range rank");
        for sel in [&los, &his, &picks] {
            let exact = exact_kth_from_top(sel, k);
            prop_assert!(
                b_lo <= exact && exact <= b_hi,
                "k={k}: exact {exact} outside band [{b_lo}, {b_hi}]"
            );
        }
    }

    #[test]
    fn frequency_bounds_contain_the_counted_reference(
        keys in prop::collection::vec(-20i64..20, 1..300),
        capacity in 2usize..12,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut cm = CountMin::new(64, 4);
        let mut truth: HashMap<i64, u64> = HashMap::new();
        for &k in &keys {
            ss.offer(k, 1);
            cm.add(k, 1);
            *truth.entry(k).or_default() += 1;
        }
        for (&k, &f) in &truth {
            prop_assert!(cm.estimate(k) >= f, "count-min under {k}");
            prop_assert!(ss.estimate(k) >= f, "spacesaving under {k}");
        }
        for c in ss.counters() {
            let f = truth.get(&c.key).copied().unwrap_or(0);
            prop_assert!(c.count - c.err <= f, "lower bound broken for {}", c.key);
        }
        let mut freqs: Vec<u64> = truth.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        for k in 1..=freqs.len().min(capacity) {
            prop_assert!(
                ss.kth_guaranteed(k) <= freqs[k - 1],
                "k={k} guaranteed {} exceeds true {}",
                ss.kth_guaranteed(k),
                freqs[k - 1]
            );
        }
    }
}
