//! The count-min frequency sketch (Cormode & Muthukrishnan): a `depth × width`
//! counter grid where each row hashes keys independently and point queries
//! return the row-wise minimum.
//!
//! Estimates **never underestimate** — the property the HEAVYHITTERS demand
//! function leans on: probing a price cell's *possible* population through
//! the sketch can only err toward keeping an object in the demand set,
//! never toward wrongly declaring the query converged.
//!
//! Hashing is deterministic (SplitMix64 with fixed per-row seeds), so ticks
//! replay bit-identically across runs and recoveries.

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic count-min sketch over `i64` keys.
#[derive(Clone, Debug)]
pub struct CountMin {
    width: usize,
    depth: usize,
    /// Row-major `depth × width` counters.
    grid: Vec<u64>,
    /// Total weight added.
    weight: u64,
}

impl CountMin {
    /// Creates a sketch with `width` counters per row (rounded up to a
    /// power of two) and `depth` independent rows.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    #[must_use]
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "width and depth must be positive");
        let width = width.next_power_of_two();
        Self {
            width,
            depth,
            grid: vec![0; width * depth],
            weight: 0,
        }
    }

    /// Counters per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Independent hash rows.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total weight added since construction or [`CountMin::clear`].
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Zeroes every counter, keeping the allocation.
    pub fn clear(&mut self) {
        self.grid.fill(0);
        self.weight = 0;
    }

    fn slot(&self, row: usize, key: i64) -> usize {
        let seed = splitmix64(0xC0FF_EE00_u64.wrapping_add(row as u64));
        let h = splitmix64((key as u64) ^ seed);
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Adds `weight` occurrences of `key`.
    pub fn add(&mut self, key: i64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.weight += weight;
        for row in 0..self.depth {
            let s = self.slot(row, key);
            self.grid[s] = self.grid[s].saturating_add(weight);
        }
    }

    /// Estimated frequency of `key`: the minimum over rows. Never less than
    /// the true added weight for `key`.
    #[must_use]
    pub fn estimate(&self, key: i64) -> u64 {
        (0..self.depth)
            .map(|row| self.grid[self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(64, 4);
        let mut truth: HashMap<i64, u64> = HashMap::new();
        for i in 0..1000i64 {
            let key = i % 97;
            let w = 1 + (i as u64 % 3);
            cm.add(key, w);
            *truth.entry(key).or_default() += w;
        }
        for (&k, &f) in &truth {
            assert!(cm.estimate(k) >= f, "key {k}: {} < {f}", cm.estimate(k));
        }
    }

    #[test]
    fn small_universes_are_exact() {
        // Fewer distinct keys than width ⇒ rare collisions; with depth 4
        // over 8 keys in 64 slots, estimates are exact in practice.
        let mut cm = CountMin::new(64, 4);
        for k in 0..8i64 {
            cm.add(k, (k as u64 + 1) * 10);
        }
        for k in 0..8i64 {
            assert_eq!(cm.estimate(k), (k as u64 + 1) * 10);
        }
        assert_eq!(cm.estimate(999), 0);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CountMin::new(32, 3);
        let mut b = CountMin::new(32, 3);
        for i in 0..100i64 {
            a.add(i * 7 - 50, 2);
            b.add(i * 7 - 50, 2);
        }
        for i in -60..60i64 {
            assert_eq!(a.estimate(i), b.estimate(i));
        }
    }

    #[test]
    fn clear_zeroes_counts() {
        let mut cm = CountMin::new(16, 2);
        cm.add(5, 9);
        cm.clear();
        assert_eq!(cm.weight(), 0);
        assert_eq!(cm.estimate(5), 0);
    }

    #[test]
    fn width_rounds_to_power_of_two() {
        let cm = CountMin::new(33, 1);
        assert_eq!(cm.width(), 64);
    }
}
