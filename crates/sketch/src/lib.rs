//! # va-sketch — bounded-error sketches over interval observations
//!
//! Compact summaries backing the sketch-guided VAO family (PERCENTILE,
//! HEAVYHITTERS): a UDDSketch-style quantile sketch with bounded relative
//! error ([`QuantileSketch`]), a SpaceSaving heavy-hitters summary
//! ([`SpaceSaving`]) and a count-min frequency sketch ([`CountMin`]).
//!
//! Unlike the textbook versions, these sketches are fed **interval
//! observations**: each object contributes its current error bounds
//! `[L, H]` instead of a point value. [`IntervalQuantileSketch`] ingests
//! both endpoints and answers rank queries with a band that provably
//! contains the corresponding order statistic of *any* point selection
//! `v_i ∈ [L_i, H_i]` — the reported error composes the sketch's own
//! bucket-width guarantee with the ingested interval widths (see
//! `docs/SKETCHES.md` for the composition model).
//!
//! Everything is `std`-only, deterministic, and allocation-reusing
//! (`clear()` keeps capacity), because the `va-server` demand functions
//! rebuild their summaries from the live pool every scheduler round.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod countmin;
pub mod quantile;
pub mod spacesaving;

pub use countmin::CountMin;
pub use quantile::{IntervalQuantileSketch, QuantileSketch};
pub use spacesaving::SpaceSaving;

/// Clamped rank-from-top for the `phi`-quantile over `n` observations:
/// `⌈(1 − phi)·n⌉`, clamped to `1..=n`.
///
/// This matches the rank convention of the exact-separation operators:
/// `phi = 0.5` is rank `⌈n/2⌉` from the top (the MEDIAN element), `phi → 1`
/// approaches the maximum (rank 1) and `phi → 0` the minimum (rank `n`).
#[must_use]
pub fn rank_from_top(phi: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let raw = (1.0 - phi) * n as f64;
    if raw.is_nan() {
        return 1;
    }
    // Snap values a few ulps from an integer before taking the ceiling, so
    // quantiles like 0.99 of 500 land on rank 5, not 6 (1 − 0.99 is not
    // exactly 0.01 in binary).
    let snapped = if (raw - raw.round()).abs() < 1e-9 * (n as f64).max(1.0) {
        raw.round()
    } else {
        raw.ceil()
    };
    (snapped as i64).clamp(1, n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::rank_from_top;

    #[test]
    fn rank_convention_matches_exact_operators() {
        // Median: rank ⌈n/2⌉ from the top.
        assert_eq!(rank_from_top(0.5, 500), 250);
        assert_eq!(rank_from_top(0.5, 5), 3);
        // p99 of 500: the 5th largest.
        assert_eq!(rank_from_top(0.99, 500), 5);
        // Extremes clamp to MAX / MIN.
        assert_eq!(rank_from_top(1.0, 500), 1);
        assert_eq!(rank_from_top(0.0, 500), 500);
        assert_eq!(rank_from_top(0.5, 0), 0);
    }
}
