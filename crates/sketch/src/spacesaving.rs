//! The SpaceSaving heavy-hitters summary (Metwally, Agrawal & El Abbadi):
//! `m` monitored keys, each with a count and an overestimation error.
//!
//! Guarantees, for any key `x` with true frequency `f(x)` after `N` offers:
//!
//! * if `f(x) > N / m`, then `x` is monitored;
//! * for a monitored `x`: `count(x) − err(x) ≤ f(x) ≤ count(x)`.
//!
//! The HEAVYHITTERS demand function uses the summary over the *resolved*
//! price cells to derive a sound lower bound on the k-th heaviest cell's
//! count ([`SpaceSaving::kth_guaranteed`]) — the admission threshold that
//! prunes uncontended objects from the demand set.

use std::collections::HashMap;

/// One monitored counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counter {
    /// The monitored key.
    pub key: i64,
    /// Estimated frequency (never an underestimate).
    pub count: u64,
    /// Maximum overestimation: `count − err` is a guaranteed lower bound.
    pub err: u64,
}

/// A fixed-capacity SpaceSaving summary over `i64` keys.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    counters: Vec<Counter>,
    /// key → index into `counters`.
    index: HashMap<i64, usize>,
    offers: u64,
}

impl SpaceSaving {
    /// Creates a summary monitoring at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            counters: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            offers: 0,
        }
    }

    /// Total weight offered so far.
    #[must_use]
    pub fn offers(&self) -> u64 {
        self.offers
    }

    /// Monitored counters, in arbitrary order. Use
    /// [`SpaceSaving::top`] for the ranked view.
    #[must_use]
    pub fn counters(&self) -> &[Counter] {
        &self.counters
    }

    /// Drops all counters, keeping capacity.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.index.clear();
        self.offers = 0;
    }

    /// Offers `weight` occurrences of `key`.
    pub fn offer(&mut self, key: i64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.offers += weight;
        if let Some(&i) = self.index.get(&key) {
            self.counters[i].count += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.index.insert(key, self.counters.len());
            self.counters.push(Counter {
                key,
                count: weight,
                err: 0,
            });
            return;
        }
        // Evict the minimum counter: the newcomer inherits its count as
        // overestimation error (the classic SpaceSaving replacement).
        let (mut min_i, mut min_c) = (0usize, u64::MAX);
        for (i, c) in self.counters.iter().enumerate() {
            if c.count < min_c {
                min_i = i;
                min_c = c.count;
            }
        }
        let evicted = self.counters[min_i];
        self.index.remove(&evicted.key);
        self.index.insert(key, min_i);
        self.counters[min_i] = Counter {
            key,
            count: min_c + weight,
            err: min_c,
        };
    }

    /// Estimated frequency of `key`: the monitored count, or the minimum
    /// counter (the ceiling every unmonitored key sits under). Never an
    /// underestimate.
    #[must_use]
    pub fn estimate(&self, key: i64) -> u64 {
        match self.index.get(&key) {
            Some(&i) => self.counters[i].count,
            None if self.counters.len() < self.capacity => 0,
            None => self.counters.iter().map(|c| c.count).min().unwrap_or(0),
        }
    }

    /// The monitored counters sorted by descending count (ties: ascending
    /// key), truncated to `k`.
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<Counter> {
        let mut v = self.counters.clone();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        v.truncate(k);
        v
    }

    /// A guaranteed lower bound on the `k`-th largest *true* frequency:
    /// the `k`-th largest `count − err` over the monitored keys (0 when
    /// fewer than `k` are monitored).
    #[must_use]
    pub fn kth_guaranteed(&self, k: usize) -> u64 {
        if k == 0 || k > self.counters.len() {
            return 0;
        }
        let mut lows: Vec<u64> = self
            .counters
            .iter()
            .map(|c| c.count.saturating_sub(c.err))
            .collect();
        lows.sort_unstable_by(|a, b| b.cmp(a));
        lows[k - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for (key, n) in [(1i64, 5u64), (2, 3), (3, 1)] {
            s.offer(key, n);
        }
        assert_eq!(s.estimate(1), 5);
        assert_eq!(s.estimate(2), 3);
        assert_eq!(s.estimate(99), 0, "unmonitored under capacity is exact 0");
        let top = s.top(2);
        assert_eq!((top[0].key, top[0].count), (1, 5));
        assert_eq!((top[1].key, top[1].count), (2, 3));
        assert_eq!(s.kth_guaranteed(1), 5);
        assert_eq!(s.kth_guaranteed(2), 3);
        assert_eq!(s.kth_guaranteed(4), 0);
    }

    #[test]
    fn never_underestimates_and_bounds_error() {
        // Skewed stream through a tight summary.
        let mut s = SpaceSaving::new(4);
        let mut truth: HashMap<i64, u64> = HashMap::new();
        let stream: Vec<i64> = (0..200)
            .map(|i| match i % 10 {
                0..=4 => 1, // heavy
                5..=7 => 2, // medium
                _ => 3 + (i as i64 % 13),
            })
            .collect();
        for &k in &stream {
            s.offer(k, 1);
            *truth.entry(k).or_default() += 1;
        }
        for (&k, &f) in &truth {
            assert!(
                s.estimate(k) >= f,
                "underestimated {k}: {} < {f}",
                s.estimate(k)
            );
        }
        for c in s.counters() {
            let f = truth.get(&c.key).copied().unwrap_or(0);
            assert!(c.count - c.err <= f, "lower bound broken for {}", c.key);
        }
        // The genuinely heavy key must be monitored (f > N/m = 200/4).
        assert!(s.counters().iter().any(|c| c.key == 1));
        // kth_guaranteed never exceeds the true k-th largest frequency.
        let mut freqs: Vec<u64> = truth.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        for k in 1..=4 {
            assert!(
                s.kth_guaranteed(k) <= freqs[k - 1],
                "k={k}: {} > {}",
                s.kth_guaranteed(k),
                freqs[k - 1]
            );
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = SpaceSaving::new(2);
        s.offer(1, 10);
        s.offer(2, 5);
        s.offer(3, 1);
        s.clear();
        assert_eq!(s.offers(), 0);
        assert_eq!(s.counters().len(), 0);
        s.offer(7, 2);
        assert_eq!(s.estimate(7), 2);
        assert_eq!(s.estimate(1), 0, "pre-clear state must not leak");
    }
}
