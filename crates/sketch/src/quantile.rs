//! A UDDSketch-style quantile sketch with bounded relative error, plus the
//! interval-ingesting wrapper the VAO demand functions use.
//!
//! The sketch buckets values by uniform *log-domain* keys: a positive value
//! `v` lands in bucket `⌈ln v / ln γ⌉` where `γ = (1 + α)/(1 − α)`, so every
//! bucket spans at most a relative width of `α` around its midpoint. When
//! the bucket table outgrows its budget the sketch **collapses**: `γ ← γ²`
//! (doubling `α` up to `2α/(1 + α²)`) and adjacent buckets merge pairwise,
//! halving the table. Zero and negative values get their own stores, so the
//! sketch is total over finite `f64`s.
//!
//! On top of the classic scheme each bucket also tracks the exact `min` and
//! `max` it absorbed. Rank queries answer with that `[min, max]` envelope:
//! it is *contained in* the bucket's log-range (so the relative-error
//! guarantee still holds) and it *contains the ingested value at the queried
//! rank by construction* — no floating-point boundary case can push the
//! answer outside the reported interval.

use std::collections::BTreeMap;

/// One log-domain bucket: how many values landed here and the exact range
/// they spanned.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    count: u64,
    min: f64,
    max: f64,
}

impl Bucket {
    fn one(v: f64) -> Self {
        Bucket {
            count: 1,
            min: v,
            max: v,
        }
    }

    fn absorb(&mut self, other: &Bucket) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn push(&mut self, v: f64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// A bounded-relative-error quantile sketch over point observations.
///
/// `α` is the *current* relative-error guarantee: any reported rank interval
/// `[min, max]` satisfies `max − min ≤ 2α·max(|min|, |max|) / (1 − α)` for
/// same-signed buckets (the log-bucket width), and always contains the exact
/// value at that rank among the ingested points. Collapses double `α`; read
/// the post-ingest guarantee from [`QuantileSketch::alpha`].
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    /// ln γ for the current collapse level.
    ln_gamma: f64,
    /// Current relative-error guarantee.
    alpha: f64,
    /// Construction-time guarantee, restored by [`QuantileSketch::clear`].
    alpha0: f64,
    /// Bucket budget; a collapse runs when `pos.len() + neg.len()` exceeds it.
    max_buckets: usize,
    /// Positive store, keyed by `⌈ln v / ln γ⌉`.
    pos: BTreeMap<i64, Bucket>,
    /// Negative store, keyed by `⌈ln |v| / ln γ⌉`.
    neg: BTreeMap<i64, Bucket>,
    /// Exact zeros.
    zeros: u64,
    /// Total ingested count.
    count: u64,
    /// How many collapses have run since the last `clear()`.
    collapses: u32,
}

impl QuantileSketch {
    /// Creates a sketch with initial relative error `alpha` (`0 < α < 1`)
    /// and a bucket budget of `max_buckets` (at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)` or `max_buckets < 2`.
    #[must_use]
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0 && alpha.is_finite(),
            "alpha must be in (0, 1), got {alpha}"
        );
        assert!(max_buckets >= 2, "need at least 2 buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            ln_gamma: gamma.ln(),
            alpha,
            alpha0: alpha,
            max_buckets,
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zeros: 0,
            count: 0,
            collapses: 0,
        }
    }

    /// The current relative-error guarantee (doubles per collapse).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total observations ingested.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Live buckets (positive + negative stores; zeros are one counter).
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Collapses run since construction or the last [`QuantileSketch::clear`].
    #[must_use]
    pub fn collapses(&self) -> u32 {
        self.collapses
    }

    /// Drops all observations but keeps the *initial* accuracy and budget
    /// (the collapse level resets along with the data).
    pub fn clear(&mut self) {
        let gamma = (1.0 + self.alpha0) / (1.0 - self.alpha0);
        self.alpha = self.alpha0;
        self.ln_gamma = gamma.ln();
        self.pos.clear();
        self.neg.clear();
        self.zeros = 0;
        self.count = 0;
        self.collapses = 0;
    }

    /// Ingests one finite observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values (the VAO layer only produces finite
    /// bounds; a NaN here is a caller bug worth failing loudly on).
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "sketch observations must be finite, got {v}");
        self.count += 1;
        if v == 0.0 {
            self.zeros += 1;
            return;
        }
        let key = self.key_of(v.abs());
        let store = if v > 0.0 {
            &mut self.pos
        } else {
            &mut self.neg
        };
        store
            .entry(key)
            .and_modify(|b| b.push(v))
            .or_insert_with(|| Bucket::one(v));
        if self.pos.len() + self.neg.len() > self.max_buckets {
            self.collapse();
        }
    }

    fn key_of(&self, magnitude: f64) -> i64 {
        // ⌈ln m / ln γ⌉; the per-bucket min/max envelope makes rank answers
        // immune to the boundary rounding this computation can suffer.
        (magnitude.ln() / self.ln_gamma).ceil() as i64
    }

    /// γ ← γ², merging key `k` into `⌈k/2⌉`. Halves the table, doubles α.
    fn collapse(&mut self) {
        self.ln_gamma *= 2.0;
        self.alpha = 2.0 * self.alpha / (1.0 + self.alpha * self.alpha);
        self.collapses += 1;
        for store in [&mut self.pos, &mut self.neg] {
            let old = std::mem::take(store);
            for (k, b) in old {
                // ceil(k / 2) over signed keys.
                let nk = (k + 1).div_euclid(2);
                store
                    .entry(nk)
                    .and_modify(|dst| dst.absorb(&b))
                    .or_insert(b);
            }
        }
    }

    /// The `[min, max]` envelope of the bucket holding the `k`-th *largest*
    /// ingested value (1-based). `None` when `k` is 0 or exceeds the count.
    ///
    /// The exact `k`-th largest ingested value lies inside the returned
    /// interval, and the interval is no wider than one log bucket.
    #[must_use]
    pub fn rank_from_top(&self, k: u64) -> Option<(f64, f64)> {
        if k == 0 || k > self.count {
            return None;
        }
        let mut remaining = k;
        // Descending value order: positives (largest key first), zeros,
        // then negatives (smallest magnitude first).
        for (_, b) in self.pos.iter().rev() {
            if remaining <= b.count {
                return Some((b.min, b.max));
            }
            remaining -= b.count;
        }
        if remaining <= self.zeros {
            return Some((0.0, 0.0));
        }
        remaining -= self.zeros;
        for b in self.neg.values() {
            if remaining <= b.count {
                return Some((b.min, b.max));
            }
            remaining -= b.count;
        }
        None
    }
}

/// A quantile sketch over **interval observations**: each object contributes
/// its `[L, H]` error bounds, one endpoint per underlying sketch.
///
/// For any point selection `v_i ∈ [L_i, H_i]`, the `k`-th largest of the
/// `v_i` lies between the `k`-th largest `L` and the `k`-th largest `H`
/// (order statistics are monotone in every coordinate). The reported band
/// therefore contains the `k`-th order statistic of the *true* values
/// whenever the ingested intervals do — with total slack of at most one
/// sketch bucket on each side on top of the interval-induced spread:
/// **error = sketch guarantee ⊕ interval width**.
#[derive(Clone, Debug)]
pub struct IntervalQuantileSketch {
    lo: QuantileSketch,
    hi: QuantileSketch,
}

impl IntervalQuantileSketch {
    /// Creates the wrapper with the given per-endpoint sketch parameters.
    #[must_use]
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        Self {
            lo: QuantileSketch::new(alpha, max_buckets),
            hi: QuantileSketch::new(alpha, max_buckets),
        }
    }

    /// Ingests one `[lo, hi]` observation.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is non-finite.
    pub fn insert(&mut self, lo: f64, hi: f64) {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        self.lo.insert(lo);
        self.hi.insert(hi);
    }

    /// Observations ingested.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.lo.count()
    }

    /// Whether no observations have been ingested.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// The current (post-collapse) relative-error guarantee: the worse of
    /// the two endpoint sketches.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.lo.alpha().max(self.hi.alpha())
    }

    /// Drops all observations, keeping capacity and initial accuracy.
    pub fn clear(&mut self) {
        self.lo.clear();
        self.hi.clear();
    }

    /// A band containing the `k`-th largest value of every point selection
    /// within the ingested intervals (1-based rank from the top).
    ///
    /// Returns `None` for out-of-range ranks or an empty sketch.
    #[must_use]
    pub fn rank_band_from_top(&self, k: u64) -> Option<(f64, f64)> {
        let (lo_min, _) = self.lo.rank_from_top(k)?;
        let (_, hi_max) = self.hi.rank_from_top(k)?;
        // Degenerate float corner: a collapse on one side only could cross
        // the envelopes; normalize so callers always see a valid interval.
        Some((lo_min.min(hi_max), hi_max.max(lo_min)))
    }

    /// [`IntervalQuantileSketch::rank_band_from_top`] addressed by quantile
    /// `phi ∈ [0, 1]` using the operator family's rank convention
    /// ([`crate::rank_from_top`]).
    #[must_use]
    pub fn quantile_band(&self, phi: f64) -> Option<(f64, f64)> {
        let n = usize::try_from(self.count()).ok()?;
        let k = crate::rank_from_top(phi, n);
        self.rank_band_from_top(k as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_kth_from_top(vals: &[f64], k: usize) -> f64 {
        let mut v = vals.to_vec();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        v[k - 1]
    }

    #[test]
    fn rank_answers_contain_the_exact_order_statistic() {
        let mut s = QuantileSketch::new(0.01, 64);
        let vals: Vec<f64> = (0..500).map(|i| 80.0 + (i as f64) * 0.1).collect();
        for &v in &vals {
            s.insert(v);
        }
        for k in [1usize, 2, 125, 250, 375, 499, 500] {
            let (lo, hi) = s.rank_from_top(k as u64).unwrap();
            let exact = exact_kth_from_top(&vals, k);
            assert!(
                lo <= exact && exact <= hi,
                "k={k}: {exact} not in [{lo},{hi}]"
            );
            // One log bucket wide at most: relative width ≈ 2α/(1−α).
            assert!(hi - lo <= 2.0 * s.alpha() / (1.0 - s.alpha()) * hi + 1e-9);
        }
    }

    #[test]
    fn handles_zeros_and_negatives() {
        let mut s = QuantileSketch::new(0.05, 32);
        let vals = [-10.0, -1.0, 0.0, 0.0, 2.0, 100.0];
        for &v in &vals {
            s.insert(v);
        }
        assert_eq!(s.count(), 6);
        let cases = [
            (1, 100.0),
            (2, 2.0),
            (3, 0.0),
            (4, 0.0),
            (5, -1.0),
            (6, -10.0),
        ];
        for (k, exact) in cases {
            let (lo, hi) = s.rank_from_top(k).unwrap();
            assert!(
                lo <= exact && exact <= hi,
                "k={k}: {exact} not in [{lo},{hi}]"
            );
        }
        assert!(s.rank_from_top(0).is_none());
        assert!(s.rank_from_top(7).is_none());
    }

    #[test]
    fn collapse_keeps_containment_and_doubles_alpha() {
        let mut s = QuantileSketch::new(0.001, 8);
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &v in &vals {
            s.insert(v);
        }
        assert!(s.collapses() > 0, "tiny budget must force collapses");
        assert!(s.buckets() <= 8);
        assert!(s.alpha() > 0.001);
        for k in [1usize, 100, 500, 900, 1000] {
            let (lo, hi) = s.rank_from_top(k as u64).unwrap();
            let exact = exact_kth_from_top(&vals, k);
            assert!(
                lo <= exact && exact <= hi,
                "k={k}: {exact} not in [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn clear_restores_initial_accuracy() {
        let mut s = QuantileSketch::new(0.001, 8);
        for i in 1..=1000 {
            s.insert(i as f64);
        }
        let collapsed_alpha = s.alpha();
        assert!(collapsed_alpha > 0.001);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.collapses(), 0);
        assert!(
            (s.alpha() - 0.001).abs() < 1e-9,
            "alpha after clear: {}",
            s.alpha()
        );
    }

    #[test]
    fn interval_band_brackets_any_point_selection() {
        let mut s = IntervalQuantileSketch::new(0.01, 64);
        // Objects i with bounds [i, i + 5].
        let n = 100u64;
        for i in 0..n {
            s.insert(i as f64, i as f64 + 5.0);
        }
        for k in [1u64, 10, 50, 100] {
            let (b_lo, b_hi) = s.rank_band_from_top(k).unwrap();
            // Midpoint selection: k-th largest of {i + 2.5}.
            let exact = (n - k) as f64 + 2.5;
            assert!(
                b_lo <= exact && exact <= b_hi,
                "k={k}: {exact} not in [{b_lo},{b_hi}]"
            );
        }
        assert!(s.rank_band_from_top(0).is_none());
        assert!(s.rank_band_from_top(n + 1).is_none());
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn interval_rejects_inverted() {
        let mut s = IntervalQuantileSketch::new(0.01, 8);
        s.insert(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite() {
        let mut s = QuantileSketch::new(0.01, 8);
        s.insert(f64::NAN);
    }
}
