//! Property tests for the predicate result-range cache: against any true
//! threshold and any observation order, the cache never contradicts ground
//! truth and never "un-learns" a proven range.

use proptest::prelude::*;

use va_stream::casper::ThresholdCache;

/// Ground truth for a threshold predicate: true iff `param <= threshold`
/// (the `low_is_true` orientation) or `param >= threshold` otherwise.
fn truth(param: f64, threshold: f64, low_is_true: bool) -> bool {
    if low_is_true {
        param <= threshold
    } else {
        param >= threshold
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_never_contradicts_ground_truth(
        threshold in -10.0f64..10.0,
        observations in prop::collection::vec(-12.0f64..12.0, 1..40),
        probes in prop::collection::vec(-12.0f64..12.0, 1..40),
        low_is_true in any::<bool>(),
    ) {
        let mut cache = ThresholdCache::default();
        for &p in &observations {
            cache.record(p, truth(p, threshold, low_is_true), low_is_true);
        }
        for &q in &probes {
            if let Some(answer) = cache.classify(q, low_is_true) {
                prop_assert_eq!(
                    answer,
                    truth(q, threshold, low_is_true),
                    "threshold {} probe {}", threshold, q
                );
            }
        }
    }

    #[test]
    fn proven_ranges_only_grow(
        threshold in -10.0f64..10.0,
        observations in prop::collection::vec(-12.0f64..12.0, 2..40),
        low_is_true in any::<bool>(),
    ) {
        let mut cache = ThresholdCache::default();
        let probe_points: Vec<f64> = (-24..=24).map(|i| i as f64 * 0.5).collect();
        let mut known: Vec<Option<bool>> =
            probe_points.iter().map(|_| None).collect();
        for &p in &observations {
            cache.record(p, truth(p, threshold, low_is_true), low_is_true);
            for (slot, &q) in known.iter_mut().zip(&probe_points) {
                let now = cache.classify(q, low_is_true);
                if let Some(prev) = *slot {
                    prop_assert_eq!(
                        now,
                        Some(prev),
                        "cache forgot or flipped its answer at {}", q
                    );
                }
                if now.is_some() {
                    *slot = now;
                }
            }
        }
    }

    #[test]
    fn observed_points_are_always_classified(
        threshold in -10.0f64..10.0,
        observations in prop::collection::vec(-12.0f64..12.0, 1..40),
        low_is_true in any::<bool>(),
    ) {
        let mut cache = ThresholdCache::default();
        for &p in &observations {
            cache.record(p, truth(p, threshold, low_is_true), low_is_true);
            prop_assert_eq!(
                cache.classify(p, low_is_true),
                Some(truth(p, threshold, low_is_true)),
                "the point just observed must be classified"
            );
        }
    }
}
