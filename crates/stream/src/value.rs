//! Typed scalar values.

/// The type of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
}

/// A scalar value in a tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The value's type tag.
    #[must_use]
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Bool(_) => ValueType::Bool,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// Extracts an integer, if that is what this is.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float; integers widen losslessly enough for query use.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a boolean, if that is what this is.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a string slice, if that is what this is.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::Float(1.0).value_type(), ValueType::Float);
        assert_eq!(Value::Bool(true).value_type(), ValueType::Bool);
        assert_eq!(Value::from("x").value_type(), ValueType::Str);
    }

    #[test]
    fn accessors_are_type_safe() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0), "int widens to float");
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from("hi").as_float(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(false), Value::Bool(false));
    }
}
