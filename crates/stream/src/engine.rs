//! The continuous executor.
//!
//! For every incoming rate tick the engine re-evaluates its query over the
//! whole bond relation — the paper's processing model, where "traders need
//! to run a model for each bond issue each time an input changes" (§1.2).
//! Two execution modes implement the paper's comparison:
//!
//! * [`ExecutionMode::Vao`] — result objects + the §5 operators.
//! * [`ExecutionMode::Traditional`] — every model run as a full-accuracy
//!   black box, then a conventional operator over the values. As in §6,
//!   the black-box cost is established by an off-the-clock calibration
//!   pass, which *underestimates* a production system's cost ("the model
//!   knows a priori the step sizes needed").

use std::time::Instant;

use bondlab::market::RateTick;
use bondlab::BondPricer;
use vao::adapters::{WarmStart, WarmStarted};
use vao::cost::WorkMeter;
use vao::error::VaoError;
use vao::interface::{ResultObject, VariableAccuracyFn};
use vao::ops::count::count_vao;
use vao::ops::heavy::{cell_of, heavy_hitters_vao, HeavyCell};
use vao::ops::hybrid::{hybrid_weighted_sum_traced, HybridConfig};
use vao::ops::minmax::{max_vao_traced, min_vao_traced, AggregateConfig};
use vao::ops::percentile::{percentile_vao, rank_from_top};
use vao::ops::quantile::median_vao;
use vao::ops::selection::SelectionVao;
use vao::ops::sum::weighted_sum_vao_traced;
use vao::ops::topk::topk_vao;
use vao::ops::traditional::{
    calibrate, traditional_max, traditional_min, traditional_select, traditional_weighted_sum,
    BlackBoxSpec,
};
use vao::precision::PrecisionConstraint;
use vao::Bounds;

use crate::query::{Query, QueryOutput};
use crate::relation::BondRelation;
use crate::stats::{TickObserver, TickStats};

/// How the engine executes model calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Variable-accuracy operators (the paper's contribution).
    Vao,
    /// Black-box functions + conventional operators (the baseline).
    Traditional,
    /// §6.3's future-work hybrid: SUM queries pick VAO or traditional per
    /// weight profile; every other query runs as [`ExecutionMode::Vao`].
    Hybrid,
}

/// Errors from query evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// An operator failed (precision too tight, empty relation, …).
    Operator(VaoError),
    /// A [`QueryOutput`] had a different shape than the caller required
    /// (e.g. asking a selection output for extreme bounds).
    OutputShape {
        /// The shape the caller asked for (`"extreme"`, `"ranked"`, …).
        expected: &'static str,
        /// The shape the output actually had.
        got: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Operator(e) => write!(f, "operator error: {e}"),
            EngineError::OutputShape { expected, got } => {
                write!(f, "wrong output shape: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<VaoError> for EngineError {
    fn from(e: VaoError) -> Self {
        EngineError::Operator(e)
    }
}

/// A continuous query bound to a pricer, a relation and an execution mode.
#[derive(Clone, Debug)]
pub struct ContinuousQueryEngine {
    pricer: BondPricer,
    relation: BondRelation,
    query: Query,
    mode: ExecutionMode,
}

impl ContinuousQueryEngine {
    /// Assembles an engine.
    #[must_use]
    pub fn new(
        pricer: BondPricer,
        relation: BondRelation,
        query: Query,
        mode: ExecutionMode,
    ) -> Self {
        Self {
            pricer,
            relation,
            query,
            mode,
        }
    }

    /// The bound query.
    #[must_use]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The execution mode.
    #[must_use]
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The logical plan this engine executes: the traditional two-module
    /// plan (Figure 2) in [`ExecutionMode::Traditional`], the fused VAO
    /// plan (Figures 1/3) otherwise.
    #[must_use]
    pub fn plan(&self) -> crate::plan::LogicalPlan {
        let traditional = crate::plan::LogicalPlan::traditional(&self.query);
        match self.mode {
            ExecutionMode::Traditional => traditional,
            ExecutionMode::Vao | ExecutionMode::Hybrid => traditional.fuse(),
        }
    }

    /// Evaluates the query at one rate, returning the answer and what it
    /// cost.
    ///
    /// Adaptive modes run through the traced operator entry points with a
    /// [`TickObserver`], so the returned [`TickStats`] carry the
    /// iterations-per-object histogram and CPU-estimation error alongside
    /// the work totals. The traditional path never calls `iterate()` on
    /// the clock, so its histogram is empty.
    pub fn process_rate(&self, rate: f64) -> Result<(QueryOutput, TickStats), EngineError> {
        self.process_rate_inner(rate, None)
    }

    /// Like [`ContinuousQueryEngine::process_rate`], but wraps every result
    /// object in a [`WarmStarted`] adapter seeded from `seeds` — the warm
    /// hook a recovering caller uses to re-admit objects at the accuracy a
    /// previous run had already achieved. Seeds whose length does not match
    /// the relation are ignored wholesale (a stale seed set must never
    /// corrupt answers). [`ExecutionMode::Traditional`] ignores seeds: its
    /// black boxes always run to full accuracy.
    pub fn process_rate_seeded(
        &self,
        rate: f64,
        seeds: &[WarmStart],
    ) -> Result<(QueryOutput, TickStats), EngineError> {
        self.process_rate_inner(rate, Some(seeds))
    }

    fn process_rate_inner(
        &self,
        rate: f64,
        seeds: Option<&[WarmStart]>,
    ) -> Result<(QueryOutput, TickStats), EngineError> {
        let start = Instant::now();
        let mut meter = WorkMeter::new();
        let mut obs = TickObserver::new();
        let output = match self.mode {
            ExecutionMode::Vao => self.eval_vao(rate, seeds, &mut meter, &mut obs)?,
            ExecutionMode::Traditional => self.eval_traditional(rate, &mut meter)?,
            ExecutionMode::Hybrid => self.eval_hybrid(rate, seeds, &mut meter, &mut obs)?,
        };
        let stats = TickStats {
            rate,
            work: meter.breakdown(),
            wall: start.elapsed(),
            iterations: meter.iterations(),
            operator: self.query.operator_name(),
            objects: obs.objects(),
            iter_histogram: obs.histogram(),
            cpu_est: obs.cpu_estimation(),
        };
        Ok((output, stats))
    }

    /// Processes a stream of ticks in arrival order.
    pub fn run(&self, ticks: &[RateTick]) -> Result<Vec<(QueryOutput, TickStats)>, EngineError> {
        ticks.iter().map(|t| self.process_rate(t.rate)).collect()
    }

    fn objects(
        &self,
        rate: f64,
        seeds: Option<&[WarmStart]>,
        meter: &mut WorkMeter,
    ) -> Vec<Box<dyn ResultObject + Send>> {
        let seeds = seeds.filter(|s| s.len() == self.relation.bonds().len());
        self.relation
            .bonds()
            .iter()
            .enumerate()
            .map(|(i, &bond)| {
                let inner = self.pricer.invoke(&(rate, bond), meter);
                match seeds {
                    Some(s) => {
                        Box::new(WarmStarted::new(inner, s[i])) as Box<dyn ResultObject + Send>
                    }
                    None => inner,
                }
            })
            .collect()
    }

    fn bond_id(&self, index: usize) -> u32 {
        self.relation.bonds()[index].id
    }

    fn eval_vao(
        &self,
        rate: f64,
        seeds: Option<&[WarmStart]>,
        meter: &mut WorkMeter,
        obs: &mut TickObserver,
    ) -> Result<QueryOutput, EngineError> {
        match &self.query {
            Query::Selection { op, constant } => {
                let vao = SelectionVao::new(*op, *constant)?;
                let seeds = seeds.filter(|s| s.len() == self.relation.bonds().len());
                let mut selected = Vec::new();
                for (i, bond) in self.relation.bonds().iter().enumerate() {
                    let inner = self.pricer.invoke(&(rate, *bond), meter);
                    let satisfied = match seeds {
                        Some(s) => {
                            let mut obj = WarmStarted::new(inner, s[i]);
                            vao.evaluate_traced(&mut obj, meter, obs)?.satisfied
                        }
                        None => {
                            let mut obj = inner;
                            vao.evaluate_traced(&mut obj, meter, obs)?.satisfied
                        }
                    };
                    if satisfied {
                        selected.push(self.bond_id(i));
                    }
                }
                Ok(QueryOutput::Selected(selected))
            }
            Query::Max { epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res = max_vao_traced(
                    &mut objs,
                    PrecisionConstraint::new(*epsilon)?,
                    &mut AggregateConfig::default(),
                    meter,
                    obs,
                )?;
                Ok(QueryOutput::Extreme {
                    bond_id: self.bond_id(res.argext),
                    bounds: res.bounds,
                    ties: res.ties.iter().map(|&i| self.bond_id(i)).collect(),
                })
            }
            Query::Min { epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res = min_vao_traced(
                    &mut objs,
                    PrecisionConstraint::new(*epsilon)?,
                    &mut AggregateConfig::default(),
                    meter,
                    obs,
                )?;
                Ok(QueryOutput::Extreme {
                    bond_id: self.bond_id(res.argext),
                    bounds: res.bounds,
                    ties: res.ties.iter().map(|&i| self.bond_id(i)).collect(),
                })
            }
            Query::Sum { weights, epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res = weighted_sum_vao_traced(
                    &mut objs,
                    weights,
                    PrecisionConstraint::new(*epsilon)?,
                    &mut AggregateConfig::default(),
                    meter,
                    obs,
                )?;
                Ok(QueryOutput::Aggregate { bounds: res.bounds })
            }
            Query::Ave { epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                // Mirrors `ave_vao`: a weighted sum with uniform weights
                // 1/n, routed through the traced entry point.
                let w = 1.0 / objs.len().max(1) as f64;
                let weights = vec![w; objs.len()];
                let res = weighted_sum_vao_traced(
                    &mut objs,
                    &weights,
                    PrecisionConstraint::new(*epsilon)?,
                    &mut AggregateConfig::default(),
                    meter,
                    obs,
                )?;
                Ok(QueryOutput::Aggregate { bounds: res.bounds })
            }
            // TopK and Count have no traced entry points yet; their ticks
            // report work totals but an empty iteration histogram.
            Query::TopK { k, epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res = topk_vao(&mut objs, *k, PrecisionConstraint::new(*epsilon)?, meter)?;
                Ok(QueryOutput::Ranked {
                    members: res
                        .members
                        .iter()
                        .zip(&res.bounds)
                        .map(|(&i, &b)| (self.bond_id(i), b))
                        .collect(),
                    ties: res.ties.iter().map(|&i| self.bond_id(i)).collect(),
                })
            }
            Query::Count {
                op,
                constant,
                slack,
            } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res = count_vao(&mut objs, *op, *constant, *slack, meter)?;
                Ok(QueryOutput::Count {
                    lo: res.count_lo,
                    hi: res.count_hi,
                })
            }
            Query::Median { epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res = median_vao(&mut objs, PrecisionConstraint::new(*epsilon)?, meter)?;
                Ok(QueryOutput::Extreme {
                    bond_id: self.bond_id(res.argext),
                    bounds: res.bounds,
                    ties: res.ties.iter().map(|&i| self.bond_id(i)).collect(),
                })
            }
            Query::Percentile { phi, epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res =
                    percentile_vao(&mut objs, *phi, PrecisionConstraint::new(*epsilon)?, meter)?;
                Ok(QueryOutput::Aggregate { bounds: res.bounds })
            }
            Query::HeavyHitters { k, epsilon } => {
                let mut objs = self.objects(rate, seeds, meter);
                let res =
                    heavy_hitters_vao(&mut objs, *k, PrecisionConstraint::new(*epsilon)?, meter)?;
                Ok(QueryOutput::Heavy {
                    cells: res.cells,
                    ties: res.ties,
                })
            }
        }
    }

    /// Hybrid mode: SUM dispatches on the §6.3 decision rule; everything
    /// else runs adaptively.
    fn eval_hybrid(
        &self,
        rate: f64,
        seeds: Option<&[WarmStart]>,
        meter: &mut WorkMeter,
        obs: &mut TickObserver,
    ) -> Result<QueryOutput, EngineError> {
        match &self.query {
            Query::Sum { weights, epsilon } => {
                let mut off_clock = WorkMeter::new();
                let specs: Vec<BlackBoxSpec> = self
                    .relation
                    .bonds()
                    .iter()
                    .map(|&bond| {
                        let mut obj = self.pricer.invoke(&(rate, bond), &mut off_clock);
                        calibrate(&mut obj, &mut off_clock)
                    })
                    .collect::<Result<_, _>>()?;
                let mut objs = self.objects(rate, seeds, meter);
                let (res, _decision) = hybrid_weighted_sum_traced(
                    &mut objs,
                    weights,
                    &specs,
                    PrecisionConstraint::new(*epsilon)?,
                    &HybridConfig::default(),
                    &mut AggregateConfig::default(),
                    meter,
                    obs,
                )?;
                Ok(QueryOutput::Aggregate { bounds: res.bounds })
            }
            _ => self.eval_vao(rate, seeds, meter, obs),
        }
    }

    /// Calibrates every bond at this rate off the clock (the paper's
    /// favorable black-box setup) and evaluates with traditional operators.
    fn eval_traditional(
        &self,
        rate: f64,
        meter: &mut WorkMeter,
    ) -> Result<QueryOutput, EngineError> {
        let mut off_clock = WorkMeter::new();
        let specs: Vec<BlackBoxSpec> = self
            .relation
            .bonds()
            .iter()
            .map(|&bond| {
                let mut obj = self.pricer.invoke(&(rate, bond), &mut off_clock);
                calibrate(&mut obj, &mut off_clock)
            })
            .collect::<Result<_, _>>()?;

        match &self.query {
            Query::Selection { op, constant } => {
                let hits = traditional_select(&specs, *op, *constant, meter);
                Ok(QueryOutput::Selected(
                    hits.into_iter().map(|i| self.bond_id(i)).collect(),
                ))
            }
            Query::Max { .. } => {
                let (i, v) = traditional_max(&specs, meter)?;
                Ok(QueryOutput::Extreme {
                    bond_id: self.bond_id(i),
                    bounds: Bounds::point(v),
                    ties: Vec::new(),
                })
            }
            Query::Min { .. } => {
                let (i, v) = traditional_min(&specs, meter)?;
                Ok(QueryOutput::Extreme {
                    bond_id: self.bond_id(i),
                    bounds: Bounds::point(v),
                    ties: Vec::new(),
                })
            }
            Query::Sum { weights, .. } => {
                let v = traditional_weighted_sum(&specs, weights, meter)?;
                Ok(QueryOutput::Aggregate {
                    bounds: Bounds::point(v),
                })
            }
            Query::Ave { .. } => {
                let weights = vec![1.0 / specs.len().max(1) as f64; specs.len()];
                let v = traditional_weighted_sum(&specs, &weights, meter)?;
                Ok(QueryOutput::Aggregate {
                    bounds: Bounds::point(v),
                })
            }
            Query::TopK { k, .. } => {
                if specs.is_empty() || *k == 0 || *k > specs.len() {
                    return Err(EngineError::Operator(VaoError::EmptyInput));
                }
                let mut idx: Vec<usize> = (0..specs.len()).collect();
                idx.sort_by(|&a, &b| {
                    specs[b]
                        .value
                        .partial_cmp(&specs[a].value)
                        .expect("finite prices")
                });
                // Charge the black-box work for every model, as always
                // (the other arms charge it inside the traditional
                // operators; here the specs are read directly).
                for s in &specs {
                    meter.charge_exec(s.work);
                }
                Ok(QueryOutput::Ranked {
                    members: idx
                        .iter()
                        .take(*k)
                        .map(|&i| (self.bond_id(i), Bounds::point(specs[i].value)))
                        .collect(),
                    ties: Vec::new(),
                })
            }
            Query::Count { op, constant, .. } => {
                let hits = traditional_select(&specs, *op, *constant, meter);
                Ok(QueryOutput::Count {
                    lo: hits.len(),
                    hi: hits.len(),
                })
            }
            Query::Median { .. } | Query::Percentile { .. } => {
                if specs.is_empty() {
                    return Err(EngineError::Operator(VaoError::EmptyInput));
                }
                let k = match &self.query {
                    Query::Percentile { phi, .. } => rank_from_top(*phi, specs.len()),
                    _ => specs.len().div_ceil(2),
                };
                let mut idx: Vec<usize> = (0..specs.len()).collect();
                idx.sort_by(|&a, &b| specs[b].value.total_cmp(&specs[a].value));
                for s in &specs {
                    meter.charge_exec(s.work);
                }
                let winner = idx[k - 1];
                let point = Bounds::point(specs[winner].value);
                match &self.query {
                    Query::Percentile { .. } => Ok(QueryOutput::Aggregate { bounds: point }),
                    _ => Ok(QueryOutput::Extreme {
                        bond_id: self.bond_id(winner),
                        bounds: point,
                        ties: Vec::new(),
                    }),
                }
            }
            Query::HeavyHitters { k, epsilon } => {
                if specs.is_empty() || *k == 0 {
                    return Err(EngineError::Operator(VaoError::EmptyInput));
                }
                for s in &specs {
                    meter.charge_exec(s.work);
                }
                let mut counts: std::collections::BTreeMap<i64, u64> =
                    std::collections::BTreeMap::new();
                for s in &specs {
                    *counts.entry(cell_of(s.value, *epsilon)).or_default() += 1;
                }
                let mut ranked: Vec<HeavyCell> = counts
                    .into_iter()
                    .map(|(cell, count)| HeavyCell { cell, count })
                    .collect();
                ranked.sort_by(|a, b| b.count.cmp(&a.count).then(a.cell.cmp(&b.cell)));
                let take = (*k).min(ranked.len());
                let boundary = ranked[take - 1].count;
                let ties: Vec<i64> = ranked[take..]
                    .iter()
                    .take_while(|c| c.count == boundary)
                    .map(|c| c.cell)
                    .collect();
                ranked.truncate(take);
                Ok(QueryOutput::Heavy {
                    cells: ranked,
                    ties,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::BondUniverse;
    use vao::ops::selection::CmpOp;

    fn small_engine(query: Query, mode: ExecutionMode) -> ContinuousQueryEngine {
        let universe = BondUniverse::generate(8, 42);
        ContinuousQueryEngine::new(
            BondPricer::default(),
            BondRelation::from_universe(&universe),
            query,
            mode,
        )
    }

    #[test]
    fn selection_modes_agree_on_answers() {
        let q = Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        };
        let (vao_out, vao_stats) = small_engine(q.clone(), ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (trad_out, trad_stats) = small_engine(q, ExecutionMode::Traditional)
            .process_rate(0.0583)
            .unwrap();
        assert_eq!(vao_out, trad_out);
        assert!(
            vao_stats.total_work() < trad_stats.total_work(),
            "VAO {} vs traditional {}",
            vao_stats.total_work(),
            trad_stats.total_work()
        );
    }

    #[test]
    fn max_modes_agree_on_the_winner() {
        let q = Query::Max { epsilon: 0.01 };
        let (vao_out, _) = small_engine(q.clone(), ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (trad_out, _) = small_engine(q, ExecutionMode::Traditional)
            .process_rate(0.0583)
            .unwrap();
        let (a, vb, _) = vao_out.as_extreme().expect("vao max output shape");
        let (b, tb, _) = trad_out.as_extreme().expect("traditional max output shape");
        assert_eq!(a, b);
        // The traditional point value must lie within (or within a cent of)
        // the VAO's bounds.
        assert!(vb.lo() - 0.01 <= tb.mid() && tb.mid() <= vb.hi() + 0.01);
    }

    #[test]
    fn sum_bounds_cover_traditional_value() {
        let n = 8;
        let q = Query::Sum {
            weights: vec![1.0; n],
            epsilon: n as f64 * 0.01,
        };
        let (vao_out, _) = small_engine(q.clone(), ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (trad_out, _) = small_engine(q, ExecutionMode::Traditional)
            .process_rate(0.0583)
            .unwrap();
        let v = trad_out.bounds().unwrap().mid();
        let b = vao_out.bounds().unwrap();
        assert!(
            b.lo() - 0.1 <= v && v <= b.hi() + 0.1,
            "sum bounds {b} vs traditional {v}"
        );
        assert!(b.width() <= 8.0 * 0.01 + 1e-9);
    }

    #[test]
    fn min_is_not_max() {
        let (min_out, _) = small_engine(Query::Min { epsilon: 0.01 }, ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (max_out, _) = small_engine(Query::Max { epsilon: 0.01 }, ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (_, bmin, _) = min_out.as_extreme().expect("min output shape");
        let (_, bmax, _) = max_out.as_extreme().expect("max output shape");
        assert!(bmin.hi() < bmax.lo(), "min {bmin} vs max {bmax}");
    }

    #[test]
    fn run_processes_every_tick() {
        let engine = small_engine(
            Query::Selection {
                op: CmpOp::Gt,
                constant: 100.0,
            },
            ExecutionMode::Vao,
        );
        let ticks = vec![
            RateTick {
                minutes: 0.0,
                rate: 0.0583,
            },
            RateTick {
                minutes: 2.0,
                rate: 0.0590,
            },
        ];
        let results = engine.run(&ticks).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.rate, 0.0583);
        assert_eq!(results[1].1.rate, 0.0590);
    }

    #[test]
    fn engine_plans_match_their_mode() {
        let q = Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        };
        let trad = small_engine(q.clone(), ExecutionMode::Traditional).plan();
        assert!(trad.has_black_box());
        let vao = small_engine(q, ExecutionMode::Vao).plan();
        assert!(!vao.has_black_box());
        assert!(vao.explain().contains("VaoSelection"));
    }

    #[test]
    fn topk_modes_agree_on_the_ranking() {
        // eps loose enough that VAO can stop refining once the top three
        // separate; at 0.01 the whole universe converges and the work
        // comparison below degenerates to a coin flip over the seed.
        let q = Query::TopK {
            k: 3,
            epsilon: 0.05,
        };
        let (vao_out, vao_stats) = small_engine(q.clone(), ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (trad_out, trad_stats) = small_engine(q, ExecutionMode::Traditional)
            .process_rate(0.0583)
            .unwrap();
        let (vm, _) = vao_out.as_ranked().expect("vao topk output shape");
        let (tm, _) = trad_out.as_ranked().expect("traditional topk output shape");
        let vao_ids: Vec<u32> = vm.iter().map(|(id, _)| *id).collect();
        let trad_ids: Vec<u32> = tm.iter().map(|(id, _)| *id).collect();
        assert_eq!(vao_ids, trad_ids);
        assert!(vao_stats.total_work() < trad_stats.total_work());
    }

    #[test]
    fn count_modes_agree_when_exact() {
        let q = Query::Count {
            op: CmpOp::Gt,
            constant: 100.0,
            slack: 0,
        };
        let (vao_out, _) = small_engine(q.clone(), ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let (trad_out, _) = small_engine(q, ExecutionMode::Traditional)
            .process_rate(0.0583)
            .unwrap();
        let (vl, vh) = vao_out.as_count().expect("vao count output shape");
        let (tl, _) = trad_out.as_count().expect("traditional count output shape");
        assert_eq!(vl, vh, "slack 0 gives an exact count");
        assert_eq!(vl, tl);
    }

    #[test]
    fn output_shape_mismatch_is_a_typed_error() {
        // The exact path the old `panic!("wrong output shapes")` sites
        // guarded: a max query answered with an Extreme output, interrogated
        // for the wrong shape.
        let (out, _) = small_engine(Query::Max { epsilon: 0.01 }, ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let err = out.as_ranked().unwrap_err();
        assert_eq!(
            err,
            EngineError::OutputShape {
                expected: "ranked",
                got: "extreme",
            }
        );
        assert_eq!(
            err.to_string(),
            "wrong output shape: expected ranked, got extreme"
        );
        // The matching accessor still succeeds.
        assert!(out.as_extreme().is_ok());
    }

    #[test]
    fn hybrid_mode_answers_sum_like_the_others() {
        let n = 8;
        let q = Query::Sum {
            weights: vec![1.0; n],
            epsilon: n as f64 * 0.01 * (1.0 + 1e-9),
        };
        let (hybrid_out, _) = small_engine(q.clone(), ExecutionMode::Hybrid)
            .process_rate(0.0583)
            .unwrap();
        let (vao_out, _) = small_engine(q, ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let hb = hybrid_out.bounds().unwrap();
        let vb = vao_out.bounds().unwrap();
        // Both bound the same true sum: the intervals must overlap.
        assert!(hb.overlaps(&vb), "{hb} vs {vb}");
    }

    #[test]
    fn seeded_ticks_skip_converged_work_but_agree_on_the_winner() {
        let universe = BondUniverse::generate(8, 42);
        let relation = BondRelation::from_universe(&universe);
        let pricer = BondPricer::default();

        // Build converged seeds by refining every object to its floor —
        // the state a recovered run would re-admit.
        let mut off_clock = WorkMeter::new();
        let seeds: Vec<WarmStart> = relation
            .bonds()
            .iter()
            .map(|&bond| {
                let mut obj = pricer.invoke(&(0.0583, bond), &mut off_clock);
                while !obj.converged() {
                    obj.iterate(&mut off_clock);
                }
                WarmStart {
                    bounds: obj.bounds(),
                    converged: true,
                    prior_cost: obj.cumulative_cost(),
                }
            })
            .collect();

        let engine = ContinuousQueryEngine::new(
            pricer,
            relation,
            Query::Max { epsilon: 0.05 },
            ExecutionMode::Vao,
        );
        let (cold_out, cold_stats) = engine.process_rate(0.0583).unwrap();
        let (warm_out, warm_stats) = engine.process_rate_seeded(0.0583, &seeds).unwrap();
        let (cold_id, _, _) = cold_out.as_extreme().unwrap();
        let (warm_id, warm_bounds, _) = warm_out.as_extreme().unwrap();
        assert_eq!(cold_id, warm_id, "seeding never changes the winner");
        assert!(
            warm_stats.iterations < cold_stats.iterations,
            "warm {} vs cold {} iterations",
            warm_stats.iterations,
            cold_stats.iterations
        );
        assert!(warm_bounds.width() <= 0.05);

        // Mismatched seed sets are ignored — same result as a cold tick.
        let (stale_out, stale_stats) = engine.process_rate_seeded(0.0583, &seeds[..3]).unwrap();
        assert_eq!(stale_out, cold_out);
        assert_eq!(stale_stats.iterations, cold_stats.iterations);
    }

    #[test]
    fn ave_query_produces_tight_bounds() {
        let (out, _) = small_engine(Query::Ave { epsilon: 0.02 }, ExecutionMode::Vao)
            .process_rate(0.0583)
            .unwrap();
        let b = out.bounds().unwrap();
        assert!(b.width() <= 0.02 + 1e-12);
        assert!((80.0..130.0).contains(&b.mid()), "average {b}");
    }
}
