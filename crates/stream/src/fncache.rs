//! Function-result caching for expensive UDF calls.
//!
//! §2 of the paper: "function caches as described in [Hellerstein &
//! Naughton] can be used with both traditional operators and VAOs, and do
//! not affect our discussion of function execution." This module provides
//! that orthogonal layer: an exact-argument memo of calibrated black-box
//! results, so a rate tick that repeats an earlier rate (market data
//! quantizes to basis points, so repeats are common) costs nothing.
//!
//! Unlike the [`crate::casper`] predicate-range cache, this cache is
//! query-independent — it memoizes function *values* — and exact-match
//! only.

use std::collections::HashMap;

use bondlab::{Bond, BondPricer};
use vao::cost::WorkMeter;
use vao::error::VaoError;
use vao::ops::traditional::{calibrate, BlackBoxSpec};

/// A key identifying one function call: `(bond id, rate bits)`.
///
/// Rates are keyed by their exact bit pattern — the cache never
/// interpolates; close-but-different rates are distinct calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallKey {
    bond_id: u32,
    rate_bits: u64,
}

impl CallKey {
    /// Builds the key for a call.
    #[must_use]
    pub fn new(bond_id: u32, rate: f64) -> Self {
        Self {
            bond_id,
            rate_bits: rate.to_bits(),
        }
    }
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FnCacheStats {
    /// Calls answered from the cache.
    pub hits: u64,
    /// Calls that ran the model.
    pub misses: u64,
}

/// An exact-argument memo of calibrated black-box pricing results.
#[derive(Debug, Default)]
pub struct FnCache {
    entries: HashMap<CallKey, BlackBoxSpec>,
    stats: FnCacheStats,
}

impl FnCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the calibrated spec for `(bond, rate)`, pricing and
    /// calibrating on a miss. Model work on misses is charged to `meter`;
    /// hits charge one `get_state` unit.
    pub fn get_or_price(
        &mut self,
        pricer: &BondPricer,
        bond: Bond,
        rate: f64,
        meter: &mut WorkMeter,
    ) -> Result<BlackBoxSpec, VaoError> {
        let key = CallKey::new(bond.id, rate);
        if let Some(spec) = self.entries.get(&key) {
            self.stats.hits += 1;
            meter.charge_get_state(1);
            return Ok(*spec);
        }
        self.stats.misses += 1;
        let mut obj = pricer.price(bond, rate, meter);
        let spec = calibrate(&mut obj, meter)?;
        self.entries.insert(key, spec);
        Ok(spec)
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> FnCacheStats {
        self.stats
    }

    /// Drops all entries (e.g. when the model parameters change), keeping
    /// the statistics.
    pub fn invalidate(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::BondUniverse;

    #[test]
    fn repeat_rates_hit_the_cache() {
        let universe = BondUniverse::generate(3, 1);
        let pricer = BondPricer::default();
        let mut cache = FnCache::new();
        let mut meter = WorkMeter::new();

        for &bond in universe.bonds() {
            cache
                .get_or_price(&pricer, bond, 0.0583, &mut meter)
                .unwrap();
        }
        let cold_work = meter.total();
        assert_eq!(cache.stats(), FnCacheStats { hits: 0, misses: 3 });
        assert_eq!(cache.len(), 3);

        let snap = meter.snapshot();
        for &bond in universe.bonds() {
            cache
                .get_or_price(&pricer, bond, 0.0583, &mut meter)
                .unwrap();
        }
        let warm_work = meter.since(&snap).total();
        assert_eq!(cache.stats(), FnCacheStats { hits: 3, misses: 3 });
        assert!(
            warm_work * 1000 < cold_work,
            "warm {warm_work} vs cold {cold_work}"
        );
    }

    #[test]
    fn different_rates_are_distinct_calls() {
        let universe = BondUniverse::generate(1, 1);
        let pricer = BondPricer::default();
        let mut cache = FnCache::new();
        let mut meter = WorkMeter::new();
        cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut meter)
            .unwrap();
        cache
            .get_or_price(&pricer, universe[0], 0.0584, &mut meter)
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_values_are_identical_to_fresh_ones() {
        let universe = BondUniverse::generate(1, 1);
        let pricer = BondPricer::default();
        let mut cache = FnCache::new();
        let mut meter = WorkMeter::new();
        let first = cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut meter)
            .unwrap();
        let second = cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut meter)
            .unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn warm_restart_with_a_cache_hit_never_double_counts_work() {
        use vao::adapters::{WarmStart, WarmStarted};
        use vao::interface::ResultObject;
        use vao::Bounds;

        let universe = BondUniverse::generate(1, 1);
        let pricer = BondPricer::default();
        let mut cache = FnCache::new();

        // Cold run: the miss prices + calibrates the model on the clock.
        let mut cold = WorkMeter::new();
        let spec = cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut cold)
            .unwrap();
        let cold_work = cold.total();
        assert!(cold_work > 0);

        // "Recovered" run: the cached spec survives and the pool object is
        // re-admitted at its achieved accuracy via a converged WarmStart
        // seed carrying the prior run's cost.
        let mut warm = WorkMeter::new();
        let hit = cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut warm)
            .unwrap();
        assert_eq!(hit, spec, "the hit returns the identical spec");
        let hit_work = warm.total();
        assert_eq!(
            warm.breakdown().get_state,
            1,
            "a hit charges one state read, not the model work"
        );
        assert!(hit_work * 1000 < cold_work);

        let inner = pricer.price(universe[0], 0.0583, &mut warm);
        let mut obj = WarmStarted::new(
            inner,
            WarmStart {
                bounds: Bounds::point(spec.value),
                converged: true,
                prior_cost: cold_work,
            },
        );
        let before = warm.total();
        let b = obj.iterate(&mut warm);
        assert_eq!(b, Bounds::point(spec.value));
        assert_eq!(
            warm.total(),
            before,
            "iterating the re-admitted object is free"
        );
        assert_eq!(warm.iterations(), 0, "no refinement iterations counted");
        // The prior cost rides in lifetime accounting only — it is never
        // re-charged to the live meter.
        assert!(obj.cumulative_cost() >= cold_work);
        assert!(warm.total() < cold_work);
    }

    #[test]
    fn invalidate_clears_entries_but_keeps_stats() {
        let universe = BondUniverse::generate(1, 1);
        let pricer = BondPricer::default();
        let mut cache = FnCache::new();
        let mut meter = WorkMeter::new();
        cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut meter)
            .unwrap();
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        cache
            .get_or_price(&pricer, universe[0], 0.0583, &mut meter)
            .unwrap();
        assert_eq!(cache.stats().misses, 2, "re-priced after invalidation");
    }
}
