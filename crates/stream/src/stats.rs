//! Per-tick execution statistics.

use std::time::Duration;

use vao::cost::WorkBreakdown;

/// What one rate tick cost to process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TickStats {
    /// The rate processed.
    pub rate: f64,
    /// Logical work, by component (§3.2's cost decomposition).
    pub work: WorkBreakdown,
    /// Wall-clock time for the tick.
    pub wall: Duration,
    /// Total `iterate()` calls across all result objects.
    pub iterations: u64,
}

impl TickStats {
    /// Total logical work for the tick.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        self.work.total()
    }
}

/// Aggregates a run of tick stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunSummary {
    /// Ticks processed.
    pub ticks: usize,
    /// Summed work across ticks.
    pub work: WorkBreakdown,
    /// Summed wall time.
    pub wall: Duration,
    /// Summed iterations.
    pub iterations: u64,
}

impl RunSummary {
    /// Folds tick stats into a summary.
    #[must_use]
    pub fn from_ticks(ticks: &[TickStats]) -> Self {
        let mut s = Self::default();
        for t in ticks {
            s.ticks += 1;
            s.work += t.work;
            s.wall += t.wall;
            s.iterations += t.iterations;
        }
        s
    }

    /// Mean work per tick (zero if no ticks).
    #[must_use]
    pub fn mean_work(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.work.total() as f64 / self.ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(exec: u64) -> TickStats {
        TickStats {
            rate: 0.05,
            work: WorkBreakdown {
                exec_iter: exec,
                get_state: 1,
                store_state: 1,
                choose_iter: 2,
            },
            wall: Duration::from_millis(3),
            iterations: 5,
        }
    }

    #[test]
    fn totals_and_summary() {
        let t = tick(100);
        assert_eq!(t.total_work(), 104);
        let s = RunSummary::from_ticks(&[tick(100), tick(200)]);
        assert_eq!(s.ticks, 2);
        assert_eq!(s.work.exec_iter, 300);
        assert_eq!(s.iterations, 10);
        assert_eq!(s.wall, Duration::from_millis(6));
        assert!((s.mean_work() - (104.0 + 204.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let s = RunSummary::from_ticks(&[]);
        assert_eq!(s.ticks, 0);
        assert_eq!(s.mean_work(), 0.0);
    }
}
