//! Per-tick execution statistics and the engine's observability hooks.
//!
//! Every tick the engine threads a [`TickObserver`] through the traced VAO
//! operator entry points, turning the raw event stream into three compact
//! per-tick measurements that ride along in [`TickStats`]:
//!
//! * which operator ran (`operator` tag),
//! * a fixed-bucket [`IterHistogram`] of `iterate()` calls per result
//!   object (the quantity behind the paper's Figure 8 discussion of where
//!   the VAO saves its work), and
//! * an estimated-vs-actual CPU error summary
//!   ([`vao::trace::CpuEstimation`]) grading §4's `estCPU` quality.
//!
//! [`RunSummary`] merges those per-tick measurements into run totals,
//! including the run-level iteration histogram.

use std::time::Duration;

use vao::cost::WorkBreakdown;
use vao::trace::{
    ChoiceRecord, CpuEstimation, ExecObserver, HybridDecisionRecord, IterationRecord,
    OperatorEndRecord, OperatorKind,
};

/// Number of buckets in [`IterHistogram`].
pub const ITER_BUCKETS: usize = 9;

/// A fixed-bucket histogram of `iterate()` calls per result object.
///
/// Buckets are `0, 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, ≥65` — doubling
/// widths, chosen so both the "decided from initial bounds" mass (bucket 0)
/// and the heavy convergence tail stay visible. The array layout keeps the
/// type `Copy`, so [`TickStats`] remains a plain value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterHistogram {
    buckets: [u64; ITER_BUCKETS],
}

impl IterHistogram {
    /// Human-readable bucket labels, aligned with [`IterHistogram::buckets`].
    pub const LABELS: [&'static str; ITER_BUCKETS] =
        ["0", "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"];

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from previously captured bucket counts (the
    /// persistence layer round-trips histograms through snapshots).
    #[must_use]
    pub fn from_buckets(buckets: [u64; ITER_BUCKETS]) -> Self {
        Self { buckets }
    }

    /// Records one result object that received `iterations` calls.
    pub fn record(&mut self, iterations: u64) {
        let idx = match iterations {
            0 => 0,
            1 => 1,
            2 => 2,
            3..=4 => 3,
            5..=8 => 4,
            9..=16 => 5,
            17..=32 => 6,
            33..=64 => 7,
            _ => 8,
        };
        self.buckets[idx] += 1;
    }

    /// The bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; ITER_BUCKETS] {
        &self.buckets
    }

    /// Total result objects recorded.
    #[must_use]
    pub fn total_objects(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &IterHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// What one rate tick cost to process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TickStats {
    /// The rate processed.
    pub rate: f64,
    /// Logical work, by component (§3.2's cost decomposition).
    pub work: WorkBreakdown,
    /// Wall-clock time for the tick.
    pub wall: Duration,
    /// Total `iterate()` calls across all result objects.
    pub iterations: u64,
    /// Stable name of the operator the tick's query ran
    /// (`"selection"`, `"max"`, …).
    pub operator: &'static str,
    /// Result objects whose per-object iteration counts were traced this
    /// tick (zero for operators without traced entry points and for the
    /// traditional path, which never calls `iterate()` on the clock).
    pub objects: u64,
    /// Iterations-per-result-object distribution for the traced objects.
    pub iter_histogram: IterHistogram,
    /// Estimated-vs-actual CPU error over the tick's traced iterations.
    pub cpu_est: CpuEstimation,
}

impl TickStats {
    /// Total logical work for the tick.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        self.work.total()
    }

    /// Mean `iterate()` calls per traced result object (zero when nothing
    /// was traced).
    #[must_use]
    pub fn mean_iterations_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.iterations as f64 / self.objects as f64
        }
    }
}

/// One query's share of a multi-query (shared-pool) run.
///
/// A single-engine run has exactly one implicit query, so [`RunSummary`]
/// leaves `per_query` empty there; the `va-server` scheduler fills one row
/// per registered session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryRunRow {
    /// Server-assigned session id (0 for single-engine runs).
    pub session: u64,
    /// Stable operator name of the session's query (`"max"`, `"sum"`, …).
    pub operator: &'static str,
    /// Scheduling priority the session registered with.
    pub priority: u32,
    /// Ticks answered exactly (converged to the session's ε).
    pub finals: u64,
    /// Ticks degraded to anytime `Partial` answers by the work budget.
    pub partials: u64,
    /// Pool iterations this session's demand drove (it was the
    /// highest-benefit claimant when the scheduler picked the object).
    pub driven_iterations: u64,
}

/// Aggregates a run of tick stats.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Ticks processed.
    pub ticks: usize,
    /// Summed work across ticks.
    pub work: WorkBreakdown,
    /// Summed wall time.
    pub wall: Duration,
    /// Summed iterations.
    pub iterations: u64,
    /// Summed traced result objects.
    pub objects: u64,
    /// Run-level iterations-per-result-object histogram (per-tick
    /// histograms merged).
    pub iter_histogram: IterHistogram,
    /// Run-level CPU estimation error: per-tick means combined weighted by
    /// each tick's traced iteration count.
    pub cpu_est: CpuEstimation,
    /// Per-query execution shares (empty for single-query engine runs; one
    /// row per registered session for shared-pool server runs).
    pub per_query: Vec<QueryRunRow>,
}

impl RunSummary {
    /// Folds tick stats into a summary.
    #[must_use]
    pub fn from_ticks(ticks: &[TickStats]) -> Self {
        let mut s = Self::default();
        let mut abs_sum = 0.0f64;
        let mut pct_sum = 0.0f64;
        for t in ticks {
            s.ticks += 1;
            s.work += t.work;
            s.wall += t.wall;
            s.iterations += t.iterations;
            s.objects += t.objects;
            s.iter_histogram.merge(&t.iter_histogram);
            s.cpu_est.iterations += t.cpu_est.iterations;
            s.cpu_est.pct_iterations += t.cpu_est.pct_iterations;
            abs_sum += t.cpu_est.mean_abs_error * t.cpu_est.iterations as f64;
            // Each tick's mape averages only its pct-eligible (positive
            // measured cost) iterations, so it must be re-weighted by that
            // count — weighting by the total iteration count would let
            // zero-cost iterations dilute the run-level percentage.
            pct_sum += t.cpu_est.mean_abs_pct_error * t.cpu_est.pct_iterations as f64;
        }
        if s.cpu_est.iterations > 0 {
            s.cpu_est.mean_abs_error = abs_sum / s.cpu_est.iterations as f64;
        }
        if s.cpu_est.pct_iterations > 0 {
            s.cpu_est.mean_abs_pct_error = pct_sum / s.cpu_est.pct_iterations as f64;
        }
        s
    }

    /// Mean work per tick (zero if no ticks).
    #[must_use]
    pub fn mean_work(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.work.total() as f64 / self.ticks as f64
        }
    }

    /// Mean `iterate()` calls per traced result object across the run.
    #[must_use]
    pub fn mean_iterations_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.iter_histogram_weighted_iterations() / self.objects as f64
        }
    }

    // The histogram only knows bucket membership, not exact counts, so the
    // run mean uses the exact iteration totals instead.
    fn iter_histogram_weighted_iterations(&self) -> f64 {
        self.iterations as f64
    }

    /// Attaches per-query rows (builder-style, for multi-query runs).
    #[must_use]
    pub fn with_per_query(mut self, rows: Vec<QueryRunRow>) -> Self {
        self.per_query = rows;
        self
    }
}

/// The engine's per-tick [`ExecObserver`]: folds the event stream into the
/// compact per-tick measurements of [`TickStats`] without retaining events.
///
/// Per-object counts are buffered for the operator evaluation in flight and
/// flushed into the histogram when the operator ends, so one observer can
/// watch many operator evaluations per tick (e.g. one selection VAO per
/// bond). Nested evaluations (hybrid SUM delegating to the SUM VAO) flush
/// at the inner operator's end; the outer end then has nothing left to
/// flush, which keeps objects from being double-counted.
#[derive(Clone, Debug, Default)]
pub struct TickObserver {
    current: Vec<u64>,
    histogram: IterHistogram,
    objects: u64,
    cpu_iters: u64,
    cpu_abs_sum: f64,
    cpu_pct_iters: u64,
    cpu_pct_sum: f64,
}

impl TickObserver {
    /// A fresh observer for one tick.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The iterations-per-object histogram accumulated so far.
    #[must_use]
    pub fn histogram(&self) -> IterHistogram {
        self.histogram
    }

    /// Traced result objects flushed so far.
    #[must_use]
    pub fn objects(&self) -> u64 {
        self.objects
    }

    /// CPU-estimation summary over the observed iterations.
    #[must_use]
    pub fn cpu_estimation(&self) -> CpuEstimation {
        CpuEstimation {
            iterations: self.cpu_iters,
            pct_iterations: self.cpu_pct_iters,
            mean_abs_error: if self.cpu_iters > 0 {
                self.cpu_abs_sum / self.cpu_iters as f64
            } else {
                0.0
            },
            mean_abs_pct_error: if self.cpu_pct_iters > 0 {
                self.cpu_pct_sum / self.cpu_pct_iters as f64
            } else {
                0.0
            },
        }
    }
}

impl ExecObserver for TickObserver {
    fn on_operator_start(&mut self, _kind: OperatorKind, objects: usize) {
        self.current.clear();
        self.current.resize(objects, 0);
    }

    fn on_choice(&mut self, _choice: &ChoiceRecord) {}

    fn on_iteration(&mut self, iteration: &IterationRecord) {
        if iteration.object >= self.current.len() {
            self.current.resize(iteration.object + 1, 0);
        }
        self.current[iteration.object] += 1;
        self.cpu_iters += 1;
        let err = iteration.cpu_error().unsigned_abs() as f64;
        self.cpu_abs_sum += err;
        if iteration.actual_cpu > 0 {
            self.cpu_pct_iters += 1;
            self.cpu_pct_sum += err / iteration.actual_cpu as f64;
        }
    }

    fn on_hybrid_decision(&mut self, _decision: &HybridDecisionRecord) {}

    fn on_operator_end(&mut self, _end: &OperatorEndRecord) {
        for &count in &self.current {
            self.histogram.record(count);
        }
        self.objects += self.current.len() as u64;
        self.current.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(exec: u64) -> TickStats {
        let mut hist = IterHistogram::new();
        hist.record(0);
        hist.record(3);
        TickStats {
            rate: 0.05,
            work: WorkBreakdown {
                exec_iter: exec,
                get_state: 1,
                store_state: 1,
                choose_iter: 2,
            },
            wall: Duration::from_millis(3),
            iterations: 5,
            operator: "max",
            objects: 2,
            iter_histogram: hist,
            cpu_est: CpuEstimation {
                iterations: 5,
                pct_iterations: 5,
                mean_abs_error: 2.0,
                mean_abs_pct_error: 0.1,
            },
        }
    }

    #[test]
    fn totals_and_summary() {
        let t = tick(100);
        assert_eq!(t.total_work(), 104);
        assert!((t.mean_iterations_per_object() - 2.5).abs() < 1e-12);
        let s = RunSummary::from_ticks(&[tick(100), tick(200)]);
        assert_eq!(s.ticks, 2);
        assert_eq!(s.work.exec_iter, 300);
        assert_eq!(s.iterations, 10);
        assert_eq!(s.wall, Duration::from_millis(6));
        assert!((s.mean_work() - (104.0 + 204.0) / 2.0).abs() < 1e-12);
        // Histograms merged, objects summed, cpu means weight-averaged.
        assert_eq!(s.objects, 4);
        assert_eq!(s.iter_histogram.buckets()[0], 2);
        assert_eq!(s.iter_histogram.buckets()[3], 2);
        assert_eq!(s.cpu_est.iterations, 10);
        assert_eq!(s.cpu_est.pct_iterations, 10);
        assert!((s.cpu_est.mean_abs_error - 2.0).abs() < 1e-12);
        assert!((s.cpu_est.mean_abs_pct_error - 0.1).abs() < 1e-12);
    }

    #[test]
    fn run_mape_weights_by_pct_eligible_iterations_only() {
        // Tick A: 10 iterations, all at zero measured cost -> mape 0.0 over
        // 0 eligible iterations. Tick B: 10 iterations with positive cost,
        // mape 0.5 over all 10. The run-level mape is 0.5 — tick A has no
        // defined percentage error and must not dilute it to 0.25 (the
        // pre-fix behavior, which weighted by total iterations).
        let zero_cost = TickStats {
            cpu_est: CpuEstimation {
                iterations: 10,
                pct_iterations: 0,
                mean_abs_error: 3.0,
                mean_abs_pct_error: 0.0,
            },
            ..tick(100)
        };
        let biased = TickStats {
            cpu_est: CpuEstimation {
                iterations: 10,
                pct_iterations: 10,
                mean_abs_error: 5.0,
                mean_abs_pct_error: 0.5,
            },
            ..tick(100)
        };
        let s = RunSummary::from_ticks(&[zero_cost, biased]);
        assert_eq!(s.cpu_est.iterations, 20);
        assert_eq!(s.cpu_est.pct_iterations, 10);
        assert!((s.cpu_est.mean_abs_pct_error - 0.5).abs() < 1e-12);
        // mae still weights by total iterations: (10*3 + 10*5) / 20 = 4.
        assert!((s.cpu_est.mean_abs_error - 4.0).abs() < 1e-12);
        // All-zero-cost runs report mape 0.0, never NaN.
        let s = RunSummary::from_ticks(&[zero_cost]);
        assert_eq!(s.cpu_est.mean_abs_pct_error, 0.0);
        assert!(s.cpu_est.mean_abs_pct_error.is_finite());
    }

    #[test]
    fn per_query_rows_attach_to_a_summary() {
        let s = RunSummary::from_ticks(&[tick(100)]);
        assert!(s.per_query.is_empty(), "single-engine runs have no rows");
        let s = s.with_per_query(vec![QueryRunRow {
            session: 1,
            operator: "max",
            priority: 2,
            finals: 3,
            partials: 1,
            driven_iterations: 42,
        }]);
        assert_eq!(s.per_query.len(), 1);
        assert_eq!(s.per_query[0].operator, "max");
        assert_eq!(s.per_query[0].partials, 1);
    }

    #[test]
    fn empty_summary() {
        let s = RunSummary::from_ticks(&[]);
        assert_eq!(s.ticks, 0);
        assert_eq!(s.mean_work(), 0.0);
        assert_eq!(s.mean_iterations_per_object(), 0.0);
        assert_eq!(s.cpu_est, CpuEstimation::default());
    }

    #[test]
    fn histogram_buckets_and_labels_align() {
        let mut h = IterHistogram::new();
        for (iters, expect_bucket) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 3),
            (5, 4),
            (8, 4),
            (9, 5),
            (16, 5),
            (17, 6),
            (32, 6),
            (33, 7),
            (64, 7),
            (65, 8),
            (1000, 8),
        ] {
            let before = h.buckets()[expect_bucket];
            h.record(iters);
            assert_eq!(
                h.buckets()[expect_bucket],
                before + 1,
                "{iters} iterations should land in bucket {}",
                IterHistogram::LABELS[expect_bucket]
            );
        }
        assert_eq!(h.total_objects(), 15);
        assert_eq!(IterHistogram::LABELS.len(), ITER_BUCKETS);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = IterHistogram::new();
        a.record(0);
        a.record(7);
        let mut b = IterHistogram::new();
        b.record(0);
        a.merge(&b);
        assert_eq!(a.buckets()[0], 2);
        assert_eq!(a.buckets()[4], 1);
        assert_eq!(a.total_objects(), 3);
    }

    #[test]
    fn tick_observer_flushes_objects_at_operator_end() {
        use vao::Bounds;
        let mut obs = TickObserver::new();
        obs.on_operator_start(OperatorKind::Max, 3);
        let it = |object: usize, est: u64, actual: u64| IterationRecord {
            object,
            seq: 1,
            before: Bounds::new(0.0, 10.0),
            after: Bounds::new(2.0, 8.0),
            est_cpu: est,
            actual_cpu: actual,
        };
        obs.on_iteration(&it(0, 10, 8));
        obs.on_iteration(&it(0, 10, 10));
        obs.on_iteration(&it(2, 4, 8));
        obs.on_operator_end(&OperatorEndRecord {
            kind: OperatorKind::Max,
            iterations: 3,
            work: WorkBreakdown::default(),
        });
        assert_eq!(obs.objects(), 3);
        let h = obs.histogram();
        assert_eq!(h.buckets()[0], 1, "object 1 never iterated");
        assert_eq!(h.buckets()[1], 1, "object 2 iterated once");
        assert_eq!(h.buckets()[2], 1, "object 0 iterated twice");
        let est = obs.cpu_estimation();
        assert_eq!(est.iterations, 3);
        // Abs errors 2, 0, 4 -> mean 2; pct errors 0.25, 0, 0.5 -> mean 0.25.
        assert!((est.mean_abs_error - 2.0).abs() < 1e-12);
        assert!((est.mean_abs_pct_error - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tick_observer_handles_repeated_operators() {
        // One selection VAO per bond: three separate start/end pairs.
        let mut obs = TickObserver::new();
        for iters in [0u64, 2, 1] {
            obs.on_operator_start(OperatorKind::Selection, 1);
            for seq in 0..iters {
                obs.on_iteration(&IterationRecord {
                    object: 0,
                    seq: seq + 1,
                    before: vao::Bounds::new(0.0, 10.0),
                    after: vao::Bounds::new(2.0, 8.0),
                    est_cpu: 5,
                    actual_cpu: 5,
                });
            }
            obs.on_operator_end(&OperatorEndRecord {
                kind: OperatorKind::Selection,
                iterations: iters,
                work: WorkBreakdown::default(),
            });
        }
        assert_eq!(obs.objects(), 3);
        let h = obs.histogram();
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
    }
}
