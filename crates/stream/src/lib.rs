//! # va-stream — a minimal continuous-query engine substrate
//!
//! The paper's system (Figure 1) is a continuous-query engine: a stream of
//! interest-rate updates joins a relation of bonds, expensive model calls
//! price every bond at every new rate, and an operator (selection, MAX,
//! SUM, …) evaluates the results. This crate provides that scaffolding:
//!
//! * [`value`] / [`mod@tuple`] / [`schema`] — a small typed tuple layer.
//! * [`relation`] — the bond relation (`BD` in the paper's predicate
//!   `model(IR.rate, BD) > 100`).
//! * [`query`] — query definitions (Q1–Q3 of §1.2) and their outputs.
//! * [`engine`] — the continuous executor: per rate tick, it evaluates the
//!   query under either the VAO or the traditional execution mode and
//!   records per-tick statistics.
//! * [`stats`] — work/time accounting per tick.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod casper;
pub mod engine;
pub mod fncache;
pub mod plan;
pub mod query;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;

pub use engine::{ContinuousQueryEngine, EngineError, ExecutionMode};
pub use query::{Query, QueryOutput};
pub use relation::BondRelation;
pub use stats::{IterHistogram, QueryRunRow, RunSummary, TickObserver, TickStats};
