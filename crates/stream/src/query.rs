//! Continuous-query definitions and outputs.
//!
//! The paper's example queries (§1.2):
//!
//! * **Q1** "Find all bonds priced above \$100" — [`Query::Selection`].
//! * **Q2** "Find the value of my bond portfolio, which is a weighted sum
//!   of bond prices" — [`Query::Sum`].
//! * **Q3** "Find the best performing (i.e. highest valued) bond" —
//!   [`Query::Max`].

use vao::ops::heavy::HeavyCell;
use vao::ops::selection::CmpOp;
use vao::Bounds;

use crate::engine::EngineError;

/// A continuous query over `model(IR.rate, BD)` results.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Q1-style: bonds whose price satisfies `price ⟨op⟩ constant`.
    Selection {
        /// Comparison operator.
        op: CmpOp,
        /// The selection constant (e.g. \$100).
        constant: f64,
    },
    /// Q2-style: the weighted sum of all prices, to precision `epsilon`.
    Sum {
        /// Per-bond weights (shares held), aligned with the relation.
        weights: Vec<f64>,
        /// Output precision constraint ε.
        epsilon: f64,
    },
    /// Average price, to precision `epsilon`.
    Ave {
        /// Output precision constraint ε.
        epsilon: f64,
    },
    /// Q3-style: the highest-valued bond, its price bounded to `epsilon`.
    Max {
        /// Output precision constraint ε.
        epsilon: f64,
    },
    /// The lowest-valued bond, its price bounded to `epsilon`.
    Min {
        /// Output precision constraint ε.
        epsilon: f64,
    },
    /// Extension: the `k` highest-valued bonds, each bounded to `epsilon`.
    TopK {
        /// How many bonds to return.
        k: usize,
        /// Output precision constraint ε per member.
        epsilon: f64,
    },
    /// Extension: how many bonds satisfy `price ⟨op⟩ constant`, with up to
    /// `slack` bonds allowed to remain unclassified.
    Count {
        /// Comparison operator.
        op: CmpOp,
        /// The selection constant.
        constant: f64,
        /// Maximum number of unresolved bonds tolerated.
        slack: usize,
    },
    /// Extension: the median bond (rank `⌈N/2⌉` from the top) by exact
    /// two-phase separation, its price bounded to `epsilon`.
    Median {
        /// Output precision constraint ε.
        epsilon: f64,
    },
    /// Extension: bounds on the φ-quantile *value*, sketch-guided
    /// (`phi = 0.5` cross-checks [`Query::Median`]).
    Percentile {
        /// Quantile fraction in `[0, 1]` (`0.99` is the p99 price).
        phi: f64,
        /// Output precision constraint ε.
        epsilon: f64,
    },
    /// Extension: the `k` most-populated price cells of width `epsilon`,
    /// pruned by SpaceSaving/count-min summaries.
    HeavyHitters {
        /// How many cells to return.
        k: usize,
        /// Price cell width ε.
        epsilon: f64,
    },
}

impl Query {
    /// Stable lowercase name of the operator this query runs, used as the
    /// per-tick operator tag in [`crate::stats::TickStats`] and in trace
    /// output. Matches [`vao::trace::OperatorKind::name`] for the operators
    /// the core crate traces.
    #[must_use]
    pub fn operator_name(&self) -> &'static str {
        match self {
            Query::Selection { .. } => "selection",
            Query::Sum { .. } => "sum",
            Query::Ave { .. } => "ave",
            Query::Max { .. } => "max",
            Query::Min { .. } => "min",
            Query::TopK { .. } => "topk",
            Query::Count { .. } => "count",
            Query::Median { .. } => "median",
            Query::Percentile { .. } => "percentile",
            Query::HeavyHitters { .. } => "heavyhitters",
        }
    }
}

/// Borrowed view of a [`QueryOutput::Ranked`] answer: the `(bond id,
/// bounds)` members in rank order and the tie set.
pub type RankedView<'a> = (&'a [(u32, Bounds)], &'a [u32]);

/// The answer a query produces at one rate tick.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Bond ids satisfying a selection predicate.
    Selected(Vec<u32>),
    /// The extreme bond and bounds on its price.
    Extreme {
        /// Winning bond id.
        bond_id: u32,
        /// Price bounds (width ≤ ε).
        bounds: Bounds,
        /// Bonds indistinguishable from the winner at full model accuracy.
        ties: Vec<u32>,
    },
    /// Bounds on an aggregate (sum/average).
    Aggregate {
        /// Aggregate bounds (width ≤ ε unless every model hit `minWidth`).
        bounds: Bounds,
    },
    /// The `k` best bonds with their price bounds, best first.
    Ranked {
        /// `(bond id, price bounds)` pairs in descending order.
        members: Vec<(u32, Bounds)>,
        /// Bonds indistinguishable from the weakest member.
        ties: Vec<u32>,
    },
    /// An integer-interval count.
    Count {
        /// Bonds proven to satisfy the predicate.
        lo: usize,
        /// `lo` plus the unresolved bonds.
        hi: usize,
    },
    /// The heaviest price cells and their populations.
    Heavy {
        /// The top cells by resolved-object count, heaviest first.
        cells: Vec<HeavyCell>,
        /// Non-member cells indistinguishable from the weakest member.
        ties: Vec<i64>,
    },
}

impl QueryOutput {
    /// Stable lowercase name of this output's shape, used in
    /// [`EngineError::OutputShape`] diagnostics.
    #[must_use]
    pub fn shape_name(&self) -> &'static str {
        match self {
            QueryOutput::Selected(_) => "selected",
            QueryOutput::Extreme { .. } => "extreme",
            QueryOutput::Aggregate { .. } => "aggregate",
            QueryOutput::Ranked { .. } => "ranked",
            QueryOutput::Count { .. } => "count",
            QueryOutput::Heavy { .. } => "heavy",
        }
    }

    /// The winning bond, its bounds and the tie set — or a typed
    /// [`EngineError::OutputShape`] when this is not an extreme output.
    pub fn as_extreme(&self) -> Result<(u32, Bounds, &[u32]), EngineError> {
        match self {
            QueryOutput::Extreme {
                bond_id,
                bounds,
                ties,
            } => Ok((*bond_id, *bounds, ties)),
            other => Err(EngineError::OutputShape {
                expected: "extreme",
                got: other.shape_name(),
            }),
        }
    }

    /// The ranked members and tie set — or [`EngineError::OutputShape`].
    pub fn as_ranked(&self) -> Result<RankedView<'_>, EngineError> {
        match self {
            QueryOutput::Ranked { members, ties } => Ok((members, ties)),
            other => Err(EngineError::OutputShape {
                expected: "ranked",
                got: other.shape_name(),
            }),
        }
    }

    /// The `[lo, hi]` count interval — or [`EngineError::OutputShape`].
    pub fn as_count(&self) -> Result<(usize, usize), EngineError> {
        match self {
            QueryOutput::Count { lo, hi } => Ok((*lo, *hi)),
            other => Err(EngineError::OutputShape {
                expected: "count",
                got: other.shape_name(),
            }),
        }
    }

    /// The aggregate bounds — or [`EngineError::OutputShape`].
    pub fn as_aggregate(&self) -> Result<Bounds, EngineError> {
        match self {
            QueryOutput::Aggregate { bounds } => Ok(*bounds),
            other => Err(EngineError::OutputShape {
                expected: "aggregate",
                got: other.shape_name(),
            }),
        }
    }

    /// The heavy cells and tie set — or [`EngineError::OutputShape`].
    pub fn as_heavy(&self) -> Result<(&[HeavyCell], &[i64]), EngineError> {
        match self {
            QueryOutput::Heavy { cells, ties } => Ok((cells, ties)),
            other => Err(EngineError::OutputShape {
                expected: "heavy",
                got: other.shape_name(),
            }),
        }
    }

    /// The selected ids — or [`EngineError::OutputShape`].
    pub fn as_selected(&self) -> Result<&[u32], EngineError> {
        match self {
            QueryOutput::Selected(ids) => Ok(ids),
            other => Err(EngineError::OutputShape {
                expected: "selected",
                got: other.shape_name(),
            }),
        }
    }

    /// Convenience: the selected ids, when this is a selection output.
    #[must_use]
    pub fn selected(&self) -> Option<&[u32]> {
        match self {
            QueryOutput::Selected(ids) => Some(ids),
            _ => None,
        }
    }

    /// Convenience: the aggregate/extreme bounds, when present.
    #[must_use]
    pub fn bounds(&self) -> Option<Bounds> {
        match self {
            QueryOutput::Extreme { bounds, .. } | QueryOutput::Aggregate { bounds } => {
                Some(*bounds)
            }
            QueryOutput::Selected(_)
            | QueryOutput::Ranked { .. }
            | QueryOutput::Count { .. }
            | QueryOutput::Heavy { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_accessors() {
        let sel = QueryOutput::Selected(vec![1, 2]);
        assert_eq!(sel.selected(), Some(&[1u32, 2][..]));
        assert_eq!(sel.bounds(), None);

        let agg = QueryOutput::Aggregate {
            bounds: Bounds::new(1.0, 2.0),
        };
        assert_eq!(agg.bounds(), Some(Bounds::new(1.0, 2.0)));
        assert_eq!(agg.selected(), None);

        let ext = QueryOutput::Extreme {
            bond_id: 3,
            bounds: Bounds::new(5.0, 5.01),
            ties: vec![],
        };
        assert_eq!(ext.bounds(), Some(Bounds::new(5.0, 5.01)));
    }

    #[test]
    fn queries_are_comparable() {
        let a = Query::Max { epsilon: 0.01 };
        let b = Query::Max { epsilon: 0.01 };
        assert_eq!(a, b);
        assert_ne!(a, Query::Min { epsilon: 0.01 });
    }
}
