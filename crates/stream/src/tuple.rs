//! Tuples: ordered values.

use crate::value::Value;

/// An ordered collection of values, positionally matched to a schema.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of values.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Float at position `i`, when present and numeric.
    #[must_use]
    pub fn float(&self, i: usize) -> Option<f64> {
        self.get(i).and_then(Value::as_float)
    }

    /// Integer at position `i`, when present and integral.
    #[must_use]
    pub fn int(&self, i: usize) -> Option<i64> {
        self.get(i).and_then(Value::as_int)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Tuple::new(vec![Value::Int(7), Value::Float(1.5)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.int(0), Some(7));
        assert_eq!(t.float(1), Some(1.5));
        assert_eq!(t.float(0), Some(7.0));
        assert_eq!(t.int(1), None);
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Tuple = vec![Value::Bool(true), Value::from("x")]
            .into_iter()
            .collect();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.values()[0], Value::Bool(true));
    }
}
