//! Relation and stream schemas.

use crate::tuple::Tuple;
use crate::value::ValueType;

/// A named, typed field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name (unique within a schema).
    pub name: String,
    /// Field type.
    pub ty: ValueType,
}

/// An ordered list of fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate field names.
    #[must_use]
    pub fn new(fields: &[(&str, ValueType)]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for (name, _) in fields {
            assert!(seen.insert(*name), "duplicate field name {name}");
        }
        Self {
            fields: fields
                .iter()
                .map(|(name, ty)| Field {
                    name: (*name).to_string(),
                    ty: *ty,
                })
                .collect(),
        }
    }

    /// The fields in order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of a field by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Checks a tuple against this schema (arity and field types).
    pub fn validate(&self, tuple: &Tuple) -> Result<(), String> {
        if tuple.arity() != self.arity() {
            return Err(format!(
                "arity mismatch: tuple has {}, schema has {}",
                tuple.arity(),
                self.arity()
            ));
        }
        for (i, field) in self.fields.iter().enumerate() {
            let got = tuple.get(i).expect("arity checked").value_type();
            if got != field.ty {
                return Err(format!(
                    "field {} ({}): expected {:?}, got {got:?}",
                    i, field.name, field.ty
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(&[
            ("id", ValueType::Int),
            ("coupon", ValueType::Float),
            ("active", ValueType::Bool),
        ])
    }

    #[test]
    fn field_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("coupon"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.fields()[0].name, "id");
    }

    #[test]
    fn validates_matching_tuple() {
        let s = schema();
        let t = Tuple::new(vec![Value::Int(1), Value::Float(0.07), Value::Bool(true)]);
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn rejects_wrong_arity_and_types() {
        let s = schema();
        let short = Tuple::new(vec![Value::Int(1)]);
        assert!(s.validate(&short).unwrap_err().contains("arity"));
        let wrong = Tuple::new(vec![
            Value::Float(1.0),
            Value::Float(0.07),
            Value::Bool(true),
        ]);
        assert!(s.validate(&wrong).unwrap_err().contains("field 0"));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_names() {
        let _ = Schema::new(&[("a", ValueType::Int), ("a", ValueType::Float)]);
    }
}
