//! Logical query plans and the VAO fusion rewrite (Figures 1–3).
//!
//! In a traditional plan, UDF execution and result evaluation are separate
//! modules: tuples flow from the sources into a *function execution*
//! module and its single-value results into a selection or aggregation
//! operator (Figure 2). The VAO rewrite **fuses** those two nodes into one
//! operator that controls function execution through the iterative
//! interface (Figures 1 and 3). This module gives the engine that plan
//! representation plus an `EXPLAIN`-style rendering, so the rewrite the
//! paper describes architecturally is visible and testable.

use vao::ops::selection::CmpOp;

use crate::query::Query;

/// Aggregate kinds appearing in plans.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggKind {
    /// Highest value.
    Max,
    /// Lowest value.
    Min,
    /// Weighted sum.
    Sum,
    /// Average.
    Ave,
    /// Top-K ranking.
    TopK(usize),
    /// Predicate count.
    Count,
    /// Median (rank ⌈N/2⌉).
    Median,
    /// φ-quantile value.
    Percentile(f64),
    /// Top-K ε-cell heavy hitters.
    HeavyHitters(usize),
}

impl AggKind {
    fn name(self) -> String {
        match self {
            AggKind::Max => "MAX".into(),
            AggKind::Min => "MIN".into(),
            AggKind::Sum => "SUM".into(),
            AggKind::Ave => "AVE".into(),
            AggKind::TopK(k) => format!("TOP-{k}"),
            AggKind::Count => "COUNT".into(),
            AggKind::Median => "MEDIAN".into(),
            AggKind::Percentile(phi) => format!("P{:.0}", phi * 100.0),
            AggKind::HeavyHitters(k) => format!("HEAVY-{k}"),
        }
    }
}

/// A logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// The bond relation scan joined with the rate stream: produces one
    /// `(rate, bond)` argument pair per bond per tick.
    ArgSource,
    /// Black-box function execution: one full-accuracy value per pair.
    FnExec {
        /// Upstream node.
        input: Box<LogicalPlan>,
    },
    /// A conventional selection over exact values.
    Filter {
        /// Upstream node.
        input: Box<LogicalPlan>,
        /// Comparison operator.
        op: CmpOp,
        /// Selection constant.
        constant: f64,
    },
    /// A conventional aggregate over exact values.
    Aggregate {
        /// Upstream node.
        input: Box<LogicalPlan>,
        /// Aggregate kind.
        kind: AggKind,
    },
    /// A fused VAO node: function execution *and* predicate evaluation.
    VaoSelection {
        /// Upstream node (argument pairs).
        input: Box<LogicalPlan>,
        /// Comparison operator.
        op: CmpOp,
        /// Selection constant.
        constant: f64,
    },
    /// A fused VAO node: function execution *and* aggregation, with an
    /// output precision constraint.
    VaoAggregate {
        /// Upstream node (argument pairs).
        input: Box<LogicalPlan>,
        /// Aggregate kind.
        kind: AggKind,
        /// Output precision ε.
        epsilon: f64,
    },
}

impl LogicalPlan {
    /// The traditional (pre-rewrite) plan for a query: separate function
    /// execution and evaluation modules, as in Figure 2.
    #[must_use]
    pub fn traditional(query: &Query) -> LogicalPlan {
        let exec = LogicalPlan::FnExec {
            input: Box::new(LogicalPlan::ArgSource),
        };
        match query {
            Query::Selection { op, constant } => LogicalPlan::Filter {
                input: Box::new(exec),
                op: *op,
                constant: *constant,
            },
            Query::Max { .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::Max,
            },
            Query::Min { .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::Min,
            },
            Query::Sum { .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::Sum,
            },
            Query::Ave { .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::Ave,
            },
            Query::TopK { k, .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::TopK(*k),
            },
            Query::Count { op, constant, .. } => LogicalPlan::Filter {
                input: Box::new(LogicalPlan::FnExec {
                    input: Box::new(LogicalPlan::ArgSource),
                }),
                op: *op,
                constant: *constant,
            },
            Query::Median { .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::Median,
            },
            Query::Percentile { phi, .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::Percentile(*phi),
            },
            Query::HeavyHitters { k, .. } => LogicalPlan::Aggregate {
                input: Box::new(exec),
                kind: AggKind::HeavyHitters(*k),
            },
        }
    }

    /// The VAO rewrite: fuse `FnExec` with the operator above it.
    ///
    /// Plans without a fusable `FnExec`+operator pair are returned
    /// unchanged (the rewrite is a no-op on already-fused plans).
    #[must_use]
    pub fn fuse(self) -> LogicalPlan {
        match self {
            LogicalPlan::Filter {
                input,
                op,
                constant,
            } => match *input {
                LogicalPlan::FnExec { input: src } => LogicalPlan::VaoSelection {
                    input: src,
                    op,
                    constant,
                },
                other => LogicalPlan::Filter {
                    input: Box::new(other.fuse()),
                    op,
                    constant,
                },
            },
            LogicalPlan::Aggregate { input, kind } => match *input {
                LogicalPlan::FnExec { input: src } => LogicalPlan::VaoAggregate {
                    input: src,
                    kind,
                    // The rewrite itself cannot invent ε; engines fill it
                    // from the query. A conservative default mirrors the
                    // paper's bond minWidth.
                    epsilon: 0.01,
                },
                other => LogicalPlan::Aggregate {
                    input: Box::new(other.fuse()),
                    kind,
                },
            },
            other => other,
        }
    }

    /// Whether the plan still contains a black-box execution module.
    #[must_use]
    pub fn has_black_box(&self) -> bool {
        match self {
            LogicalPlan::ArgSource => false,
            LogicalPlan::FnExec { .. } => true,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::VaoSelection { input, .. }
            | LogicalPlan::VaoAggregate { input, .. } => input.has_black_box(),
        }
    }

    /// `EXPLAIN`-style rendering, one node per line, children indented.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::ArgSource => {
                out.push_str(&format!("{pad}ArgSource [IR.rate ⋈ BD]\n"));
            }
            LogicalPlan::FnExec { input } => {
                out.push_str(&format!("{pad}FnExec [model(IR.rate, BD) → value]\n"));
                input.render(depth + 1, out);
            }
            LogicalPlan::Filter {
                input,
                op,
                constant,
            } => {
                out.push_str(&format!("{pad}Filter [value {op} {constant}]\n"));
                input.render(depth + 1, out);
            }
            LogicalPlan::Aggregate { input, kind } => {
                out.push_str(&format!("{pad}Aggregate [{}]\n", kind.name()));
                input.render(depth + 1, out);
            }
            LogicalPlan::VaoSelection {
                input,
                op,
                constant,
            } => {
                out.push_str(&format!(
                    "{pad}VaoSelection [model(IR.rate, BD) {op} {constant}; iterative]\n"
                ));
                input.render(depth + 1, out);
            }
            LogicalPlan::VaoAggregate {
                input,
                kind,
                epsilon,
            } => {
                out.push_str(&format!(
                    "{pad}VaoAggregate [{} ε={epsilon}; iterative]\n",
                    kind.name()
                ));
                input.render(depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> Query {
        Query::Selection {
            op: CmpOp::Gt,
            constant: 100.0,
        }
    }

    #[test]
    fn traditional_plan_separates_execution_from_evaluation() {
        let plan = LogicalPlan::traditional(&q1());
        assert!(plan.has_black_box());
        let text = plan.explain();
        assert!(text.contains("Filter"));
        assert!(text.contains("FnExec"));
        let filter_line = text.lines().position(|l| l.contains("Filter")).unwrap();
        let exec_line = text.lines().position(|l| l.contains("FnExec")).unwrap();
        assert!(filter_line < exec_line, "operator sits above the executor");
    }

    #[test]
    fn fusion_removes_the_black_box() {
        let fused = LogicalPlan::traditional(&q1()).fuse();
        assert!(!fused.has_black_box());
        assert!(matches!(fused, LogicalPlan::VaoSelection { .. }));
        let text = fused.explain();
        assert!(text.contains("VaoSelection"));
        assert!(!text.contains("FnExec"));
    }

    #[test]
    fn fusion_covers_every_query_kind() {
        let queries = [
            q1(),
            Query::Max { epsilon: 0.01 },
            Query::Min { epsilon: 0.01 },
            Query::Sum {
                weights: vec![1.0],
                epsilon: 0.01,
            },
            Query::Ave { epsilon: 0.01 },
            Query::TopK {
                k: 3,
                epsilon: 0.01,
            },
            Query::Count {
                op: CmpOp::Lt,
                constant: 95.0,
                slack: 0,
            },
        ];
        for q in &queries {
            let fused = LogicalPlan::traditional(q).fuse();
            assert!(!fused.has_black_box(), "query {q:?} kept a black box");
        }
    }

    #[test]
    fn fusion_is_idempotent() {
        let once = LogicalPlan::traditional(&q1()).fuse();
        let twice = once.clone().fuse();
        assert_eq!(once, twice);
    }

    #[test]
    fn aggregate_plans_name_their_kind() {
        let plan = LogicalPlan::traditional(&Query::TopK {
            k: 5,
            epsilon: 0.01,
        });
        assert!(plan.explain().contains("TOP-5"));
        let plan = LogicalPlan::traditional(&Query::Max { epsilon: 0.01 }).fuse();
        assert!(plan.explain().contains("MAX"));
    }
}
