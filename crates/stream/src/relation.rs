//! The bond relation (`BD` in the paper's queries).

use bondlab::{Bond, BondUniverse};

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// A relational view over a bond universe: one tuple per bond with fields
/// `id`, `coupon`, `maturity`, `face`.
#[derive(Clone, Debug)]
pub struct BondRelation {
    schema: Schema,
    bonds: Vec<Bond>,
}

impl BondRelation {
    /// Builds the relation from a universe.
    #[must_use]
    pub fn from_universe(universe: &BondUniverse) -> Self {
        Self {
            schema: Self::schema_def(),
            bonds: universe.bonds().to_vec(),
        }
    }

    /// Builds the relation from an explicit bond list (catalog-defined
    /// relations, where bonds arrive over the wire instead of from a
    /// seeded universe).
    #[must_use]
    pub fn from_bonds(bonds: Vec<Bond>) -> Self {
        Self {
            schema: Self::schema_def(),
            bonds,
        }
    }

    /// Appends one bond (the catalog's `ADD BOND`).
    pub fn push(&mut self, bond: Bond) {
        self.bonds.push(bond);
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn schema_def() -> Schema {
        Schema::new(&[
            ("id", ValueType::Int),
            ("coupon", ValueType::Float),
            ("maturity", ValueType::Float),
            ("face", ValueType::Float),
        ])
    }

    /// The underlying bonds (the model arguments).
    #[must_use]
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// Cardinality.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bonds.len()
    }

    /// Whether the relation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bonds.is_empty()
    }

    /// Materializes bond `i` as a tuple.
    #[must_use]
    pub fn tuple(&self, i: usize) -> Tuple {
        let b = &self.bonds[i];
        Tuple::new(vec![
            Value::Int(i64::from(b.id)),
            Value::Float(b.coupon),
            Value::Float(b.years_to_maturity),
            Value::Float(b.face),
        ])
    }

    /// Iterates all tuples.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.bonds.len()).map(|i| self.tuple(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_match_schema_and_bonds() {
        let u = BondUniverse::generate(5, 1);
        let r = BondRelation::from_universe(&u);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        for (i, t) in r.tuples().enumerate() {
            assert!(r.schema().validate(&t).is_ok());
            assert_eq!(t.int(0), Some(i as i64));
            assert_eq!(t.float(1), Some(u[i].coupon));
        }
    }

    #[test]
    fn schema_has_expected_fields() {
        let u = BondUniverse::generate(1, 1);
        let r = BondRelation::from_universe(&u);
        assert_eq!(r.schema().index_of("coupon"), Some(1));
        assert_eq!(r.schema().index_of("face"), Some(3));
        assert_eq!(r.schema().arity(), 4);
    }
}
