//! Predicate result-range caching across rate ticks (CASPER-style).
//!
//! §2 of the paper points at its companion system CASPER (Denny &
//! Franklin, SIGMOD 2005), which caches *predicate result ranges* — ranges
//! of the function's parameters where an expensive predicate's result is
//! already known — and names the integration of VAOs with such caching as
//! future work. This module implements that integration for the bond
//! workload's one-dimensional streaming parameter:
//!
//! Bond prices are monotone in the interest rate (higher rates discount
//! the fixed cash flows harder), so for a fixed bond the predicate
//! `price(rate) > c` is true exactly on a rate interval anchored at one
//! end of the axis. Every *decisive* VAO evaluation at a rate `r` therefore
//! proves the predicate for all rates on one side of `r`, and subsequent
//! ticks in that range need **zero** model work. Undecided (`minWidth`)
//! resolutions are not cached — the equality band's extent is unknown.

use bondlab::BondPricer;
use vao::cost::WorkMeter;
use vao::error::VaoError;
use vao::ops::selection::{CmpOp, SelectionVao};

use crate::relation::BondRelation;

/// The direction in which the cached function value moves as the streamed
/// parameter grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Monotonicity {
    /// Function value increases with the parameter.
    Increasing,
    /// Function value decreases with the parameter (bond prices vs rates).
    Decreasing,
}

/// Cached knowledge about one predicate over one monotone function: the
/// parameter ranges where the outcome is proven.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThresholdCache {
    /// Largest parameter proven to give `true` on the low side (or
    /// smallest on the high side, depending on orientation).
    true_frontier: Option<f64>,
    /// Matching frontier for `false`.
    false_frontier: Option<f64>,
}

/// Which side of the axis satisfies the predicate, given the function's
/// monotonicity and the comparison direction.
fn true_side_is_low(monotonicity: Monotonicity, op: CmpOp) -> bool {
    let wants_large_values = matches!(op, CmpOp::Gt | CmpOp::Ge);
    match monotonicity {
        // Large values live at low parameters when decreasing.
        Monotonicity::Decreasing => wants_large_values,
        Monotonicity::Increasing => !wants_large_values,
    }
}

impl ThresholdCache {
    /// Returns the cached outcome at `param`, if proven.
    #[must_use]
    pub fn classify(&self, param: f64, low_is_true: bool) -> Option<bool> {
        if low_is_true {
            if let Some(t) = self.true_frontier {
                if param <= t {
                    return Some(true);
                }
            }
            if let Some(f) = self.false_frontier {
                if param >= f {
                    return Some(false);
                }
            }
        } else {
            if let Some(t) = self.true_frontier {
                if param >= t {
                    return Some(true);
                }
            }
            if let Some(f) = self.false_frontier {
                if param <= f {
                    return Some(false);
                }
            }
        }
        None
    }

    /// Records a decisive outcome at `param`, extending the proven range.
    pub fn record(&mut self, param: f64, outcome: bool, low_is_true: bool) {
        let frontier = if outcome {
            &mut self.true_frontier
        } else {
            &mut self.false_frontier
        };
        // The true range grows toward its side's extreme; pick the frontier
        // farthest into the unknown region.
        let improves = |old: f64| {
            if outcome == low_is_true {
                param > old
            } else {
                param < old
            }
        };
        match frontier {
            Some(old) if !improves(*old) => {}
            _ => *frontier = Some(param),
        }
    }
}

/// Per-tick outcome statistics for the cached engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTickStats {
    /// Predicates answered from the cache.
    pub hits: usize,
    /// Predicates that required model execution.
    pub misses: usize,
    /// Work units spent on the misses.
    pub work: u64,
}

/// A selection query over a bond relation with predicate result-range
/// caching across ticks.
pub struct CachedSelectionEngine {
    pricer: BondPricer,
    relation: BondRelation,
    vao: SelectionVao,
    low_is_true: bool,
    caches: Vec<ThresholdCache>,
}

impl CachedSelectionEngine {
    /// Builds the engine. Bond prices are decreasing in the rate, which
    /// fixes the orientation.
    pub fn new(
        pricer: BondPricer,
        relation: BondRelation,
        op: CmpOp,
        constant: f64,
    ) -> Result<Self, VaoError> {
        let vao = SelectionVao::new(op, constant)?;
        let n = relation.len();
        Ok(Self {
            pricer,
            relation,
            vao,
            low_is_true: true_side_is_low(Monotonicity::Decreasing, op),
            caches: vec![ThresholdCache::default(); n],
        })
    }

    /// Processes one rate tick: answers each bond's predicate from the
    /// cache when proven, otherwise runs the selection VAO and extends the
    /// proven range. Returns the satisfied bond ids and the tick stats.
    pub fn process_rate(&mut self, rate: f64) -> Result<(Vec<u32>, CacheTickStats), VaoError> {
        let mut stats = CacheTickStats::default();
        let mut selected = Vec::new();
        let mut meter = WorkMeter::new();
        for (i, &bond) in self.relation.bonds().iter().enumerate() {
            let outcome = match self.caches[i].classify(rate, self.low_is_true) {
                Some(known) => {
                    stats.hits += 1;
                    known
                }
                None => {
                    stats.misses += 1;
                    let mut obj = self.pricer.price(bond, rate, &mut meter);
                    let out = self.vao.evaluate(&mut obj, &mut meter)?;
                    if !out.decided_at_min_width {
                        self.caches[i].record(rate, out.satisfied, self.low_is_true);
                    }
                    out.satisfied
                }
            };
            if outcome {
                selected.push(bond.id);
            }
        }
        stats.work = meter.total();
        Ok((selected, stats))
    }

    /// Read access to the per-bond caches (for diagnostics and tests).
    #[must_use]
    pub fn caches(&self) -> &[ThresholdCache] {
        &self.caches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bondlab::BondUniverse;

    #[test]
    fn orientation_table() {
        use Monotonicity::*;
        // Decreasing prices: "> c" holds at LOW rates.
        assert!(true_side_is_low(Decreasing, CmpOp::Gt));
        assert!(true_side_is_low(Decreasing, CmpOp::Ge));
        assert!(!true_side_is_low(Decreasing, CmpOp::Lt));
        // Increasing function: "> c" holds at HIGH parameters.
        assert!(!true_side_is_low(Increasing, CmpOp::Gt));
        assert!(true_side_is_low(Increasing, CmpOp::Le));
    }

    #[test]
    fn threshold_cache_extends_frontiers() {
        let mut c = ThresholdCache::default();
        let low_true = true;
        assert_eq!(c.classify(0.05, low_true), None);
        c.record(0.05, true, low_true);
        // Everything at or below 0.05 is now proven true.
        assert_eq!(c.classify(0.04, low_true), Some(true));
        assert_eq!(c.classify(0.05, low_true), Some(true));
        assert_eq!(c.classify(0.06, low_true), None);
        c.record(0.07, false, low_true);
        assert_eq!(c.classify(0.08, low_true), Some(false));
        assert_eq!(c.classify(0.06, low_true), None, "gap stays unknown");
        // A deeper true observation extends the frontier.
        c.record(0.06, true, low_true);
        assert_eq!(c.classify(0.06, low_true), Some(true));
        // A shallower one does not retract it.
        c.record(0.02, true, low_true);
        assert_eq!(c.classify(0.055, low_true), Some(true));
    }

    #[test]
    fn repeated_ticks_become_free() {
        let universe = BondUniverse::generate(6, 1994);
        let mut engine = CachedSelectionEngine::new(
            BondPricer::default(),
            BondRelation::from_universe(&universe),
            CmpOp::Gt,
            100.0,
        )
        .unwrap();
        let (first, s1) = engine.process_rate(0.0583).unwrap();
        assert_eq!(s1.misses, 6);
        assert!(s1.work > 0);
        // Same rate again: all hits, no work.
        let (second, s2) = engine.process_rate(0.0583).unwrap();
        assert_eq!(first, second);
        assert_eq!(s2.hits, 6);
        assert_eq!(s2.work, 0);
    }

    #[test]
    fn monotone_extensions_cover_new_rates() {
        let universe = BondUniverse::generate(6, 1994);
        let mut engine = CachedSelectionEngine::new(
            BondPricer::default(),
            BondRelation::from_universe(&universe),
            CmpOp::Gt,
            100.0,
        )
        .unwrap();
        let (sel_mid, _) = engine.process_rate(0.0583).unwrap();
        // A *lower* rate only raises prices: every cached TRUE remains
        // provably true, so hits cover at least those bonds.
        let (sel_low, stats) = engine.process_rate(0.0560).unwrap();
        assert!(stats.hits >= sel_mid.len());
        for id in &sel_mid {
            assert!(
                sel_low.contains(id),
                "bond {id} must stay selected at lower rates"
            );
        }
    }

    #[test]
    fn cached_answers_match_uncached_evaluation() {
        let universe = BondUniverse::generate(5, 7);
        let rates = [0.0583, 0.0560, 0.0600, 0.0583, 0.0570];
        let mut cached = CachedSelectionEngine::new(
            BondPricer::default(),
            BondRelation::from_universe(&universe),
            CmpOp::Gt,
            100.0,
        )
        .unwrap();

        for &rate in &rates {
            let (from_cache, _) = cached.process_rate(rate).unwrap();
            // Reference: a fresh uncached engine at the same rate.
            let mut fresh = CachedSelectionEngine::new(
                BondPricer::default(),
                BondRelation::from_universe(&universe),
                CmpOp::Gt,
                100.0,
            )
            .unwrap();
            let (reference, _) = fresh.process_rate(rate).unwrap();
            assert_eq!(from_cache, reference, "rate {rate}");
        }
    }

    #[test]
    fn tick_stream_amortizes_toward_zero_misses() {
        let universe = BondUniverse::generate(8, 1994);
        let mut engine = CachedSelectionEngine::new(
            BondPricer::default(),
            BondRelation::from_universe(&universe),
            CmpOp::Gt,
            95.0,
        )
        .unwrap();
        // A jittery stream revisiting a narrow band.
        let rates = [
            0.0583, 0.0585, 0.0581, 0.0584, 0.0582, 0.0583, 0.0585, 0.0584,
        ];
        let mut miss_history = Vec::new();
        for &r in &rates {
            let (_, stats) = engine.process_rate(r).unwrap();
            miss_history.push(stats.misses);
        }
        let early: usize = miss_history[..2].iter().sum();
        let late: usize = miss_history[6..].iter().sum();
        assert!(
            late < early,
            "later ticks should mostly hit: {miss_history:?}"
        );
    }
}
